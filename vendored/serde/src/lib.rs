//! Offline stand-in for the `serde` facade.
//!
//! The build container has no network access and no registry cache, so
//! the real `serde` cannot be fetched. This crate provides the subset
//! the workspace actually uses — `#[derive(Serialize, Deserialize)]`
//! plus the `serde_json` entry points — over a simple *value-tree*
//! data model instead of the visitor machinery: `Serialize` lowers a
//! value into a [`Value`] tree, `Deserialize` rebuilds it from one.
//! The representation matches serde's externally-tagged defaults
//! (structs → objects, newtype structs → their inner value, tuple
//! structs/tuples → arrays, unit enum variants → strings, data-carrying
//! variants → single-key objects), so JSON produced here looks exactly
//! like what the real stack would emit for this codebase.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the data model both traits target.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Keys are ordered for deterministic output.
    Object(BTreeMap<String, Value>),
}

/// A JSON number: integer or floating point.
///
/// Equality is *numeric* across representations (`Int(1) == Float(1.0)`),
/// which keeps round-tripped trees comparable: text like `1.0` reparses
/// as an integer.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(v) => (v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64)
                .then_some(v as i64),
        }
    }

    /// The number as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) => u64::try_from(v).ok(),
            Number::UInt(v) => Some(v),
            Number::Float(v) => {
                (v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64).then_some(v as u64)
            }
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as an `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member access (`Null` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// A short name of the value's type for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `Null` when the key is absent or `self` is not an object.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// `Null` when out of bounds or `self` is not an array.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Error for an unexpected value shape.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind_name()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn serialize(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts a value tree back into `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::unexpected("integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::Number(Number::Int(v)),
                    Err(_) => Value::Number(Number::UInt(*self as u64)),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::unexpected("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::unexpected("number", value))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::unexpected("bool", value))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::unexpected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::unexpected("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(Error::unexpected("null", value))
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::unexpected("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::unexpected("array", value))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
    (A: 0, B: 1, C: 2, D: 3, E: 4) with 5;
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5) with 6;
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::unexpected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys for deterministic output.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::unexpected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Number(Number::Float(self.as_secs_f64()))
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs = value
            .as_f64()
            .ok_or_else(|| Error::unexpected("number", value))?;
        if secs.is_finite() && secs >= 0.0 {
            Ok(std::time::Duration::from_secs_f64(secs))
        } else {
            Err(Error::custom("invalid duration"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::deserialize(&42i32.serialize()), Ok(42));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null), Ok(None));
        assert_eq!(Some(3u32).serialize(), 3u32.serialize());
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u32, 2.5f64).serialize();
        assert_eq!(<(u32, f64)>::deserialize(&v), Ok((1, 2.5)));
    }

    #[test]
    fn numeric_equality_crosses_representations() {
        assert_eq!(Number::Int(1), Number::Float(1.0));
        assert_ne!(Number::Int(1), Number::Float(1.5));
    }

    #[test]
    fn out_of_range_integers_error() {
        let v = Value::Number(Number::Int(-1));
        assert!(u8::deserialize(&v).is_err());
    }
}
