//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the value-tree traits in the vendored `serde` facade. The
//! item is parsed directly from the token stream (no `syn`/`quote`
//! available offline); generated code follows serde's externally-tagged
//! defaults:
//!
//! * named struct → JSON object;
//! * newtype struct → the inner value (transparent);
//! * tuple struct → JSON array;
//! * unit enum variant → the variant name as a string;
//! * newtype/tuple/struct enum variant → `{ "Variant": payload }`.
//!
//! Generics and `#[serde(...)]` attributes are not supported — the
//! workspace uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);` — arity recorded.
    TupleStruct { name: String, arity: usize },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "map.insert({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize(&self) -> ::serde::Value {{
                        let mut map = ::std::collections::BTreeMap::new();
                        {pushes}
                        ::serde::Value::Object(map)
                    }}
                }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{
                fn serialize(&self) -> ::serde::Value {{
                    ::serde::Serialize::serialize(&self.0)
                }}
            }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize(&self) -> ::serde::Value {{
                        ::serde::Value::Array(vec![{}])
                    }}
                }}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{
                            let mut map = ::std::collections::BTreeMap::new();
                            map.insert({vn:?}.to_string(), ::serde::Serialize::serialize(x0));
                            ::serde::Value::Object(map)
                        }},\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{
                                let mut map = ::std::collections::BTreeMap::new();
                                map.insert({vn:?}.to_string(), ::serde::Value::Array(vec![{}]));
                                ::serde::Value::Object(map)
                            }},\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.insert({f:?}.to_string(), ::serde::Serialize::serialize({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{
                                let mut inner = ::std::collections::BTreeMap::new();
                                {pushes}
                                let mut map = ::std::collections::BTreeMap::new();
                                map.insert({vn:?}.to_string(), ::serde::Value::Object(inner));
                                ::serde::Value::Object(map)
                            }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(
                        map.get({f:?}).unwrap_or(&::serde::Value::Null)
                    ).map_err(|e| ::serde::Error::custom(
                        format!(\"{name}.{f}: {{e}}\")))?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{
                        let map = value.as_object().ok_or_else(||
                            ::serde::Error::unexpected(\"object ({name})\", value))?;
                        Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{
                    Ok({name}(::serde::Deserialize::deserialize(value)?))
                }}
            }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{
                        let items = value.as_array().ok_or_else(||
                            ::serde::Error::unexpected(\"array ({name})\", value))?;
                        if items.len() != {arity} {{
                            return Err(::serde::Error::custom(format!(
                                \"{name}: expected {arity} elements, got {{}}\", items.len())));
                        }}
                        Ok({name}({}))
                    }}
                }}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                        // Also accept the single-key-object form.
                        data_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::deserialize(payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{
                                let items = payload.as_array().ok_or_else(||
                                    ::serde::Error::unexpected(\"array ({name}::{vn})\", payload))?;
                                if items.len() != {n} {{
                                    return Err(::serde::Error::custom(format!(
                                        \"{name}::{vn}: expected {n} elements, got {{}}\",
                                        items.len())));
                                }}
                                Ok({name}::{vn}({}))
                            }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize(
                                    inner.get({f:?}).unwrap_or(&::serde::Value::Null))?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{vn:?} => {{
                                let inner = payload.as_object().ok_or_else(||
                                    ::serde::Error::unexpected(\"object ({name}::{vn})\", payload))?;
                                Ok({name}::{vn} {{ {inits} }})
                            }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{
                        match value {{
                            ::serde::Value::String(s) => match s.as_str() {{
                                {unit_arms}
                                other => Err(::serde::Error::custom(format!(
                                    \"unknown {name} variant {{other:?}}\"))),
                            }},
                            ::serde::Value::Object(map) if map.len() == 1 => {{
                                let (tag, payload) = map.iter().next().expect(\"len checked\");
                                match tag.as_str() {{
                                    {data_arms}
                                    other => Err(::serde::Error::custom(format!(
                                        \"unknown {name} variant {{other:?}}\"))),
                                }}
                            }}
                            other => Err(::serde::Error::unexpected(
                                \"string or single-key object ({name})\", other)),
                        }}
                    }}
                }}"
            )
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}

// --- token-stream parsing --------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) stand-in does not support generics on `{name}`");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_segments(g.stream()),
                }
            }
            _ => panic!("unit structs are not supported by the serde stand-in"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("malformed enum"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: T, b: U, ...` returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        // Skip to the top-level comma ending this field. Generic
        // argument commas are protected by tracking `<...>` depth;
        // parens/brackets/braces arrive as single Group tokens.
        let mut angle_depth = 0i32;
        loop {
            i += 1;
            match tokens.get(i) {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }
    fields
}

/// Counts top-level comma-separated segments (tuple-struct arity).
fn count_segments(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut segments = 1;
    let mut angle_depth = 0i32;
    let mut last_was_comma = false;
    for t in &tokens {
        last_was_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if last_was_comma {
        segments -= 1; // trailing comma
    }
    segments
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_segments(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip the separating comma (and any stray tokens, e.g. a
        // discriminant, which the stand-in does not support but should
        // not silently mis-parse).
        while let Some(t) = tokens.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}
