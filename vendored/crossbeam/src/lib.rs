//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stabilized long after crossbeam introduced the pattern). Only the
//! scoped-thread API the workspace uses is implemented.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// A panic payload from a joined thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure; spawns borrow-
    /// capturing threads that are joined when the scope ends.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so
        /// threads can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrow-capturing threads.
    ///
    /// Unlike `std::thread::scope`, returns a `Result` (crossbeam's
    /// signature): `Err` carries the panic payload when an *unjoined*
    /// child panicked. Joined children report panics through their own
    /// handles.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let sums = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn joined_panic_is_reported_via_handle() {
        let res = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .expect("scope itself succeeds");
        assert!(res);
    }
}
