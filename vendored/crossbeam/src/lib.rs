//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stabilized long after crossbeam introduced the pattern) and
//! `crossbeam::channel` bounded/unbounded MPMC channels on top of
//! `std` mutex + condvar. Only the API subset the workspace uses is
//! implemented.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.
    //!
    //! [`bounded`] channels block senders at capacity (the
    //! backpressure primitive the streaming pipeline builds on);
    //! [`unbounded`] channels never block senders. Receivers observe
    //! items in send order; once every `Sender` is dropped, `recv`
    //! drains the remaining items and then reports disconnection.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent item back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the item is returned.
        Full(T),
        /// All receivers are gone; the item is returned.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No item arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            // The queue holds plain data and every critical section is
            // panic-free, so a poisoned lock is recoverable.
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half of a channel. Clone freely; the channel
    /// disconnects for receivers when the last clone drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clone freely; the channel
    /// disconnects for senders when the last clone drops.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded FIFO channel: `send` blocks once `capacity`
    /// items are queued.
    ///
    /// # Panics
    /// Panics when `capacity` is zero (rendezvous channels are not
    /// implemented).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity >= 1, "bounded channel capacity must be >= 1");
        channel(Some(capacity))
    }

    /// Creates an unbounded FIFO channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends `item`, blocking while the channel is full. Fails only
        /// when every receiver is gone.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self
                            .shared
                            .not_full
                            .wait(state)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            state.queue.push_back(item);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; a full channel returns the item.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if let Some(cap) = self.shared.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(item));
                }
            }
            state.queue.push_back(item);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's capacity (`None` for unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.shared.capacity
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.lock();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                // Wake receivers so they can observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next item, blocking while the channel is empty.
        /// Fails once the channel is empty *and* every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(item) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, waiting at most `timeout` for an item to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(item) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.lock();
                state.receivers -= 1;
                state.receivers
            };
            if remaining == 0 {
                // Wake blocked senders so they can observe the
                // disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order_and_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).expect("send");
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).expect("first");
            tx.try_send(2).expect("second");
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).expect("space freed");
        }

        #[test]
        fn bounded_send_blocks_until_consumer_drains() {
            let (tx, rx) = bounded(1);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).expect("send");
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                // Slow consumer: the producer must block, not drop.
                std::thread::sleep(Duration::from_micros(50));
                got.push(v);
            }
            producer.join().expect("producer");
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
            assert_eq!(tx.try_send(8), Err(TrySendError::Disconnected(8)));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = bounded(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(42u32).expect("send");
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn drop_oldest_pattern_preserves_capacity() {
            // The load-shedding idiom the streaming session uses: on a
            // full queue, evict the oldest item and retry.
            let (tx, rx) = bounded(3);
            let mut dropped = 0;
            for i in 0..10 {
                let mut item = i;
                loop {
                    match tx.try_send(item) {
                        Ok(()) => break,
                        Err(TrySendError::Full(back)) => {
                            item = back;
                            if rx.try_recv().is_ok() {
                                dropped += 1;
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => panic!("receiver alive"),
                    }
                }
            }
            assert_eq!(dropped, 7);
            let got: Vec<i32> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
            assert_eq!(got, vec![7, 8, 9], "newest items survive");
        }
    }
}

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// A panic payload from a joined thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure; spawns borrow-
    /// capturing threads that are joined when the scope ends.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so
        /// threads can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrow-capturing threads.
    ///
    /// Unlike `std::thread::scope`, returns a `Result` (crossbeam's
    /// signature): `Err` carries the panic payload when an *unjoined*
    /// child panicked. Joined children report panics through their own
    /// handles.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let sums = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn joined_panic_is_reported_via_handle() {
        let res = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .expect("scope itself succeeds");
        assert!(res);
    }
}
