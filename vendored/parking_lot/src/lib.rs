//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API: `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Poison from a panicking holder is swallowed (`into_inner`),
//! matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2]);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a, *b);
        drop((a, b));
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning");
    }
}
