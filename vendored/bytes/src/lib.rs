//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an immutable, cheaply-clonable byte buffer backed by an
//! `Arc<[u8]>`; [`BytesMut`] is a growable builder. Only the surface
//! the workspace uses is implemented.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1) and
/// shares the underlying allocation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from([] as [u8; 0]))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn serialize(&self) -> serde::Value {
        serde::Value::Array(
            self.0
                .iter()
                .map(|&b| serde::Value::Number(serde::Number::Int(b as i64)))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let bytes: Vec<u8> = Vec::deserialize(value)?;
        Ok(Bytes::from(bytes))
    }
}

/// Extension trait for writing into growable byte builders.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

/// A growable byte buffer for assembling messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Clears the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Freezes the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_share_allocation_on_clone() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&*a, &*b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(b"ab");
        buf.put_u8(b'c');
        assert_eq!(&*buf, b"abc");
        buf.clear();
        assert!(buf.is_empty());
        buf.put_slice(b"xy");
        assert_eq!(buf.freeze().to_vec(), b"xy");
    }
}
