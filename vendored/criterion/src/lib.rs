//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the same macro and
//! method surface the workspace benches use: [`Criterion`],
//! `bench_function`, `benchmark_group` (+ `sample_size`, `finish`),
//! [`criterion_group!`], [`criterion_main!`] and [`black_box`].
//!
//! Each benchmark is auto-calibrated to a per-sample iteration count,
//! then timed over `sample_size` samples; the median, min and max
//! per-iteration times are printed. No statistics beyond that — the
//! goal is honest, dependency-free numbers, not criterion's analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Parses command-line configuration (accepted for API parity; the
    /// stand-in ignores filters and flags).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, self.target_sample_time, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
            _parent: self,
        }
    }

    /// Final-summary hook (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    target_sample_time: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-sample time budget for benches in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_sample_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, self.target_sample_time, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_bench(
    name: &str,
    sample_size: usize,
    target_sample_time: Duration,
    f: &mut impl FnMut(&mut Bencher),
) {
    // Calibration: find an iteration count filling ~target_sample_time.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            samples: Vec::new(),
        };
        f(&mut b);
        let elapsed = b.samples.last().copied().unwrap_or_default();
        if elapsed >= target_sample_time / 2 || iters >= 1 << 30 {
            break;
        }
        let scale = if elapsed.is_zero() {
            16.0
        } else {
            (target_sample_time.as_secs_f64() / elapsed.as_secs_f64()).clamp(1.5, 16.0)
        };
        iters = ((iters as f64 * scale) as u64).max(iters + 1);
    }

    let mut b = Bencher {
        iters,
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter.first().copied().unwrap_or(0.0);
    let max = per_iter.last().copied().unwrap_or(0.0);
    println!(
        "bench: {name:<40} {:>12} /iter (min {}, max {}, {} iters × {} samples)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        iters,
        per_iter.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_runs_and_reports() {
        let mut c = crate::Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| crate::black_box(1 + 1));
            ran += 1;
        });
        assert!(ran >= 3, "calibration plus samples must run the closure");
    }
}
