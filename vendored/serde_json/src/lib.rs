//! Offline stand-in for `serde_json`.
//!
//! JSON text encoding/decoding over the vendored `serde` value tree.
//! Covers the workspace's API surface: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`to_value`], [`from_str`],
//! [`from_value`], the [`json!`] macro, and [`Value`].
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, which
//! gives `float_roundtrip` semantics by construction.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Number, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Lowers a value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize(&value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Parses JSON bytes into a typed value.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports object literals with string-literal keys, array literals,
/// `null`, nested literals, and arbitrary expressions convertible into
/// a `Value` via [`to_value`].
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Internal dispatch for [`json!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let items = {
            let mut items = ::std::vec::Vec::new();
            $crate::json_array!(items () $($tt)+);
            items
        };
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $crate::json_object!(map () $($tt)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

/// Internal muncher for [`json!`] array elements: accumulates one
/// element's tokens in a parenthesized group until a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ($items:ident ()) => {};
    ($items:ident () $($rest:tt)+) => {
        $crate::json_array!(@val $items () $($rest)+);
    };
    (@val $items:ident ($($val:tt)*) , $($rest:tt)*) => {
        $items.push($crate::json_internal!($($val)*));
        $crate::json_array!($items () $($rest)*);
    };
    (@val $items:ident ($($val:tt)*)) => {
        $items.push($crate::json_internal!($($val)*));
    };
    (@val $items:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array!(@val $items ($($val)* $next) $($rest)*);
    };
}

/// Internal muncher for [`json!`] object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ($map:ident ()) => {};
    ($map:ident () $key:literal : $($rest:tt)+) => {
        $crate::json_object!(@val $map $key () $($rest)+)
    };
    (@val $map:ident $key:literal ($($val:tt)*) , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json_internal!($($val)*));
        $crate::json_object!($map () $($rest)*);
    };
    (@val $map:ident $key:literal ($($val:tt)*)) => {
        $map.insert($key.to_string(), $crate::json_internal!($($val)*));
    };
    (@val $map:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object!(@val $map $key ($($val)* $next) $($rest)*)
    };
}

// --- printing --------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Number::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) if v.is_finite() => {
            // Rust's Display prints the shortest string that reparses
            // to the same f64 — round-trip exact.
            let _ = write!(out, "{v}");
        }
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                if self.peek() != Some(b'u') {
                                    return Err(Error("lone high surrogate".to_string()));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (lo.checked_sub(0xDC00).ok_or_else(|| {
                                        Error("invalid low surrogate".to_string())
                                    })?);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".to_string()))?);
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(Error("invalid escape".to_string())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads 4 hex digits after the current position has consumed `\u`.
    fn hex4(&mut self) -> Result<u32, Error> {
        self.pos += 1; // the `u` (or final surrogate `u`)
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let s = std::str::from_utf8(digits).map_err(|_| Error("bad \\u escape".to_string()))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".to_string()))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        let n = if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                Number::Int(v)
            } else if let Ok(v) = text.parse::<u64>() {
                Number::UInt(v)
            } else {
                Number::Float(
                    text.parse::<f64>()
                        .map_err(|e| Error(format!("bad number {text:?}: {e}")))?,
                )
            }
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|e| Error(format!("bad number {text:?}: {e}")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = json!({
            "name": "dinner",
            "frames": [1, 2, 3],
            "nested": {"pi": ::std::f64::consts::PI, "ok": true, "none": null}
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, f64::MAX, 5e-324, -2.5] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tüñî\u{1F37D}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"a": [1]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\""), "{pretty}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str(r#""Aé""#).unwrap();
        assert_eq!(v, "Aé");
    }
}
