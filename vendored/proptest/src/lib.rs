//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/runner subset the workspace's property tests
//! use: range and tuple strategies, `prop_map` / `prop_filter` /
//! `prop_filter_map`, `collection::vec`, `option::of`, `bool::ANY`,
//! `prop_oneof!`, `Just`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` family.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its seed and message only), and the per-test RNG is seeded from the
//! test's name, so runs are deterministic.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
    /// Maximum generation rejections (filters/`prop_assume`) tolerated
    /// before the property errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 48,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case asked to be discarded (`prop_assume!` / filters).
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG driving generation.
pub type TestRng = StdRng;

/// A value generator.
///
/// `generate` returns `None` when the candidate was rejected by a
/// filter; the runner retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one candidate value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _reason: reason,
            pred,
        }
    }

    /// Maps through a fallible transform; `None` rejects the candidate.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            _reason: reason,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    _reason: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

// --- range strategies ------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                (self.start < self.end).then(|| rng.random_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                (self.start() <= self.end()).then(|| rng.random_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// --- tuple strategies ------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// A length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.random_range(0u32..4) == 0 {
                Some(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> Option<::core::primitive::bool> {
            Some(rng.random::<::core::primitive::bool>())
        }
    }
}

pub mod num {
    //! Numeric strategies (full-domain `ANY` per type).

    macro_rules! num_mod {
        ($($m:ident : $t:ty),*) => {$(
            pub mod $m {
                //! Full-range strategy for the primitive.

                use crate::{Strategy, TestRng};
                use rand::Rng as _;

                /// The full-range strategy.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Uniformly random values over the whole domain.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                        Some(rng.next_u64() as $t)
                    }
                }
            }
        )*};
    }

    num_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i8: i8, i16: i16, i32: i32, i64: i64);
}

/// A weighted choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from weighted arms.
    ///
    /// # Panics
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
            "prop_oneof! needs at least one arm with positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.random_range(0u64..total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked")
    }
}

/// Runs one property: generates inputs and applies the body until
/// `config.cases` cases pass, panicking on the first failure.
///
/// This is the engine behind the [`proptest!`] macro; `gen_and_run`
/// returns `None` when generation rejected the candidate.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut gen_and_run: impl FnMut(&mut TestRng) -> Option<TestCaseResult>,
) {
    // Deterministic per-test seed (FNV-1a over the test path).
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::seed_from_u64(seed);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        case_index += 1;
        match gen_and_run(&mut rng) {
            None | Some(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{name}: too many rejected cases ({rejected}) — \
                         filters/prop_assume! discard nearly everything"
                    );
                }
            }
            Some(Ok(())) => passed += 1,
            Some(Err(TestCaseError::Fail(msg))) => {
                panic!("{name}: property failed at case #{case_index} (seed {seed:#x}):\n{msg}");
            }
        }
    }
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`run_property`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal muncher for [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                |rng| {
                    $(
                        let $arg = match $crate::Strategy::generate(&($strategy), rng) {
                            Some(v) => v,
                            None => return None,
                        };
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let case = (|| -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    })();
                    Some(case)
                },
            );
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0..2.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn maps_and_filters_compose(
            v in crate::collection::vec((0u32..50).prop_map(|x| x * 2), 1..8)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn assume_discards_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_picks_all_arms(x in prop_oneof![2 => 0i64..10, 1 => 100i64..110]) {
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_override_applies(b in crate::bool::ANY) {
            let _ = b;
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let caught = std::panic::catch_unwind(|| {
            crate::run_property("demo", &ProptestConfig::with_cases(3), |rng| {
                let x = crate::Strategy::generate(&(0u32..10), rng)?;
                Some(if x < 100 {
                    Err(TestCaseError::fail("always fails"))
                } else {
                    Ok(())
                })
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn option_of_produces_both() {
        use rand::SeedableRng as _;
        let strat = crate::option::of(0u32..5);
        let mut rng = crate::TestRng::seed_from_u64(1);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match crate::Strategy::generate(&strat, &mut rng).unwrap() {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
