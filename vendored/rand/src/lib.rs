//! Offline stand-in for `rand` 0.9.
//!
//! Provides the API surface the workspace uses: `StdRng` (implemented
//! as xoshiro256++ seeded via SplitMix64), the `Rng` trait with
//! `random()` / `random_range()`, and `SeedableRng::seed_from_u64`.
//! Deterministic for a given seed, which is all the synthetic scenario
//! scripting and classifier initialization require.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can seed an RNG.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` over its natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A random boolean, true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Distribution over a type's natural domain (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{Rng, SeedableRng};

    /// The standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
            let x = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
