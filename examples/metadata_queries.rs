//! The metadata repository and its query vocabulary (paper §II-E):
//! semantic retrieval over an analyzed dining event.
//!
//! Run with: `cargo run --release --example metadata_queries`

use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_metadata::{Query, RecordKind};
use dievent_scene::Scenario;

fn main() {
    let recording = Recording::capture(Scenario::two_camera_dinner(300, 21));
    let analysis = DiEventPipeline::new(PipelineConfig::default())
        .run(&recording)
        .expect("pipeline run");
    let repo = &analysis.repository;
    println!("repository holds {} records\n", repo.len());

    // Q1: the event record.
    let events = repo.query(&Query::new().kind(RecordKind::Event));
    println!("Q1 events: {}", events.len());
    for e in &events {
        println!(
            "   {:?} participants={:?}",
            e.attr("name"),
            e.attr("participants")
        );
    }

    // Q2: frames with at least one mutual eye contact between t=5s and t=15s.
    let q2 = Query::new()
        .kind(RecordKind::FrameAnalysis)
        .ge("eye_contacts", 1i64)
        .overlapping(5.0, 15.0);
    println!(
        "\nQ2 frames with eye contact in [5s, 15s): {}",
        repo.count(&q2)
    );

    // Q3: the happiest moments (OH above threshold).
    let q3 = Query::new()
        .kind(RecordKind::FrameAnalysis)
        .ge("oh", 20.0)
        .limit(5);
    let happiest = repo.query(&q3);
    println!("\nQ3 first frames with OH ≥ 20%: {}", happiest.len());
    for r in &happiest {
        println!("   frame {:?} oh={:?}", r.attr("frame"), r.attr("oh"));
    }

    // Q4: highlight records of eye-contact kind.
    let q4 = Query::new().kind(RecordKind::Highlight).eq("kind", "ec");
    println!("\nQ4 eye-contact highlights: {}", repo.count(&q4));

    // Q5: shots overlapping the first ten seconds.
    let q5 = Query::new().kind(RecordKind::Shot).overlapping(0.0, 10.0);
    println!("Q5 shots overlapping [0s, 10s): {}", repo.count(&q5));
}
