//! Regenerates the paper's Figure 7 and Figure 8 as image files:
//! the four synchronized camera views (PGM) and the look-at top-view
//! map (PPM) at t = 10 s and t = 15 s, from the *detected* matrices of
//! the full pixel pipeline.
//!
//! Run with: `cargo run --release --example figure_maps [out_dir]`

use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::{render_topview_map, Renderer, Scenario};
use dievent_video::{save_pgm, save_ppm};

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figures".to_owned());
    std::fs::create_dir_all(&out_dir)?;

    let scenario = Scenario::prototype();
    let recording = Recording::capture(scenario.clone());
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);
    println!("running the prototype pipeline…");
    let analysis = pipeline.run(&recording).expect("pipeline run");

    let renderer = Renderer::default();
    for (fig, t) in [("fig7", 10.0), ("fig8", 15.0)] {
        let frame_idx = ((t * scenario.spec.fps).round() as usize).min(recording.frames() - 1);
        // (a) the four camera views.
        for cam in 0..recording.cameras() {
            let img = renderer.render(&scenario, &recording.ground_truth.snapshots[frame_idx], cam);
            let path = format!("{out_dir}/{fig}a_camera{}.pgm", cam + 1);
            save_pgm(&img, &path)?;
            println!("wrote {path}");
        }
        // (b) the look-at top-view map from the DETECTED matrix.
        let m = analysis.matrix_at(t).expect("frame in range");
        let n = m.len();
        let rows: Vec<Vec<u8>> = (0..n)
            .map(|g| (0..n).map(|target| m.get(g, target)).collect())
            .collect();
        let map = render_topview_map(&scenario, &rows, 640);
        let path = format!("{out_dir}/{fig}b_lookat_map.ppm");
        save_ppm(&map, &path)?;
        println!("wrote {path}");
        let looks: Vec<String> = analysis
            .looks_at(t)
            .iter()
            .map(|(g, target)| {
                format!(
                    "{}→{}",
                    scenario.participants[*g].color.name(),
                    scenario.participants[*target].color.name()
                )
            })
            .collect();
        println!("  {fig} @ t={t}s: {}", looks.join(", "));
    }
    Ok(())
}
