//! Emotion recognition and overall-emotion estimation (paper §II-C,
//! §II-D-2, Fig. 5): the smart-restaurant satisfaction use case.
//!
//! Trains the LBP + MLP classifier on rendered expression patches,
//! reports its held-out confusion matrix, then tracks the overall
//! happiness (OH) of a dinner whose emotion dynamics are biased happy
//! ("a good meal").
//!
//! Run with: `cargo run --release --example emotion_analysis`

use dievent_core::{
    train_emotion_classifier, DiEventPipeline, PipelineConfig, Recording, TrainingSetConfig,
};
use dievent_emotion::Emotion;
use dievent_scene::{EmotionDynamicsConfig, Scenario};

fn main() {
    // --- Classifier training report. ---
    let cfg = TrainingSetConfig::default();
    let (_classifier, report) = train_emotion_classifier(&cfg, 42);
    println!(
        "emotion classifier: {:.1}% held-out accuracy over {} classes",
        report.test_accuracy * 100.0,
        Emotion::COUNT
    );
    println!("confusion matrix (rows = actual, cols = predicted):");
    print!("        ");
    for e in Emotion::ALL {
        print!("{:>9}", e.to_string());
    }
    println!();
    for actual in Emotion::ALL {
        print!("{:>8}", actual.to_string());
        for predicted in Emotion::ALL {
            print!(
                "{:>9}",
                report.confusion.get(actual.index(), predicted.index())
            );
        }
        println!();
    }

    // --- A "good meal": emotion dynamics biased toward happy. ---
    let mut scenario = Scenario::two_camera_dinner(300, 99);
    scenario.emotion_config = EmotionDynamicsConfig {
        stay_probability: 0.96,
        happy_weight: 8.0,
        neutral_weight: 2.0,
        other_weight: 0.2,
    };
    let recording = Recording::capture(scenario);
    let pipeline = DiEventPipeline::new(PipelineConfig::default());
    let analysis = pipeline.run(&recording).expect("pipeline run");

    println!("\noverall happiness (OH) over time (Fig. 5 series):");
    let step = analysis.overall.len() / 20;
    for (f, o) in analysis.overall.iter().enumerate().step_by(step.max(1)) {
        let bars = (o.overall_happiness / 4.0).round() as usize;
        println!(
            "  t={:>5.1}s OH={:>5.1}% {}",
            f as f64 / analysis.fps,
            o.overall_happiness,
            "█".repeat(bars)
        );
    }
    println!("\nmean OH: {:.1}%", analysis.mean_overall_happiness());
    println!(
        "emotion-shift highlights: {}",
        analysis
            .highlights
            .iter()
            .filter(|h| matches!(
                h.kind,
                dievent_summarize::HighlightKind::EmotionShift { .. }
            ))
            .count()
    );
}
