//! Multi-tenant event server smoke run: bind on an ephemeral port,
//! open three concurrent dining events over the framed TCP protocol,
//! stream each a short two-camera recording from its own client
//! thread, probe the live `GET /tenants` snapshot mid-run, then drain
//! and check every tenant's conservation ledger.
//!
//! Run with: `cargo run --release --example server`
//!
//! Exits non-zero if any assertion fails, so CI can use it as a smoke
//! test for the whole server stack (admission, ingest decode, fair
//! shared-pool scheduling, per-tenant telemetry labels, drain).

use dievent_core::{EventId, PipelineConfig, Recording};
use dievent_scene::Scenario;
use dievent_server::{EventClient, EventServer, ServerConfig};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::time::Duration;

const TENANTS: u64 = 3;
const FRAMES: usize = 24;

/// Minimal HTTP/1.1 GET over std TcpStream: returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to observe endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    let server = EventServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        ServerConfig {
            observe_addr: Some("127.0.0.1:0".parse().expect("loopback")),
            sample_interval: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .expect("bind event server");
    let ingest = server.local_addr();
    let observe = server.observe_addr().expect("observability plane bound");
    println!("event server: ingest on {ingest}, observe on http://{observe}");

    // Each venue gets a distinct scenario seed and its own connection,
    // like three restaurants streaming into one shared deployment.
    let config = PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..=TENANTS)
            .map(|id| {
                s.spawn(move || {
                    let event = EventId::new(id);
                    let scenario = Scenario::two_camera_dinner(FRAMES, id);
                    let recording = Recording::capture(scenario.clone());
                    let mut client = EventClient::connect(ingest).expect("connect");
                    client
                        .open_event(event, &scenario, config)
                        .expect("open io")
                        .expect("open admitted");
                    for f in 0..FRAMES {
                        for c in 0..recording.cameras() {
                            client
                                .send_frame(event, c.into(), f as u64, recording.frame(c, f))
                                .expect("send frame");
                        }
                    }
                    client
                        .finish_event(event)
                        .expect("finish io")
                        .expect("finish accepted")
                })
            })
            .collect();

        // Mid-run: the live snapshot must see the venues while their
        // sessions are open. (They may already be finishing; what
        // matters is the endpoint answers with well-formed state.)
        std::thread::sleep(Duration::from_millis(30));
        let (status, body) = http_get(observe, "/tenants");
        assert!(status.contains("200"), "GET /tenants: {status}");
        assert!(
            body.contains("\"draining\": false"),
            "mid-run snapshot: {body}"
        );
        println!("mid-run GET /tenants ->\n{body}");

        for handle in handles {
            let done = handle.join().expect("tenant thread");
            assert_eq!(done.pushed, (FRAMES * 2) as u64, "event {}", done.event);
            assert_eq!(
                done.processed + done.dropped,
                done.pushed,
                "event {}: conservation",
                done.event
            );
            assert_eq!(done.digest.frames, FRAMES, "event {}", done.event);
            println!(
                "event {}: pushed {} processed {} dropped {} dominant {:?}",
                done.event, done.pushed, done.processed, done.dropped, done.digest.dominant
            );
        }
    });

    // All sessions finished client-side; the registry must agree.
    let (status, body) = http_get(observe, "/tenants");
    assert!(status.contains("200"), "GET /tenants: {status}");
    assert!(body.contains("\"open\": 0"), "post-run snapshot: {body}");
    assert!(
        body.contains(&format!("\"finished\": {TENANTS}")),
        "post-run snapshot: {body}"
    );
    println!("all {TENANTS} venues finished; server state consistent");
}
