//! Quickstart: analyze a two-person dinner in a dozen lines.
//!
//! Run with: `cargo run --release --example quickstart`

use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::Scenario;

fn main() {
    // 1. "Record" a dining event: two participants face to face, the
    //    Fig. 2 two-camera acquisition platform, 10 seconds of video.
    let scenario = Scenario::two_camera_dinner(250, 7);
    let recording = Recording::capture(scenario);

    // 2. Run the full DiEvent pipeline (detection → landmarks → pose →
    //    gaze → tracking → recognition → emotion → fusion → look-at
    //    matrices → metadata repository).
    let config = PipelineConfig::builder().build().expect("valid config");
    let pipeline = DiEventPipeline::new(config);
    let analysis = pipeline.run(&recording).expect("pipeline run");

    // 3. Inspect the results.
    println!("{}", analysis.brief());
    println!("look-at summary matrix:\n{}", analysis.summary_table());
    for ep in analysis.episodes.iter().take(5) {
        println!(
            "eye contact P{}↔P{}: frames {}..{} ({:.1}s)",
            ep.a + 1,
            ep.b + 1,
            ep.start,
            ep.end,
            ep.len() as f64 / analysis.fps
        );
    }
}
