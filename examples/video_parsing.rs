//! Video composition analysis (paper §II-B, Fig. 3): parsing a video
//! into scenes → shots → key frames.
//!
//! Builds a synthetic multi-shot video by alternating between the two
//! cameras of the acquisition rig (like a gallery edit of the event)
//! and runs the parser on it.
//!
//! Run with: `cargo run --release --example video_parsing`

use dievent_core::Recording;
use dievent_scene::Scenario;
use dievent_video::{ShotDetectorConfig, VideoParser, VideoParserConfig};

fn main() {
    let scenario = Scenario::two_camera_dinner(240, 3);
    let spec = scenario.spec;
    let recording = Recording::capture(scenario);

    // Gallery edit: 3-second takes alternating between cameras, with a
    // downsample to keep the demo quick.
    let take = 45usize;
    let mut frames = Vec::new();
    for f in 0..recording.frames() {
        let cam = (f / take) % 2;
        frames.push(recording.frame(cam, f).downsample2());
    }
    let mut edited_spec = spec;
    edited_spec.width /= 2;
    edited_spec.height /= 2;

    // Surveillance footage of one room shares most background pixels
    // between views, so camera switches move far fewer pixels than
    // cinematic cuts — lower the absolute cut floor accordingly (the
    // adaptive mean + k·sigma term still rejects sensor noise).
    let parser_cfg = VideoParserConfig {
        shots: ShotDetectorConfig {
            min_cut_distance: 0.02,
            ..ShotDetectorConfig::default()
        },
        ..VideoParserConfig::default()
    };
    let structure = VideoParser::new(parser_cfg).parse_frames(edited_spec, &frames);
    println!("{}", structure.outline());

    println!("boundaries detected:");
    for b in &structure.boundaries {
        println!(
            "  frame {:>4} ({:?}, score {:.3}) — true cut at multiples of {take}",
            b.frame, b.kind, b.score
        );
    }
    let expected: Vec<usize> = (1..)
        .map(|k| k * take)
        .take_while(|&c| c < recording.frames())
        .collect();
    let detected: Vec<usize> = structure.boundaries.iter().map(|b| b.frame).collect();
    let hits = expected
        .iter()
        .filter(|e| detected.iter().any(|d| d.abs_diff(**e) <= 1))
        .count();
    println!(
        "cut detection: {hits}/{} scripted camera switches recovered",
        expected.len()
    );
}
