//! A sociology study on a synthetic dinner — the paper's second
//! headline use case ("performing sociology studies in dining events",
//! grounded in its Argyle & Dean citation: pairs interested in each
//! other make more eye contact).
//!
//! Six guests with declared relationships sit down to dinner. The
//! conversation model is given matching affinities (the couple and the
//! two friends glance at each other more). The pipeline then measures
//! eye contact from pixels, and the social join recovers the Argyle–
//! Dean ordering: engaged pairs (couple, friends) well above
//! colleagues, and everyone above strangers.
//!
//! Run with: `cargo run --release --example sociology_study`

use dievent_analysis::layers::{SocialRelation, TimeInvariantContext};
use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::{generate_conversation, ConversationConfig, Scenario};

fn main() {
    let guests = 6;
    let frames = 1800;

    // Declared relationships (the external layer).
    let mut context = TimeInvariantContext {
        location: "Chez DiEvent, table 3".into(),
        date: "2018-04-17".into(),
        occasion: "birthday dinner".into(),
        menu: vec![
            "onion soup".into(),
            "coq au vin".into(),
            "tarte tatin".into(),
        ],
        participants: guests,
        participant_names: (1..=guests).map(|i| format!("P{i}")).collect(),
        temperature_c: Some(21.0),
        ..Default::default()
    };
    context.set_relation(0, 3, SocialRelation::Family); // the couple, seated apart
    context.set_relation(1, 4, SocialRelation::Friends);
    context.set_relation(2, 5, SocialRelation::Colleagues);

    // Matching affinities for the conversation model.
    let mut affinity = vec![vec![1.0; guests]; guests];
    let mut boost = |a: usize, b: usize, w: f64| {
        affinity[a][b] = w;
        affinity[b][a] = w;
    };
    boost(0, 3, 16.0); // couple
    boost(1, 4, 4.0); // friends
    boost(2, 5, 1.5); // colleagues: barely above baseline

    let mut scenario = Scenario::restaurant_dinner(guests, frames, 2024);
    let (schedule, _) = generate_conversation(
        guests,
        frames,
        &ConversationConfig {
            affinity: Some(affinity),
            ..Default::default()
        },
        2024,
    );
    scenario.schedule = schedule;

    let recording = Recording::capture(scenario).with_context(context);
    println!("analyzing the dinner ({guests} guests, {frames} frames, 4 cameras)…");
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .build()
        .expect("valid config");
    let analysis = DiEventPipeline::new(config)
        .run(&recording)
        .expect("pipeline run");

    println!("\neye-contact profile by declared relationship:");
    println!(
        "{:<14} {:>6} {:>16} {:>15}",
        "relationship", "pairs", "contact ratio", "episodes/pair"
    );
    for p in analysis.social_profiles() {
        let name = match &p.relation {
            SocialRelation::Family => "family/couple",
            SocialRelation::Friends => "friends",
            SocialRelation::Colleagues => "colleagues",
            SocialRelation::Strangers => "strangers",
            SocialRelation::Other(s) => s.as_str(),
        };
        println!(
            "{name:<14} {:>6} {:>15.1}% {:>15.1}",
            p.pairs,
            p.mean_contact_ratio * 100.0,
            p.mean_episodes
        );
    }

    println!("\n{}", analysis.brief());
    println!(
        "event record query: repository knows this was a {:?} at {:?}",
        analysis
            .repository
            .query(&dievent_metadata::Query::new().kind(dievent_metadata::RecordKind::Event))[0]
            .attr("occasion"),
        analysis
            .repository
            .query(&dievent_metadata::Query::new().kind(dievent_metadata::RecordKind::Event))[0]
            .attr("location"),
    );
}
