//! Streaming sessions: feed cameras incrementally, consume incremental
//! results.
//!
//! The batch entry point (`DiEventPipeline::run`) needs the whole
//! recording up front. A `PipelineSession` instead accepts per-camera
//! frames as they arrive — each camera gets a bounded, backpressured
//! queue and its own extraction worker — and emits a fused
//! `FrameAnalysis` for every frame as soon as all cameras (or the
//! reorder window) allow. `finish()` then completes the remaining
//! stages and returns the same `EventAnalysis` the batch path would.
//!
//! Run with: `cargo run --release --example streaming`
//!
//! With `--serve-metrics ADDR` (e.g. `127.0.0.1:0`), the session also
//! serves its live observability endpoints, and this example probes
//! its own `/healthz` and `/metrics` mid-run — validating the
//! Prometheus payload — before finishing. Exits non-zero if the
//! exposition is malformed, so CI can use it as a smoke test.

use dievent_core::{
    validate_exposition, BackpressureMode, DiEventPipeline, PipelineConfig, Recording,
};
use dievent_scene::Scenario;
use std::io::{Read, Write};
use std::net::SocketAddr;

/// Minimal HTTP/1.1 GET over std TcpStream: returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    let serve_metrics: Option<SocketAddr> = {
        let mut args = std::env::args().skip(1);
        match args.next().as_deref() {
            Some("--serve-metrics") => Some(
                args.next()
                    .expect("--serve-metrics requires an address")
                    .parse()
                    .expect("valid host:port"),
            ),
            _ => None,
        }
    };

    // A two-camera dinner stands in for two live 25 fps feeds.
    let scenario = Scenario::two_camera_dinner(250, 7);
    let recording = Recording::capture(scenario);

    let mut builder = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .channel_capacity(8)
        .backpressure(BackpressureMode::Block) // live feeds: DropOldest
        .reorder_window(32);
    if let Some(addr) = serve_metrics {
        builder = builder
            .serve_metrics(addr)
            .sample_interval(std::time::Duration::from_millis(50));
    }
    let config = builder.build().expect("valid config");
    let pipeline = DiEventPipeline::new(config);

    let mut session = pipeline.session(&recording.scenario).expect("session");
    // With port 0 the OS picks the port; the session knows the result.
    let endpoint = session.observer().and_then(|plane| plane.local_addr());
    if let Some(addr) = endpoint {
        println!("live observability plane on http://{addr}");
    }
    let feeds = session.take_feeds().expect("feeds");
    let frames = recording.frames();

    // One producer thread per camera, as if each were a capture card.
    std::thread::scope(|s| {
        for mut feed in feeds {
            let recording = &recording;
            s.spawn(move || {
                let camera = feed.camera();
                for f in 0..frames {
                    feed.push(recording.frame(camera, f)).expect("push frame");
                }
                // Dropping the feed ends this camera's stream.
            });
        }

        // Meanwhile, consume incremental per-frame results.
        let mut fused = 0usize;
        let mut looks = 0usize;
        let mut probed = false;
        while fused < frames {
            for frame in session.poll() {
                fused += 1;
                looks += frame.raw_matrix.count_ones();
                if frame.frame % 50 == 0 {
                    println!(
                        "frame {:3}: {} look(s), {} camera(s) reporting",
                        frame.frame,
                        frame.raw_matrix.count_ones(),
                        frame.cameras_reporting
                    );
                }
            }
            // Mid-run, probe our own observability endpoints once.
            if let Some(addr) = endpoint {
                if !probed && fused >= frames / 2 {
                    probed = true;
                    let (status, _) = http_get(addr, "/healthz");
                    assert!(status.contains("200"), "/healthz said {status}");
                    let (status, body) = http_get(addr, "/metrics");
                    assert!(status.contains("200"), "/metrics said {status}");
                    let stats = validate_exposition(&body).expect("valid Prometheus exposition");
                    assert!(
                        body.contains("dievent_frames_processed_total{camera=\"0\"}"),
                        "per-camera frame counters must be exposed"
                    );
                    println!(
                        "mid-run /metrics: {} samples in {} families, exposition valid",
                        stats.samples, stats.families
                    );
                }
            }
            std::thread::yield_now();
        }
        println!("streamed {fused} frames, {looks} raw looks total");
    });

    let analysis = session.finish().expect("finish");
    println!("\nfinal analysis (identical to the batch pipeline's):");
    println!("look-at summary matrix:\n{}", analysis.summary_table());
    if let Some(p) = analysis.dominance.dominant {
        println!("dominant participant: P{}", p + 1);
    }
}
