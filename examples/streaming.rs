//! Streaming sessions: feed cameras incrementally, consume incremental
//! results.
//!
//! The batch entry point (`DiEventPipeline::run`) needs the whole
//! recording up front. A `PipelineSession` instead accepts per-camera
//! frames as they arrive — each camera gets a bounded, backpressured
//! queue and its own extraction worker — and emits a fused
//! `FrameAnalysis` for every frame as soon as all cameras (or the
//! reorder window) allow. `finish()` then completes the remaining
//! stages and returns the same `EventAnalysis` the batch path would.
//!
//! Run with: `cargo run --release --example streaming`
//!
//! With `--serve-metrics ADDR` (e.g. `127.0.0.1:0`), the session also
//! serves its live observability endpoints, and this example probes
//! its own `/healthz` and `/metrics` mid-run — validating the
//! Prometheus payload — before finishing. With `--trace-lineage` the
//! session additionally stamps every frame with its causal lineage and
//! the mid-run probe validates the `/lineage` JSON shape (per-stage
//! breakdown + slowest-frame waterfalls). Exits non-zero if either
//! payload is malformed, so CI can use it as a smoke test.
//! `--prototype` streams the paper's 4-camera 610-frame rig instead of
//! the default two-camera dinner.

use dievent_core::{
    validate_exposition, BackpressureMode, DiEventPipeline, PipelineConfig, Recording,
};
use dievent_scene::Scenario;
use std::io::{Read, Write};
use std::net::SocketAddr;

/// Minimal HTTP/1.1 GET over std TcpStream: returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    let mut serve_metrics: Option<SocketAddr> = None;
    let mut trace_lineage = false;
    let mut prototype = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serve-metrics" => {
                serve_metrics = Some(
                    args.next()
                        .expect("--serve-metrics requires an address")
                        .parse()
                        .expect("valid host:port"),
                );
            }
            "--trace-lineage" => trace_lineage = true,
            "--prototype" => prototype = true,
            other => panic!("unknown option {other}"),
        }
    }

    // A two-camera dinner stands in for two live 25 fps feeds;
    // --prototype streams the paper's 4-camera 610-frame rig instead.
    let scenario = if prototype {
        Scenario::prototype()
    } else {
        Scenario::two_camera_dinner(250, 7)
    };
    let recording = Recording::capture(scenario);

    let mut builder = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .channel_capacity(8)
        .backpressure(BackpressureMode::Block) // live feeds: DropOldest
        .reorder_window(32);
    if let Some(addr) = serve_metrics {
        builder = builder
            .serve_metrics(addr)
            .sample_interval(std::time::Duration::from_millis(50));
    }
    if trace_lineage {
        builder = builder.trace_lineage(true);
    }
    let config = builder.build().expect("valid config");
    let pipeline = DiEventPipeline::new(config);

    let mut session = pipeline.session(&recording.scenario).expect("session");
    // With port 0 the OS picks the port; the session knows the result.
    let endpoint = session.observer().and_then(|plane| plane.local_addr());
    if let Some(addr) = endpoint {
        println!("live observability plane on http://{addr}");
    }
    let feeds = session.take_feeds().expect("feeds");
    let frames = recording.frames();

    // One producer thread per camera, as if each were a capture card.
    std::thread::scope(|s| {
        for mut feed in feeds {
            let recording = &recording;
            s.spawn(move || {
                let camera = feed.camera().index();
                for f in 0..frames {
                    feed.push(recording.frame(camera, f)).expect("push frame");
                }
                // Dropping the feed ends this camera's stream.
            });
        }

        // Meanwhile, consume incremental per-frame results.
        let mut fused = 0usize;
        let mut looks = 0usize;
        let mut probed = false;
        while fused < frames {
            for frame in session.poll() {
                fused += 1;
                looks += frame.raw_matrix.count_ones();
                if frame.frame % 50 == 0 {
                    println!(
                        "frame {:3}: {} look(s), {} camera(s) reporting",
                        frame.frame,
                        frame.raw_matrix.count_ones(),
                        frame.cameras_reporting
                    );
                }
            }
            // Mid-run, probe our own observability endpoints once.
            if let Some(addr) = endpoint {
                if !probed && fused >= frames / 2 {
                    probed = true;
                    let (status, _) = http_get(addr, "/healthz");
                    assert!(status.contains("200"), "/healthz said {status}");
                    let (status, body) = http_get(addr, "/metrics");
                    assert!(status.contains("200"), "/metrics said {status}");
                    let stats = validate_exposition(&body).expect("valid Prometheus exposition");
                    assert!(
                        body.contains("dievent_frames_processed_total{camera=\"0\"}"),
                        "per-camera frame counters must be exposed"
                    );
                    println!(
                        "mid-run /metrics: {} samples in {} families, exposition valid",
                        stats.samples, stats.families
                    );
                    if trace_lineage {
                        let (status, body) = http_get(addr, "/lineage");
                        assert!(status.contains("200"), "/lineage said {status}: {body}");
                        let value: serde_json::Value =
                            serde_json::from_str(&body).expect("/lineage is JSON");
                        assert_eq!(
                            value.get("enabled"),
                            Some(&serde_json::Value::Bool(true)),
                            "tracer must report itself enabled"
                        );
                        let summary = value.get("summary").expect("summary object");
                        let traced = summary
                            .get("frames_traced")
                            .and_then(|v| v.as_u64())
                            .expect("frames_traced");
                        assert!(traced > 0, "mid-run frames already traced:\n{body}");
                        let stages = summary
                            .get("stages")
                            .and_then(|v| v.as_array())
                            .expect("stages array");
                        for name in ["queue_wait", "extract", "reorder_hold", "fuse", "total"] {
                            assert!(
                                stages.iter().any(|s| {
                                    s.get("stage").and_then(|v| v.as_str()) == Some(name)
                                }),
                                "missing stage {name} in:\n{body}"
                            );
                        }
                        let exemplars = value
                            .get("exemplars")
                            .and_then(|v| v.as_array())
                            .expect("exemplars array");
                        assert!(
                            exemplars
                                .iter()
                                .all(|e| e.get("lanes").and_then(|v| v.as_array()).is_some()),
                            "every exemplar carries its full waterfall"
                        );
                        println!(
                            "mid-run /lineage: {traced} frames traced, {} stage summaries, \
                             {} slowest-frame exemplars",
                            stages.len(),
                            exemplars.len()
                        );
                    }
                }
            }
            std::thread::yield_now();
        }
        println!("streamed {fused} frames, {looks} raw looks total");
    });

    let analysis = session.finish().expect("finish");
    println!("\nfinal analysis (identical to the batch pipeline's):");
    println!("look-at summary matrix:\n{}", analysis.summary_table());
    if let Some(p) = analysis.dominance.dominant {
        println!("dominant participant: P{}", p + 1);
    }
}
