//! Streaming sessions: feed cameras incrementally, consume incremental
//! results.
//!
//! The batch entry point (`DiEventPipeline::run`) needs the whole
//! recording up front. A `PipelineSession` instead accepts per-camera
//! frames as they arrive — each camera gets a bounded, backpressured
//! queue and its own extraction worker — and emits a fused
//! `FrameAnalysis` for every frame as soon as all cameras (or the
//! reorder window) allow. `finish()` then completes the remaining
//! stages and returns the same `EventAnalysis` the batch path would.
//!
//! Run with: `cargo run --release --example streaming`

use dievent_core::{BackpressureMode, DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::Scenario;

fn main() {
    // A two-camera dinner stands in for two live 25 fps feeds.
    let scenario = Scenario::two_camera_dinner(250, 7);
    let recording = Recording::capture(scenario);

    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .channel_capacity(8)
        .backpressure(BackpressureMode::Block) // live feeds: DropOldest
        .reorder_window(32)
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);

    let mut session = pipeline.session(&recording.scenario).expect("session");
    let feeds = session.take_feeds().expect("feeds");
    let frames = recording.frames();

    // One producer thread per camera, as if each were a capture card.
    std::thread::scope(|s| {
        for mut feed in feeds {
            let recording = &recording;
            s.spawn(move || {
                let camera = feed.camera();
                for f in 0..frames {
                    feed.push(recording.frame(camera, f)).expect("push frame");
                }
                // Dropping the feed ends this camera's stream.
            });
        }

        // Meanwhile, consume incremental per-frame results.
        let mut fused = 0usize;
        let mut looks = 0usize;
        while fused < frames {
            for frame in session.poll() {
                fused += 1;
                looks += frame.raw_matrix.count_ones();
                if frame.frame % 50 == 0 {
                    println!(
                        "frame {:3}: {} look(s), {} camera(s) reporting",
                        frame.frame,
                        frame.raw_matrix.count_ones(),
                        frame.cameras_reporting
                    );
                }
            }
            std::thread::yield_now();
        }
        println!("streamed {fused} frames, {looks} raw looks total");
    });

    let analysis = session.finish().expect("finish");
    println!("\nfinal analysis (identical to the batch pipeline's):");
    println!("look-at summary matrix:\n{}", analysis.summary_table());
    if let Some(p) = analysis.dominance.dominant {
        println!("dominant participant: P{}", p + 1);
    }
}
