//! The §III prototype, end to end: four participants around a meeting
//! table, four synchronized corner cameras at 2.5 m, a 40-second /
//! 610-frame video — reproducing the paper's Figures 7, 8 and 9 through
//! the full pixel pipeline (render → detect → landmarks → pose → gaze →
//! track → recognize → fuse → look-at matrices).
//!
//! Run with: `cargo run --release --example prototype`

use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::Scenario;

fn main() {
    println!("=== DiEvent §III prototype ===\n");
    let scenario = Scenario::prototype();
    println!(
        "scenario: {} participants, {} cameras, {} frames ({:.0}s @ {:.2} fps)",
        scenario.participants.len(),
        scenario.rig.len(),
        scenario.frames(),
        scenario.frames() as f64 / scenario.spec.fps,
        scenario.spec.fps
    );
    let positions: Vec<(f64, f64)> = scenario
        .participants
        .iter()
        .map(|p| (p.seat_head.x, p.seat_head.y))
        .collect();
    let names: Vec<String> = scenario
        .participants
        .iter()
        .map(|p| format!("{} ({})", p.name, p.color.name()))
        .collect();
    println!("participants: {}\n", names.join(", "));

    let recording = Recording::capture(scenario);
    let pipeline = DiEventPipeline::new(PipelineConfig::default());

    let t0 = std::time::Instant::now();
    let analysis = pipeline.run(&recording).expect("pipeline run");
    let elapsed = t0.elapsed();
    println!(
        "pipeline: {} frames × {} cameras in {:.1}s ({:.1} fps aggregate)\n",
        recording.frames(),
        recording.cameras(),
        elapsed.as_secs_f64(),
        (recording.frames() * recording.cameras()) as f64 / elapsed.as_secs_f64()
    );

    // Figure 7: look-at top view at t = 10 s.
    println!("--- Figure 7 ---");
    print!("{}", analysis.lookat_top_view(10.0, &positions));
    println!();

    // Figure 8: look-at top view at t = 15 s.
    println!("--- Figure 8 ---");
    print!("{}", analysis.lookat_top_view(15.0, &positions));
    println!();

    // Figure 9: the summary matrix over all 610 frames.
    println!(
        "--- Figure 9: look-at summary matrix (sum over {} frames) ---",
        analysis.matrices.len()
    );
    print!("{}", analysis.summary_table());
    println!();
    let received: Vec<String> = (0..analysis.participants)
        .map(|p| format!("P{}: {}", p + 1, analysis.summary.received(p)))
        .collect();
    println!("received looks (column sums): {}", received.join("  "));
    if let Some(d) = analysis.dominance.dominant {
        println!(
            "dominant participant: P{} — as in the paper, the column-sum maximum\n",
            d + 1
        );
    }

    println!("--- report ---");
    print!("{}", analysis.brief());

    // Per-stage telemetry: spans, counters, and latency histograms
    // collected during the run (same output as `dievent --metrics`).
    println!("\n--- telemetry ---");
    print!("{}", pipeline.telemetry().render_tree());
}
