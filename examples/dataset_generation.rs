//! Dataset generation — the paper's stated future work ("We are
//! planning to collect and annotate a dataset customized for our
//! task"): export a fully-annotated synthetic dining-event dataset as
//! JSON lines, one record per frame, with ground-truth gaze targets,
//! look-at matrices, emotions and head poses.
//!
//! Run with: `cargo run --release --example dataset_generation [out.jsonl]`

use dievent_scene::{GroundTruth, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct FrameAnnotation {
    frame: usize,
    time: f64,
    participants: Vec<ParticipantAnnotation>,
    lookat: Vec<Vec<u8>>,
    eye_contacts: Vec<(usize, usize)>,
}

#[derive(Serialize)]
struct ParticipantAnnotation {
    name: String,
    head: [f64; 3],
    forward: [f64; 3],
    gaze: [f64; 3],
    emotion: String,
    intended_target: Option<usize>,
}

fn annotate(scenario: &Scenario, gt: &GroundTruth, radius: f64) -> Vec<FrameAnnotation> {
    gt.snapshots
        .iter()
        .map(|snap| FrameAnnotation {
            frame: snap.frame,
            time: snap.time,
            participants: snap
                .states
                .iter()
                .zip(&scenario.participants)
                .map(|(st, p)| ParticipantAnnotation {
                    name: p.name.clone(),
                    head: st.head.into(),
                    forward: st.forward.into(),
                    gaze: st.gaze.into(),
                    emotion: st.emotion.to_string(),
                    intended_target: st.intended_target,
                })
                .collect(),
            lookat: snap.lookat_matrix(radius),
            eye_contacts: snap.eye_contacts(radius),
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "dievent_dataset.jsonl".to_owned());
    let scenario = Scenario::prototype();
    let gt = scenario.simulate();
    let annotations = annotate(&scenario, &gt, 0.30);

    let mut lines = String::new();
    for a in &annotations {
        lines.push_str(&serde_json::to_string(a).expect("serializable annotation"));
        lines.push('\n');
    }
    std::fs::write(&out_path, &lines).expect("write dataset");

    let ec_frames = annotations
        .iter()
        .filter(|a| !a.eye_contacts.is_empty())
        .count();
    println!(
        "wrote {} annotated frames to {out_path} ({:.1} KB)",
        annotations.len(),
        lines.len() as f64 / 1024.0
    );
    println!(
        "{} frames ({:.0}%) contain mutual eye contact",
        ec_frames,
        100.0 * ec_frames as f64 / annotations.len() as f64
    );
}
