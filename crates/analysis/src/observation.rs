//! Frame-level observation types consumed by the analysis.
//!
//! The vision substrate produces per-camera measurements in each
//! camera's own frame (`F1`, `F2`, … in the paper's notation). The
//! analysis first brings them into one common world frame via each
//! camera's calibrated pose (`ʷT_c`, Eq. 1–2), then fuses duplicates.

use dievent_geometry::{Iso3, Ray, Vec3};
use serde::{Deserialize, Serialize};

/// One person as seen by one camera, in that camera's optical frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraObservation {
    /// Participant index (resolved by recognition/tracking).
    pub person: usize,
    /// Head centre in the camera frame (metres).
    pub head_cam: Vec3,
    /// Unit gaze direction in the camera frame, when the face was
    /// camera-facing enough to estimate it.
    pub gaze_cam: Option<Vec3>,
    /// Detection confidence / quality weight in `(0, 1]`.
    pub weight: f64,
}

/// All observations of one video frame across the whole rig.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameObservations {
    /// Per-camera entries: the camera's world pose `ʷT_c` plus what it
    /// saw this frame.
    pub cameras: Vec<(Iso3, Vec<CameraObservation>)>,
}

impl FrameObservations {
    /// Total number of per-camera person sightings.
    pub fn sightings(&self) -> usize {
        self.cameras.iter().map(|(_, v)| v.len()).sum()
    }
}

/// A fused, world-frame participant pose for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParticipantPose {
    /// Participant index.
    pub person: usize,
    /// Head centre in world coordinates.
    pub head: Vec3,
    /// Unit gaze direction in world coordinates, when any camera
    /// estimated one.
    pub gaze: Option<Vec3>,
    /// Number of cameras that contributed.
    pub support: usize,
}

impl ParticipantPose {
    /// The gaze ray of this participant, when a gaze is available.
    pub fn gaze_ray(&self) -> Option<Ray> {
        self.gaze.map(|g| Ray::new(self.head, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sightings_counts_across_cameras() {
        let obs = FrameObservations {
            cameras: vec![
                (
                    Iso3::IDENTITY,
                    vec![CameraObservation {
                        person: 0,
                        head_cam: Vec3::new(0.0, 0.0, 2.0),
                        gaze_cam: None,
                        weight: 1.0,
                    }],
                ),
                (Iso3::IDENTITY, vec![]),
            ],
        };
        assert_eq!(obs.sightings(), 1);
        assert_eq!(FrameObservations::default().sightings(), 0);
    }

    #[test]
    fn gaze_ray_requires_gaze() {
        let mut p = ParticipantPose {
            person: 0,
            head: Vec3::new(1.0, 2.0, 1.2),
            gaze: None,
            support: 1,
        };
        assert!(p.gaze_ray().is_none());
        p.gaze = Some(Vec3::X);
        let r = p.gaze_ray().unwrap();
        assert!(r.origin.approx_eq(p.head, 1e-12));
        assert!(r.dir.approx_eq(Vec3::X, 1e-12));
    }
}
