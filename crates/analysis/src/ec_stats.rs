//! Eye-contact episode statistics.
//!
//! The paper motivates EC detection with Argyle & Dean's findings: more
//! EC when the discussed topic is straightforward and less personal;
//! more EC between mutually interested pairs. Those are *aggregate*
//! properties of EC over time, so this module turns per-frame matrices
//! into episodes (maximal runs of sustained contact) and per-pair
//! statistics that expose exactly those indicators.

use crate::lookat::LookAtMatrix;
use serde::{Deserialize, Serialize};

/// A maximal run of consecutive frames during which a pair held mutual
/// eye contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcEpisode {
    /// The pair, with `a < b`.
    pub a: usize,
    /// Second participant of the pair.
    pub b: usize,
    /// First frame of the episode (inclusive).
    pub start: usize,
    /// One past the last frame (exclusive).
    pub end: usize,
}

impl EcEpisode {
    /// Episode length in frames.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for a degenerate empty episode.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Extracts all EC episodes from a matrix sequence, ordered by pair
/// then start frame. Episodes shorter than `min_frames` are dropped
/// (sub-perceptual contacts).
pub fn ec_episodes(seq: &[LookAtMatrix], min_frames: usize) -> Vec<EcEpisode> {
    let Some(first) = seq.first() else {
        return Vec::new();
    };
    let n = first.len();
    let mut out = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            let mut start: Option<usize> = None;
            for (f, m) in seq.iter().enumerate() {
                let ec = m.get(a, b) == 1 && m.get(b, a) == 1;
                match (ec, start) {
                    (true, None) => start = Some(f),
                    (false, Some(s)) => {
                        if f - s >= min_frames.max(1) {
                            out.push(EcEpisode {
                                a,
                                b,
                                start: s,
                                end: f,
                            });
                        }
                        start = None;
                    }
                    _ => {}
                }
            }
            if let Some(s) = start {
                if seq.len() - s >= min_frames.max(1) {
                    out.push(EcEpisode {
                        a,
                        b,
                        start: s,
                        end: seq.len(),
                    });
                }
            }
        }
    }
    out
}

/// Aggregate EC statistics for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairStats {
    /// The pair, with `a < b`.
    pub a: usize,
    /// Second participant.
    pub b: usize,
    /// Total frames in mutual contact.
    pub total_frames: usize,
    /// Number of distinct episodes.
    pub episodes: usize,
    /// Mean episode length in frames (0 when no episodes).
    pub mean_episode_len: f64,
    /// Fraction of the video spent in contact — the Argyle–Dean
    /// "affinity" indicator: pairs interested in each other score high.
    pub contact_ratio: f64,
}

/// Computes per-pair statistics over a matrix sequence. Pairs are
/// ordered lexicographically; every pair appears even with zero
/// contact.
pub fn pair_statistics(seq: &[LookAtMatrix], min_frames: usize) -> Vec<PairStats> {
    let Some(first) = seq.first() else {
        return Vec::new();
    };
    let n = first.len();
    let episodes = ec_episodes(seq, min_frames);
    let mut out = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            let pair_eps: Vec<&EcEpisode> =
                episodes.iter().filter(|e| e.a == a && e.b == b).collect();
            let total: usize = pair_eps.iter().map(|e| e.len()).sum();
            out.push(PairStats {
                a,
                b,
                total_frames: total,
                episodes: pair_eps.len(),
                mean_episode_len: if pair_eps.is_empty() {
                    0.0
                } else {
                    total as f64 / pair_eps.len() as f64
                },
                contact_ratio: total as f64 / seq.len() as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ec_frame(n: usize, pairs: &[(usize, usize)]) -> LookAtMatrix {
        let mut m = LookAtMatrix::zero(n);
        for &(a, b) in pairs {
            m.set(a, b, 1);
            m.set(b, a, 1);
        }
        m
    }

    fn no_ec(n: usize) -> LookAtMatrix {
        LookAtMatrix::zero(n)
    }

    #[test]
    fn empty_sequence() {
        assert!(ec_episodes(&[], 1).is_empty());
        assert!(pair_statistics(&[], 1).is_empty());
    }

    #[test]
    fn single_episode_detected_with_bounds() {
        let mut seq = vec![no_ec(3); 5];
        seq.extend(vec![ec_frame(3, &[(0, 2)]); 4]);
        seq.extend(vec![no_ec(3); 3]);
        let eps = ec_episodes(&seq, 1);
        assert_eq!(
            eps,
            vec![EcEpisode {
                a: 0,
                b: 2,
                start: 5,
                end: 9
            }]
        );
        assert_eq!(eps[0].len(), 4);
    }

    #[test]
    fn episode_running_to_the_end_is_closed() {
        let mut seq = vec![no_ec(2); 2];
        seq.extend(vec![ec_frame(2, &[(0, 1)]); 3]);
        let eps = ec_episodes(&seq, 1);
        assert_eq!(
            eps,
            vec![EcEpisode {
                a: 0,
                b: 1,
                start: 2,
                end: 5
            }]
        );
    }

    #[test]
    fn min_frames_filters_blips() {
        let mut seq = vec![no_ec(2); 3];
        seq.push(ec_frame(2, &[(0, 1)])); // 1-frame blip
        seq.extend(vec![no_ec(2); 3]);
        seq.extend(vec![ec_frame(2, &[(0, 1)]); 5]); // real episode
        let eps = ec_episodes(&seq, 3);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].len(), 5);
    }

    #[test]
    fn one_directional_look_is_not_contact() {
        let mut m = LookAtMatrix::zero(2);
        m.set(0, 1, 1);
        let eps = ec_episodes(&[m], 1);
        assert!(eps.is_empty());
    }

    #[test]
    fn multiple_pairs_tracked_independently() {
        let seq = vec![
            ec_frame(4, &[(0, 1), (2, 3)]),
            ec_frame(4, &[(0, 1)]),
            ec_frame(4, &[(2, 3)]),
        ];
        let eps = ec_episodes(&seq, 1);
        assert_eq!(eps.len(), 3);
        assert!(eps.contains(&EcEpisode {
            a: 0,
            b: 1,
            start: 0,
            end: 2
        }));
        assert!(eps.contains(&EcEpisode {
            a: 2,
            b: 3,
            start: 0,
            end: 1
        }));
        assert!(eps.contains(&EcEpisode {
            a: 2,
            b: 3,
            start: 2,
            end: 3
        }));
    }

    #[test]
    fn pair_statistics_cover_all_pairs() {
        let mut seq = vec![ec_frame(3, &[(0, 1)]); 6];
        seq.extend(vec![no_ec(3); 4]);
        let stats = pair_statistics(&seq, 1);
        assert_eq!(stats.len(), 3); // (0,1), (0,2), (1,2)
        let s01 = stats.iter().find(|s| s.a == 0 && s.b == 1).unwrap();
        assert_eq!(s01.total_frames, 6);
        assert_eq!(s01.episodes, 1);
        assert!((s01.mean_episode_len - 6.0).abs() < 1e-12);
        assert!((s01.contact_ratio - 0.6).abs() < 1e-12);
        let s02 = stats.iter().find(|s| s.a == 0 && s.b == 2).unwrap();
        assert_eq!(s02.total_frames, 0);
        assert_eq!(s02.mean_episode_len, 0.0);
    }

    #[test]
    fn affinity_ordering_matches_contact_time() {
        // Pair (0,1) talks a lot; pair (0,2) briefly: the Argyle–Dean
        // affinity indicator must rank (0,1) higher.
        let mut seq = Vec::new();
        seq.extend(vec![ec_frame(3, &[(0, 1)]); 20]);
        seq.extend(vec![ec_frame(3, &[(0, 2)]); 4]);
        let stats = pair_statistics(&seq, 1);
        let r01 = stats
            .iter()
            .find(|s| (s.a, s.b) == (0, 1))
            .unwrap()
            .contact_ratio;
        let r02 = stats
            .iter()
            .find(|s| (s.a, s.b) == (0, 2))
            .unwrap()
            .contact_ratio;
        assert!(r01 > r02);
    }
}
