//! Look-at matrices and eye-contact detection (paper §II-D-1).
//!
//! The per-frame **look-at matrix** is the paper's central data
//! structure (Fig. 4): an `n×n` binary matrix with `m[x][y] = 1` when
//! participant `x` looks at participant `y`, filled by `n(n−1)`
//! ray–sphere tests (Eq. 3–5). **Eye contact** between `x` and `y`
//! requires both `m[x][y]` and `m[y][x]`. Summing the matrices over a
//! video gives the Fig. 9 summary, whose column sums identify the
//! "dominant" participant.

use crate::observation::ParticipantPose;
use dievent_geometry::Sphere;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a gaze ray is tested against a potential target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GazeCriterion {
    /// The paper's Eq. 3–5 formulation: the ray must pierce a sphere of
    /// [`LookAtConfig::attention_radius`] around the target's head.
    /// Distance-dependent: the same angular error passes at close range
    /// and fails far away.
    SphereHit,
    /// A visual-attention cone: the angle between the gaze and the
    /// direction to the target's head must not exceed `half_angle`
    /// (radians). Distance-independent; the `ablation_criterion` bench
    /// compares the two.
    Cone {
        /// Cone half-angle in radians.
        half_angle: f64,
    },
}

/// Parameters of the eye-contact geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LookAtConfig {
    /// Radius of the attention sphere around each head (the paper's
    /// `r` in Eq. 3). Larger values tolerate more gaze-estimation error
    /// but blur adjacent targets; the `ablation_head_radius` bench
    /// sweeps this. Only used by [`GazeCriterion::SphereHit`].
    pub attention_radius: f64,
    /// When `true`, a gaze may only be credited to the *nearest*
    /// intersected head (no looking through people). The paper's
    /// formulation marks every intersected sphere; nearest-hit is the
    /// physically meaningful refinement and the default.
    pub nearest_hit_only: bool,
    /// The per-target test (the paper's sphere by default).
    pub criterion: GazeCriterion,
}

impl Default for LookAtConfig {
    fn default() -> Self {
        LookAtConfig {
            attention_radius: 0.30,
            nearest_hit_only: true,
            criterion: GazeCriterion::SphereHit,
        }
    }
}

/// An `n×n` binary look-at matrix for one frame.
///
/// Rows are gazers, columns are targets, indexed by participant index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookAtMatrix {
    n: usize,
    cells: Vec<u8>,
}

impl LookAtMatrix {
    /// An all-zero matrix over `n` participants.
    pub fn zero(n: usize) -> Self {
        LookAtMatrix {
            n,
            cells: vec![0; n * n],
        }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for a 0-participant matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cell `(gazer, target)`.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn get(&self, gazer: usize, target: usize) -> u8 {
        assert!(gazer < self.n && target < self.n);
        self.cells[gazer * self.n + target]
    }

    /// Sets cell `(gazer, target)`.
    ///
    /// # Panics
    /// Panics when out of range or `gazer == target`.
    pub fn set(&mut self, gazer: usize, target: usize, v: u8) {
        assert!(gazer < self.n && target < self.n);
        assert_ne!(gazer, target, "diagonal must stay zero");
        self.cells[gazer * self.n + target] = v.min(1);
    }

    /// Builds the matrix from fused world-frame poses.
    ///
    /// Participants are addressed by their `person` index; the matrix is
    /// sized by `n` (persons with indexes ≥ `n` are ignored). A person
    /// missing from `poses`, or present without a gaze estimate,
    /// contributes an all-zero row; a missing person also cannot be
    /// looked at (their head position is unknown).
    pub fn from_poses(n: usize, poses: &[ParticipantPose], config: &LookAtConfig) -> Self {
        Self::from_poses_with(n, poses, config, &mut LookAtScratch::new())
    }

    /// [`from_poses`](Self::from_poses) with a reusable scratch: the
    /// filtered target list is built once per frame (instead of once
    /// per gazer) in a buffer that survives across frames. Bit-identical
    /// to the allocating entry point.
    pub fn from_poses_with(
        n: usize,
        poses: &[ParticipantPose],
        config: &LookAtConfig,
        scratch: &mut LookAtScratch,
    ) -> Self {
        let mut m = LookAtMatrix::zero(n);
        scratch.targets.clear();
        scratch.targets.extend(
            poses
                .iter()
                .filter(|p| p.person < n)
                .map(|p| (p.person, p.head)),
        );
        let r2 = config.attention_radius * config.attention_radius;
        for gazer in poses.iter().filter(|p| p.person < n) {
            let Some(ray) = gazer.gaze_ray() else {
                continue;
            };
            // `best` ranks hits: ray distance for SphereHit (nearest
            // head wins), angular deviation for Cone (best-aimed wins).
            let mut best: Option<(usize, f64)> = None;
            for &(person, head) in &scratch.targets {
                if person == gazer.person {
                    continue;
                }
                let score = match config.criterion {
                    GazeCriterion::SphereHit => {
                        // Early reject on the squared distance before the
                        // full discriminant: with `delta = origin − head`
                        // and `b = dir·delta`, a hit needs
                        // `w = b² − |dir|²(|delta|² − r²) > 0` and
                        // `d_far = (−b + √w)/|dir|² > 0`. When
                        // `|delta|² ≥ r²`, `w ≤ b²`, so `b ≥ 0` forces
                        // `√w ≤ b` and `d_far ≤ 0` — provably no hit,
                        // skipping the sphere test entirely for the
                        // common "looking away" case.
                        let delta = ray.origin - head;
                        if ray.dir.dot(delta) >= 0.0 && delta.norm_sq() >= r2 {
                            continue;
                        }
                        let sphere = Sphere::new(head, config.attention_radius);
                        sphere.intersect_ray(&ray).map(|hit| hit.d_near.max(0.0))
                    }
                    GazeCriterion::Cone { half_angle } => {
                        let dev = ray.angular_deviation_to(head);
                        (dev <= half_angle).then_some(dev)
                    }
                };
                let Some(score) = score else { continue };
                if config.nearest_hit_only {
                    if best.is_none_or(|(_, b)| score < b) {
                        best = Some((person, score));
                    }
                } else {
                    m.set(gazer.person, person, 1);
                }
            }
            if config.nearest_hit_only {
                if let Some((t, _)) = best {
                    m.set(gazer.person, t, 1);
                }
            }
        }
        m
    }

    /// Pairs `(x, y)` with `x < y` in mutual eye contact:
    /// `m[x][y] = m[y][x] = 1`.
    pub fn eye_contacts(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for x in 0..self.n {
            for y in x + 1..self.n {
                if self.get(x, y) == 1 && self.get(y, x) == 1 {
                    out.push((x, y));
                }
            }
        }
        out
    }

    /// Number of 1-cells (total directed looks this frame).
    pub fn count_ones(&self) -> usize {
        self.cells.iter().filter(|&&c| c == 1).count()
    }
}

/// Reusable per-frame buffers for [`LookAtMatrix::from_poses_with`].
/// One per worker/chunk; the target list is rebuilt each frame but its
/// allocation is kept.
#[derive(Debug, Default, Clone)]
pub struct LookAtScratch {
    targets: Vec<(usize, dievent_geometry::Vec3)>,
}

impl LookAtScratch {
    /// An empty scratch; the buffer grows on first use.
    pub fn new() -> Self {
        LookAtScratch::default()
    }
}

impl fmt::Display for LookAtMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in 0..self.n {
            for t in 0..self.n {
                write!(f, "{} ", self.get(g, t))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Accumulated look-at counts over many frames (the Fig. 9 summary).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookAtSummary {
    n: usize,
    counts: Vec<u32>,
    frames: usize,
}

impl LookAtSummary {
    /// An empty summary over `n` participants.
    pub fn new(n: usize) -> Self {
        LookAtSummary {
            n,
            counts: vec![0; n * n],
            frames: 0,
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Number of accumulated frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Adds one frame's matrix.
    ///
    /// # Panics
    /// Panics on size mismatch.
    pub fn add(&mut self, m: &LookAtMatrix) {
        assert_eq!(m.len(), self.n, "matrix size mismatch");
        for (c, &v) in self.counts.iter_mut().zip(&m.cells) {
            *c += v as u32;
        }
        self.frames += 1;
    }

    /// Count at `(gazer, target)`.
    pub fn get(&self, gazer: usize, target: usize) -> u32 {
        self.counts[gazer * self.n + target]
    }

    /// Column sum: total looks *received* by `target` — the paper's
    /// dominance measure ("the yellow participant is the dominant of
    /// the meeting since the summation of the participant P1 column is
    /// the maximum").
    pub fn received(&self, target: usize) -> u32 {
        (0..self.n).map(|g| self.get(g, target)).sum()
    }

    /// Row sum: total looks *given* by `gazer`.
    pub fn given(&self, gazer: usize) -> u32 {
        (0..self.n).map(|t| self.get(gazer, t)).sum()
    }

    /// The matrix as rows of counts (for printing / serialization).
    pub fn rows(&self) -> Vec<Vec<u32>> {
        (0..self.n)
            .map(|g| (0..self.n).map(|t| self.get(g, t)).collect())
            .collect()
    }
}

impl fmt::Display for LookAtSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "      ")?;
        for t in 0..self.n {
            write!(f, "{:>6}", format!("P{}", t + 1))?;
        }
        writeln!(f)?;
        for g in 0..self.n {
            write!(f, "{:>6}", format!("P{}", g + 1))?;
            for t in 0..self.n {
                write!(f, "{:>6}", self.get(g, t))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dievent_geometry::Vec3;

    fn pose(person: usize, head: Vec3, gaze: Option<Vec3>) -> ParticipantPose {
        ParticipantPose {
            person,
            head,
            gaze,
            support: 1,
        }
    }

    /// Four participants at the corners of a square, like Fig. 4.
    fn square() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 1.2),
            Vec3::new(2.0, 0.0, 1.2),
            Vec3::new(2.0, 2.0, 1.2),
            Vec3::new(0.0, 2.0, 1.2),
        ]
    }

    #[test]
    fn fig4_example_ec_between_p2_and_p4() {
        // Fig. 4's matrix: EC holds between P2 and P4 because both
        // (2,4) and (4,2) cells are 1.
        let h = square();
        let poses = vec![
            pose(0, h[0], Some((h[1] - h[0]).normalized())), // P1 → P2
            pose(1, h[1], Some((h[3] - h[1]).normalized())), // P2 → P4
            pose(2, h[2], Some((h[0] - h[2]).normalized())), // P3 → P1
            pose(3, h[3], Some((h[1] - h[3]).normalized())), // P4 → P2
        ];
        let m = LookAtMatrix::from_poses(4, &poses, &LookAtConfig::default());
        assert_eq!(m.get(1, 3), 1);
        assert_eq!(m.get(3, 1), 1);
        assert_eq!(m.eye_contacts(), vec![(1, 3)]);
        // P1 → P2 is one-directional: no EC.
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 0), 0);
    }

    #[test]
    fn diagonal_always_zero() {
        let h = square();
        let poses: Vec<_> = (0..4).map(|i| pose(i, h[i], Some(Vec3::X))).collect();
        let m = LookAtMatrix::from_poses(4, &poses, &LookAtConfig::default());
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0);
        }
    }

    #[test]
    fn missing_gaze_gives_empty_row() {
        let h = square();
        let poses = vec![
            pose(0, h[0], None),
            pose(1, h[1], Some((h[0] - h[1]).normalized())),
        ];
        let m = LookAtMatrix::from_poses(4, &poses, &LookAtConfig::default());
        assert_eq!((0..4).map(|t| m.get(0, t) as u32).sum::<u32>(), 0);
        assert_eq!(m.get(1, 0), 1);
    }

    #[test]
    fn gaze_missing_everyone_gives_empty_matrix() {
        let h = square();
        let poses = vec![
            pose(0, h[0], Some(Vec3::Z)), // looking at the ceiling
            pose(1, h[1], Some(-Vec3::Z)),
        ];
        let m = LookAtMatrix::from_poses(4, &poses, &LookAtConfig::default());
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn nearest_hit_blocks_looking_through() {
        let a = Vec3::new(0.0, 0.0, 1.2);
        let b = Vec3::new(1.0, 0.0, 1.2);
        let c = Vec3::new(2.0, 0.0, 1.2);
        let poses = vec![
            pose(0, a, Some(Vec3::X)),
            pose(1, b, None),
            pose(2, c, None),
        ];
        let near = LookAtMatrix::from_poses(3, &poses, &LookAtConfig::default());
        assert_eq!(near.get(0, 1), 1);
        assert_eq!(near.get(0, 2), 0);
        // Paper-literal mode marks both.
        let all = LookAtMatrix::from_poses(
            3,
            &poses,
            &LookAtConfig {
                nearest_hit_only: false,
                ..LookAtConfig::default()
            },
        );
        assert_eq!(all.get(0, 1), 1);
        assert_eq!(all.get(0, 2), 1);
    }

    #[test]
    fn radius_widens_acceptance() {
        let a = Vec3::new(0.0, 0.0, 1.2);
        let b = Vec3::new(2.0, 0.0, 1.2);
        // Gaze off-target by ~8.5°: misses a 0.15 m sphere at 2 m but
        // hits a 0.45 m one.
        let gaze = Vec3::new(1.0, 0.15, 0.0).normalized();
        let poses = vec![pose(0, a, Some(gaze)), pose(1, b, None)];
        let tight = LookAtMatrix::from_poses(
            2,
            &poses,
            &LookAtConfig {
                attention_radius: 0.15,
                ..LookAtConfig::default()
            },
        );
        assert_eq!(tight.get(0, 1), 0);
        let wide = LookAtMatrix::from_poses(
            2,
            &poses,
            &LookAtConfig {
                attention_radius: 0.45,
                ..LookAtConfig::default()
            },
        );
        assert_eq!(wide.get(0, 1), 1);
    }

    #[test]
    fn cone_criterion_is_distance_independent() {
        let a = Vec3::new(0.0, 0.0, 1.2);
        let near = Vec3::new(1.0, 0.10, 1.2); // ~5.7° off at 1 m
        let far = Vec3::new(4.0, 0.40, 1.2); // ~5.7° off at 4 m
        let gaze = Vec3::X;
        let mk = |target: Vec3, person: usize| ParticipantPose {
            person,
            head: target,
            gaze: None,
            support: 1,
        };
        let gazer = ParticipantPose {
            person: 0,
            head: a,
            gaze: Some(gaze),
            support: 1,
        };

        // Sphere (r = 0.3): hits the near head (perp 0.10 < 0.3) and the
        // far one too (perp 0.40 > 0.3 → miss). Distance matters.
        let sphere_cfg = LookAtConfig::default();
        let m_near = LookAtMatrix::from_poses(2, &[gazer, mk(near, 1)], &sphere_cfg);
        let m_far = LookAtMatrix::from_poses(2, &[gazer, mk(far, 1)], &sphere_cfg);
        assert_eq!(m_near.get(0, 1), 1);
        assert_eq!(m_far.get(0, 1), 0);

        // Cone (8°): both pass — same angle, any distance.
        let cone_cfg = LookAtConfig {
            criterion: GazeCriterion::Cone {
                half_angle: 8f64.to_radians(),
            },
            ..LookAtConfig::default()
        };
        let c_near = LookAtMatrix::from_poses(2, &[gazer, mk(near, 1)], &cone_cfg);
        let c_far = LookAtMatrix::from_poses(2, &[gazer, mk(far, 1)], &cone_cfg);
        assert_eq!(c_near.get(0, 1), 1);
        assert_eq!(c_far.get(0, 1), 1);
    }

    #[test]
    fn cone_nearest_picks_best_aimed_target() {
        let a = Vec3::new(0.0, 0.0, 1.2);
        let close_off = Vec3::new(1.0, 0.12, 1.2); // 6.8° off
        let aligned = Vec3::new(3.0, 0.05, 1.2); // 0.95° off
        let gazer = ParticipantPose {
            person: 0,
            head: a,
            gaze: Some(Vec3::X),
            support: 1,
        };
        let p1 = ParticipantPose {
            person: 1,
            head: close_off,
            gaze: None,
            support: 1,
        };
        let p2 = ParticipantPose {
            person: 2,
            head: aligned,
            gaze: None,
            support: 1,
        };
        let cfg = LookAtConfig {
            criterion: GazeCriterion::Cone {
                half_angle: 10f64.to_radians(),
            },
            ..LookAtConfig::default()
        };
        let m = LookAtMatrix::from_poses(3, &[gazer, p1, p2], &cfg);
        assert_eq!(m.get(0, 2), 1, "best-aimed target wins under the cone");
        assert_eq!(m.get(0, 1), 0);
    }

    /// The pre-optimization formulation: full intersection on every
    /// pair, no early reject, no target-list reuse.
    fn reference_from_poses(
        n: usize,
        poses: &[ParticipantPose],
        config: &LookAtConfig,
    ) -> LookAtMatrix {
        let mut m = LookAtMatrix::zero(n);
        for gazer in poses.iter().filter(|p| p.person < n) {
            let Some(ray) = gazer.gaze_ray() else {
                continue;
            };
            let mut best: Option<(usize, f64)> = None;
            for target in poses.iter().filter(|p| p.person < n) {
                if target.person == gazer.person {
                    continue;
                }
                let score = match config.criterion {
                    GazeCriterion::SphereHit => {
                        let sphere = Sphere::new(target.head, config.attention_radius);
                        sphere.intersect_ray(&ray).map(|hit| hit.d_near.max(0.0))
                    }
                    GazeCriterion::Cone { half_angle } => {
                        let dev = ray.angular_deviation_to(target.head);
                        (dev <= half_angle).then_some(dev)
                    }
                };
                let Some(score) = score else { continue };
                if config.nearest_hit_only {
                    if best.is_none_or(|(_, b)| score < b) {
                        best = Some((target.person, score));
                    }
                } else {
                    m.set(gazer.person, target.person, 1);
                }
            }
            if config.nearest_hit_only {
                if let Some((t, _)) = best {
                    m.set(gazer.person, t, 1);
                }
            }
        }
        m
    }

    #[test]
    fn early_reject_path_matches_reference_on_random_scenes() {
        // Deterministic pseudo-random scenes, including rays that point
        // away, graze the sphere boundary, and originate inside it.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 2.0 - 1.0
        };
        let mut scratch = LookAtScratch::new();
        for _ in 0..50 {
            let n = 6;
            let poses: Vec<ParticipantPose> = (0..n)
                .map(|i| ParticipantPose {
                    person: i,
                    head: Vec3::new(next() * 2.0, next() * 2.0, 1.2 + next() * 0.2),
                    gaze: (i % 5 != 4)
                        .then(|| Vec3::new(next(), next(), next() * 0.3).normalized()),
                    support: 1,
                })
                .collect();
            for config in [
                LookAtConfig::default(),
                LookAtConfig {
                    attention_radius: 1.5, // large: rays may start inside
                    ..LookAtConfig::default()
                },
                LookAtConfig {
                    nearest_hit_only: false,
                    ..LookAtConfig::default()
                },
            ] {
                let fast = LookAtMatrix::from_poses_with(n, &poses, &config, &mut scratch);
                let reference = reference_from_poses(n, &poses, &config);
                assert_eq!(fast, reference, "config {config:?}");
            }
        }
    }

    #[test]
    fn summary_accumulates_and_ranks() {
        let h = square();
        let mut s = LookAtSummary::new(4);
        // 3 frames of P2,P3,P4 → P1 and P1 → P2.
        for _ in 0..3 {
            let poses = vec![
                pose(0, h[0], Some((h[1] - h[0]).normalized())),
                pose(1, h[1], Some((h[0] - h[1]).normalized())),
                pose(2, h[2], Some((h[0] - h[2]).normalized())),
                pose(3, h[3], Some((h[0] - h[3]).normalized())),
            ];
            s.add(&LookAtMatrix::from_poses(
                4,
                &poses,
                &LookAtConfig::default(),
            ));
        }
        assert_eq!(s.frames(), 3);
        assert_eq!(s.get(1, 0), 3);
        assert_eq!(s.received(0), 9, "P1 received all looks");
        assert_eq!(s.received(1), 3);
        assert_eq!(s.given(0), 3);
        let rows = s.rows();
        assert_eq!(rows[2][0], 3);
    }

    #[test]
    fn display_formats() {
        let mut m = LookAtMatrix::zero(2);
        m.set(0, 1, 1);
        let text = m.to_string();
        assert!(text.contains("0 1"));
        let mut s = LookAtSummary::new(2);
        s.add(&m);
        let st = s.to_string();
        assert!(st.contains("P1") && st.contains("P2"));
    }

    #[test]
    #[should_panic]
    fn setting_diagonal_panics() {
        let mut m = LookAtMatrix::zero(3);
        m.set(1, 1, 1);
    }
}
