//! Overall emotion estimation (paper §II-D-2, Fig. 5).
//!
//! "To estimate the general satisfaction of the participants, we need
//! to evaluate the participant's overall emotion. So, we fuse various
//! sources of information where the face recognition method, emotion
//! recognition, and the number of participants are combined to track
//! the participant's feeling state."
//!
//! Per frame, each recognized participant contributes their emotion
//! distribution (weighted by classifier confidence); fusing over the
//! known number of participants yields the group's emotion mix, the
//! **overall happiness** (OH, the percentage Fig. 5 shows) and a
//! valence score. An exponential moving average smooths the series into
//! the "feeling state" trajectory.

use dievent_emotion::Emotion;
use serde::{Deserialize, Serialize};

/// One participant's emotion estimate in one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmotionEstimate {
    /// Participant index (from face recognition).
    pub person: usize,
    /// Probability per emotion, indexed by [`Emotion::index`]. Need not
    /// be normalized; it is renormalized internally.
    pub probabilities: Vec<f64>,
    /// Classifier confidence weight in `(0, 1]`.
    pub confidence: f64,
}

impl EmotionEstimate {
    /// A hard single-emotion estimate.
    pub fn hard(person: usize, emotion: Emotion, confidence: f64) -> Self {
        let mut probabilities = vec![0.0; Emotion::COUNT];
        probabilities[emotion.index()] = 1.0;
        EmotionEstimate {
            person,
            probabilities,
            confidence,
        }
    }
}

/// Fusion tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverallEmotionConfig {
    /// Total number of participants (external information, per the
    /// paper). Participants unseen this frame contribute a neutral
    /// prior so one visible happy face cannot claim the whole group.
    pub participants: usize,
    /// EMA coefficient for temporal smoothing in `[0, 1)`; 0 disables
    /// smoothing.
    pub smoothing: f64,
}

impl Default for OverallEmotionConfig {
    fn default() -> Self {
        OverallEmotionConfig {
            participants: 4,
            smoothing: 0.9,
        }
    }
}

/// The fused group emotion for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverallEmotion {
    /// Group mix per emotion, indexed by [`Emotion::index`]; sums to 1.
    pub mix: Vec<f64>,
    /// Overall happiness percentage (the paper's `OH`), in `[0, 100]`.
    pub overall_happiness: f64,
    /// Mean valence in `[−1, 1]` (satisfaction scalar).
    pub valence: f64,
    /// How many participants were actually observed this frame.
    pub observed: usize,
}

/// Fuses one frame of per-participant estimates.
///
/// # Panics
/// Panics when an estimate's distribution has the wrong length or a
/// person index repeats.
pub fn fuse_emotions(
    estimates: &[EmotionEstimate],
    config: &OverallEmotionConfig,
) -> OverallEmotion {
    let n = config.participants.max(1);
    let mut seen = vec![false; n.max(estimates.iter().map(|e| e.person + 1).max().unwrap_or(0))];
    let mut mix = vec![0.0f64; Emotion::COUNT];
    let mut contributors = 0.0f64;
    let mut observed = 0usize;

    for est in estimates {
        assert_eq!(
            est.probabilities.len(),
            Emotion::COUNT,
            "distribution length"
        );
        assert!(
            !seen[est.person],
            "duplicate estimate for P{}",
            est.person + 1
        );
        seen[est.person] = true;
        observed += 1;
        let total: f64 = est.probabilities.iter().sum();
        if total <= 0.0 {
            continue;
        }
        let w = est.confidence.clamp(1e-6, 1.0);
        for (m, &p) in mix.iter_mut().zip(&est.probabilities) {
            *m += w * p / total;
        }
        contributors += w;
    }

    // Unseen participants contribute a neutral prior with unit weight.
    let unseen = n.saturating_sub(observed) as f64;
    mix[Emotion::Neutral.index()] += unseen;
    contributors += unseen;

    if contributors > 0.0 {
        for m in &mut mix {
            *m /= contributors;
        }
    }

    let overall_happiness = mix[Emotion::Happy.index()] * 100.0;
    let valence = Emotion::ALL
        .iter()
        .map(|&e| mix[e.index()] * e.valence())
        .sum();

    OverallEmotion {
        mix,
        overall_happiness,
        valence,
        observed,
    }
}

/// Fuses a whole sequence and applies EMA smoothing to the OH and
/// valence series. Returns one [`OverallEmotion`] per frame with the
/// smoothed values substituted in.
pub fn fuse_sequence(
    frames: &[Vec<EmotionEstimate>],
    config: &OverallEmotionConfig,
) -> Vec<OverallEmotion> {
    let alpha = config.smoothing.clamp(0.0, 0.999);
    let mut out = Vec::with_capacity(frames.len());
    let mut oh_state: Option<f64> = None;
    let mut val_state: Option<f64> = None;
    for ests in frames {
        let mut fused = fuse_emotions(ests, config);
        if alpha > 0.0 {
            let oh = oh_state.map_or(fused.overall_happiness, |s| {
                alpha * s + (1.0 - alpha) * fused.overall_happiness
            });
            let v = val_state.map_or(fused.valence, |s| alpha * s + (1.0 - alpha) * fused.valence);
            oh_state = Some(oh);
            val_state = Some(v);
            fused.overall_happiness = oh;
            fused.valence = v;
        }
        out.push(fused);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> OverallEmotionConfig {
        OverallEmotionConfig {
            participants: n,
            smoothing: 0.0,
        }
    }

    #[test]
    fn all_happy_gives_full_oh() {
        let ests: Vec<_> = (0..4)
            .map(|p| EmotionEstimate::hard(p, Emotion::Happy, 1.0))
            .collect();
        let o = fuse_emotions(&ests, &cfg(4));
        assert!((o.overall_happiness - 100.0).abs() < 1e-9);
        assert!((o.valence - 1.0).abs() < 1e-9);
        assert_eq!(o.observed, 4);
        assert!((o.mix.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_happy_half_sad() {
        let ests = vec![
            EmotionEstimate::hard(0, Emotion::Happy, 1.0),
            EmotionEstimate::hard(1, Emotion::Sad, 1.0),
        ];
        let o = fuse_emotions(&ests, &cfg(2));
        assert!((o.overall_happiness - 50.0).abs() < 1e-9);
        assert!((o.valence - (1.0 - 0.7) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_participants_dilute_with_neutral() {
        // One happy face out of four participants: OH = 25%, not 100%.
        let ests = vec![EmotionEstimate::hard(0, Emotion::Happy, 1.0)];
        let o = fuse_emotions(&ests, &cfg(4));
        assert!((o.overall_happiness - 25.0).abs() < 1e-9);
        assert_eq!(o.observed, 1);
        assert!(o.mix[Emotion::Neutral.index()] > 0.7);
    }

    #[test]
    fn confidence_weights_contributions() {
        let ests = vec![
            EmotionEstimate::hard(0, Emotion::Happy, 1.0),
            EmotionEstimate::hard(1, Emotion::Disgust, 0.25),
        ];
        let o = fuse_emotions(&ests, &cfg(2));
        // Happy weighted 4× disgust.
        assert!((o.overall_happiness - 80.0).abs() < 1e-9);
    }

    #[test]
    fn soft_distributions_accepted() {
        let mut probs = vec![0.0; Emotion::COUNT];
        probs[Emotion::Happy.index()] = 2.0; // unnormalized on purpose
        probs[Emotion::Neutral.index()] = 2.0;
        let ests = vec![EmotionEstimate {
            person: 0,
            probabilities: probs,
            confidence: 1.0,
        }];
        let o = fuse_emotions(&ests, &cfg(1));
        assert!((o.overall_happiness - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn duplicate_person_panics() {
        let ests = vec![
            EmotionEstimate::hard(0, Emotion::Happy, 1.0),
            EmotionEstimate::hard(0, Emotion::Sad, 1.0),
        ];
        let _ = fuse_emotions(&ests, &cfg(2));
    }

    #[test]
    fn ema_smooths_a_step() {
        // 10 neutral frames then 10 all-happy frames.
        let neutral: Vec<EmotionEstimate> = vec![EmotionEstimate::hard(0, Emotion::Neutral, 1.0)];
        let happy: Vec<EmotionEstimate> = vec![EmotionEstimate::hard(0, Emotion::Happy, 1.0)];
        let mut frames = vec![neutral; 10];
        frames.extend(vec![happy; 10]);
        let series = fuse_sequence(
            &frames,
            &OverallEmotionConfig {
                participants: 1,
                smoothing: 0.8,
            },
        );
        assert!(series[9].overall_happiness < 1.0);
        assert!(series[10].overall_happiness > 10.0, "step starts rising");
        assert!(series[10].overall_happiness < 50.0, "but smoothed");
        assert!(series[19].overall_happiness > series[11].overall_happiness);
        // Unsmoothed comparison.
        let raw = fuse_sequence(
            &frames,
            &OverallEmotionConfig {
                participants: 1,
                smoothing: 0.0,
            },
        );
        assert!((raw[10].overall_happiness - 100.0).abs() < 1e-9);
    }
}
