//! Social-dimension analysis: joining the gaze layer with the
//! time-invariant relationship layer.
//!
//! The paper's motivation for EC detection is Argyle & Dean's finding
//! that "there is more EC if the two persons are interested in each
//! other" — i.e. eye-contact statistics, grouped by declared
//! relationship, are a measurable social signal. This module computes
//! exactly that join: per-relationship eye-contact profiles from the
//! per-pair statistics and a [`TimeInvariantContext`].

use crate::ec_stats::PairStats;
use crate::layers::{SocialRelation, TimeInvariantContext};
use serde::{Deserialize, Serialize};

/// Aggregate eye-contact profile of one relationship category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationProfile {
    /// The relationship.
    pub relation: SocialRelation,
    /// Number of pairs declared with this relationship.
    pub pairs: usize,
    /// Mean contact ratio across those pairs.
    pub mean_contact_ratio: f64,
    /// Mean number of EC episodes per pair.
    pub mean_episodes: f64,
}

/// Joins per-pair EC statistics with the declared relationships.
///
/// Pairs without a declared relationship are grouped under
/// [`SocialRelation::Strangers`] only if `default_strangers` is set;
/// otherwise they are skipped. Profiles are ordered by descending mean
/// contact ratio (most-engaged relationship first).
pub fn relation_profiles(
    stats: &[PairStats],
    context: &TimeInvariantContext,
    default_strangers: bool,
) -> Vec<RelationProfile> {
    #[derive(Default)]
    struct Acc {
        pairs: usize,
        ratio_sum: f64,
        episode_sum: f64,
    }
    let mut by_relation: Vec<(SocialRelation, Acc)> = Vec::new();

    for s in stats {
        let relation = match context.relation(s.a, s.b) {
            Some(r) => r.clone(),
            None if default_strangers => SocialRelation::Strangers,
            None => continue,
        };
        let idx = match by_relation.iter().position(|(r, _)| *r == relation) {
            Some(idx) => idx,
            None => {
                by_relation.push((relation, Acc::default()));
                by_relation.len() - 1
            }
        };
        let acc = &mut by_relation[idx].1;
        acc.pairs += 1;
        acc.ratio_sum += s.contact_ratio;
        acc.episode_sum += s.episodes as f64;
    }

    let mut out: Vec<RelationProfile> = by_relation
        .into_iter()
        .map(|(relation, acc)| RelationProfile {
            relation,
            pairs: acc.pairs,
            mean_contact_ratio: acc.ratio_sum / acc.pairs as f64,
            mean_episodes: acc.episode_sum / acc.pairs as f64,
        })
        .collect();
    out.sort_by(|a, b| b.mean_contact_ratio.total_cmp(&a.mean_contact_ratio));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(a: usize, b: usize, ratio: f64, episodes: usize) -> PairStats {
        PairStats {
            a,
            b,
            total_frames: (ratio * 100.0) as usize,
            episodes,
            mean_episode_len: 10.0,
            contact_ratio: ratio,
        }
    }

    fn context_with(relations: &[(usize, usize, SocialRelation)]) -> TimeInvariantContext {
        let mut c = TimeInvariantContext {
            participants: 4,
            ..Default::default()
        };
        for (a, b, r) in relations {
            c.set_relation(*a, *b, r.clone());
        }
        c
    }

    #[test]
    fn profiles_group_and_rank_by_contact() {
        let ctx = context_with(&[
            (0, 1, SocialRelation::Friends),
            (2, 3, SocialRelation::Friends),
            (0, 2, SocialRelation::Strangers),
        ]);
        let stats = vec![
            stats(0, 1, 0.5, 4),
            stats(2, 3, 0.3, 2),
            stats(0, 2, 0.05, 1),
        ];
        let profiles = relation_profiles(&stats, &ctx, false);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].relation, SocialRelation::Friends);
        assert_eq!(profiles[0].pairs, 2);
        assert!((profiles[0].mean_contact_ratio - 0.4).abs() < 1e-12);
        assert!((profiles[0].mean_episodes - 3.0).abs() < 1e-12);
        assert_eq!(profiles[1].relation, SocialRelation::Strangers);
        assert!(profiles[0].mean_contact_ratio > profiles[1].mean_contact_ratio);
    }

    #[test]
    fn undeclared_pairs_skipped_or_defaulted() {
        let ctx = context_with(&[(0, 1, SocialRelation::Family)]);
        let stats = vec![stats(0, 1, 0.4, 3), stats(2, 3, 0.2, 1)];
        let skipped = relation_profiles(&stats, &ctx, false);
        assert_eq!(skipped.len(), 1);
        let defaulted = relation_profiles(&stats, &ctx, true);
        assert_eq!(defaulted.len(), 2);
        assert!(defaulted
            .iter()
            .any(|p| p.relation == SocialRelation::Strangers && p.pairs == 1));
    }

    #[test]
    fn empty_inputs_give_empty_profiles() {
        let ctx = TimeInvariantContext {
            participants: 2,
            ..Default::default()
        };
        assert!(relation_profiles(&[], &ctx, true).is_empty());
    }
}
