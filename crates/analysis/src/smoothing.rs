//! Temporal smoothing of look-at matrices.
//!
//! Per-frame detections flicker: a one-frame gaze mis-estimate breaks
//! an eye-contact episode, a one-frame false hit invents one. A sliding
//! majority vote over a small window removes both, at the cost of
//! blurring transitions by half the window — the `ablation_mutual_window`
//! bench quantifies the trade-off.

use crate::lookat::LookAtMatrix;

/// Sliding-window majority vote over a sequence of equally-sized
/// matrices: output cell `(g, t)` at frame `f` is 1 when the cell is 1
/// in strictly more than half of the frames within
/// `[f − window/2, f + window/2]` (clamped at the ends).
///
/// `window = 0` or `1` returns the input unchanged. Output length
/// equals input length.
///
/// # Panics
/// Panics when matrices differ in size.
pub fn smooth_matrices(seq: &[LookAtMatrix], window: usize) -> Vec<LookAtMatrix> {
    if seq.is_empty() || window <= 1 {
        return seq.to_vec();
    }
    let n = seq[0].len();
    assert!(seq.iter().all(|m| m.len() == n), "matrix sizes must match");
    let half = window / 2;
    let mut out = Vec::with_capacity(seq.len());
    for f in 0..seq.len() {
        let lo = f.saturating_sub(half);
        let hi = (f + half).min(seq.len() - 1);
        let span = hi - lo + 1;
        let mut m = LookAtMatrix::zero(n);
        for g in 0..n {
            for t in 0..n {
                if g == t {
                    continue;
                }
                let ones: usize = (lo..=hi).map(|k| seq[k].get(g, t) as usize).sum();
                if ones * 2 > span {
                    m.set(g, t, 1);
                }
            }
        }
        out.push(m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(n: usize, ones: &[(usize, usize)]) -> LookAtMatrix {
        let mut m = LookAtMatrix::zero(n);
        for &(g, t) in ones {
            m.set(g, t, 1);
        }
        m
    }

    #[test]
    fn empty_and_trivial_windows() {
        assert!(smooth_matrices(&[], 5).is_empty());
        let seq = vec![mat(2, &[(0, 1)])];
        assert_eq!(smooth_matrices(&seq, 0), seq);
        assert_eq!(smooth_matrices(&seq, 1), seq);
    }

    #[test]
    fn single_frame_glitch_removed() {
        // 0 1 0 0 0 — the lone 1 disappears with window 3.
        let seq = vec![
            mat(2, &[]),
            mat(2, &[(0, 1)]),
            mat(2, &[]),
            mat(2, &[]),
            mat(2, &[]),
        ];
        let sm = smooth_matrices(&seq, 3);
        assert!(sm.iter().all(|m| m.get(0, 1) == 0));
    }

    #[test]
    fn single_frame_dropout_bridged() {
        // 1 1 0 1 1 — the gap is filled with window 3.
        let on = mat(2, &[(0, 1)]);
        let off = mat(2, &[]);
        let seq = vec![on.clone(), on.clone(), off, on.clone(), on.clone()];
        let sm = smooth_matrices(&seq, 3);
        assert!(sm.iter().all(|m| m.get(0, 1) == 1), "gap must be bridged");
    }

    #[test]
    fn sustained_state_preserved() {
        let on = mat(3, &[(0, 1), (1, 0), (2, 0)]);
        let seq = vec![on.clone(); 10];
        let sm = smooth_matrices(&seq, 5);
        assert_eq!(sm, seq);
    }

    #[test]
    fn transition_shifted_by_at_most_half_window() {
        // 10 frames off, 10 frames on.
        let on = mat(2, &[(0, 1)]);
        let off = mat(2, &[]);
        let mut seq = vec![off; 10];
        seq.extend(vec![on; 10]);
        let sm = smooth_matrices(&seq, 5);
        for (f, m) in sm.iter().enumerate() {
            let expect = f >= 10; // true transition at frame 10
            let got = m.get(0, 1) == 1;
            if (f as i64 - 10).unsigned_abs() > 2 {
                assert_eq!(got, expect, "frame {f} too far off");
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        let seq = vec![mat(2, &[]), mat(3, &[])];
        let _ = smooth_matrices(&seq, 3);
    }
}
