//! Multilayer analysis for the DiEvent framework (paper §II-D).
//!
//! This crate is the paper's primary contribution: fusing per-camera
//! face observations into a common reference frame (Eq. 1–2), building
//! the per-frame **look-at matrix** by ray–sphere eye-contact tests
//! (Eq. 3–5), detecting mutual eye contact, estimating the **overall
//! emotion** of the group (Fig. 5), and organizing everything into
//! time-variant and time-invariant analysis layers backed by the
//! metadata repository.
//!
//! * [`observation`] — frame-level inputs: per-camera and fused
//!   world-frame participant poses;
//! * [`fusion`] — multi-camera fusion into the common world frame;
//! * [`lookat`] — look-at matrices, their summaries (Fig. 9), and eye
//!   contact (Fig. 4, 7, 8);
//! * [`smoothing`] — temporal majority-vote smoothing of matrices;
//! * [`ec_stats`] — eye-contact episode statistics (the Argyle–Dean
//!   indicators the paper cites: topic nature, pair affinity);
//! * [`social`] — joining EC statistics with declared relationships
//!   (the "social dimensions" of §II-E);
//! * [`dominance`] — dominance ranking from received looks;
//! * [`overall_emotion`] — group-emotion fusion and the OH series;
//! * [`layers`] — the multilayer record: time-invariant context plus
//!   time-variant measurements per frame;
//! * [`validate`] — precision/recall of detected matrices against
//!   ground truth (the paper's stated future-work validation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dominance;
pub mod ec_stats;
pub mod fusion;
pub mod layers;
pub mod lookat;
pub mod observation;
pub mod overall_emotion;
pub mod smoothing;
pub mod social;
pub mod validate;

pub use dominance::{dominance_ranking, DominanceReport};
pub use ec_stats::{ec_episodes, pair_statistics, EcEpisode, PairStats};
pub use fusion::{fuse_frame, FusionConfig};
pub use layers::{MultilayerRecord, TimeInvariantContext, TimeVariantLayers};
pub use lookat::{GazeCriterion, LookAtConfig, LookAtMatrix, LookAtScratch, LookAtSummary};
pub use observation::{CameraObservation, FrameObservations, ParticipantPose};
pub use overall_emotion::{EmotionEstimate, OverallEmotion, OverallEmotionConfig};
pub use smoothing::smooth_matrices;
pub use social::{relation_profiles, RelationProfile};
pub use validate::{validate_sequence, MatrixValidation};
