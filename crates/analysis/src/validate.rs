//! Validation of detected look-at matrices against ground truth.
//!
//! The paper's future work is "experimenting and validating the
//! multilayer analysis … collect and annotate a dataset". The
//! simulator provides the annotations; this module provides the
//! metrics: cell-level precision/recall/F1 of a detected matrix
//! sequence against the ground-truth sequence, plus EC-event metrics.

use crate::lookat::LookAtMatrix;
use serde::{Deserialize, Serialize};

/// Cell-level validation result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixValidation {
    /// True positives (detected look that is real).
    pub tp: usize,
    /// False positives (detected look that is not real).
    pub fp: usize,
    /// False negatives (missed real look).
    pub fn_: usize,
    /// Precision `tp / (tp + fp)`; 1 when nothing was detected.
    pub precision: f64,
    /// Recall `tp / (tp + fn)`; 1 when nothing was real.
    pub recall: f64,
    /// F1 score (harmonic mean; 0 when precision + recall = 0).
    pub f1: f64,
    /// Frames compared.
    pub frames: usize,
}

/// Compares detected vs ground-truth matrix sequences cell by cell.
///
/// The sequences may differ in length; comparison runs over the common
/// prefix (a detector that dropped tail frames is penalized by
/// reporting fewer compared frames, visible in `frames`).
///
/// # Panics
/// Panics when matrix sizes differ.
pub fn validate_sequence(detected: &[LookAtMatrix], truth: &[LookAtMatrix]) -> MatrixValidation {
    let frames = detected.len().min(truth.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for f in 0..frames {
        let d = &detected[f];
        let t = &truth[f];
        assert_eq!(d.len(), t.len(), "matrix size mismatch at frame {f}");
        let n = d.len();
        for g in 0..n {
            for j in 0..n {
                if g == j {
                    continue;
                }
                match (d.get(g, j), t.get(g, j)) {
                    (1, 1) => tp += 1,
                    (1, 0) => fp += 1,
                    (0, 1) => fn_ += 1,
                    _ => {}
                }
            }
        }
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall <= f64::EPSILON {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    MatrixValidation {
        tp,
        fp,
        fn_,
        precision,
        recall,
        f1,
        frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(n: usize, ones: &[(usize, usize)]) -> LookAtMatrix {
        let mut m = LookAtMatrix::zero(n);
        for &(g, t) in ones {
            m.set(g, t, 1);
        }
        m
    }

    #[test]
    fn perfect_detection() {
        let truth = vec![mat(3, &[(0, 1), (1, 0)]), mat(3, &[(2, 0)])];
        let v = validate_sequence(&truth, &truth);
        assert_eq!((v.tp, v.fp, v.fn_), (3, 0, 0));
        assert_eq!((v.precision, v.recall, v.f1), (1.0, 1.0, 1.0));
        assert_eq!(v.frames, 2);
    }

    #[test]
    fn misses_and_false_alarms_counted() {
        let truth = vec![mat(2, &[(0, 1), (1, 0)])];
        let detected = vec![mat(2, &[(0, 1)])]; // missed (1,0)
        let v = validate_sequence(&detected, &truth);
        assert_eq!((v.tp, v.fp, v.fn_), (1, 0, 1));
        assert_eq!(v.precision, 1.0);
        assert_eq!(v.recall, 0.5);
        assert!((v.f1 - 2.0 / 3.0).abs() < 1e-12);

        let noisy = vec![mat(2, &[(0, 1), (1, 0)])];
        let empty_truth = vec![mat(2, &[])];
        let v2 = validate_sequence(&noisy, &empty_truth);
        assert_eq!((v2.tp, v2.fp, v2.fn_), (0, 2, 0));
        assert_eq!(v2.precision, 0.0);
        assert_eq!(v2.recall, 1.0);
        assert_eq!(v2.f1, 0.0);
    }

    #[test]
    fn empty_everything_is_perfect() {
        let v = validate_sequence(&[], &[]);
        assert_eq!((v.precision, v.recall, v.f1), (1.0, 1.0, 1.0));
        assert_eq!(v.frames, 0);
    }

    #[test]
    fn length_mismatch_compares_prefix() {
        let truth = vec![mat(2, &[(0, 1)]); 5];
        let detected = vec![mat(2, &[(0, 1)]); 3];
        let v = validate_sequence(&detected, &truth);
        assert_eq!(v.frames, 3);
        assert_eq!(v.tp, 3);
    }
}
