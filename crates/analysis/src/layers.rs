//! The multilayer model: time-invariant context and time-variant
//! measurements (paper §II-D).
//!
//! "Considering the video time as a reference time entails two types of
//! information sources. First, time-invariant source of information
//! that does not explicitly depend on time like location, menu, date,
//! occasion type, number of participants and their social information
//! and relationships. Second, time-variant source information that
//! explicitly depends on time such as gaze direction and overall
//! emotion."
//!
//! [`TimeInvariantContext`] captures the former once per event;
//! [`TimeVariantLayers`] captures the latter per frame; a
//! [`MultilayerRecord`] joins both for storage in the metadata
//! repository.

use crate::lookat::LookAtMatrix;
use crate::overall_emotion::OverallEmotion;
use serde::{Deserialize, Serialize};

/// A social relationship between two participants (part of the
/// "social information and relationships" layer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SocialRelation {
    /// Family members.
    Family,
    /// Friends.
    Friends,
    /// Work colleagues.
    Colleagues,
    /// First encounter.
    Strangers,
    /// Anything else, labelled.
    Other(String),
}

/// One symmetric relationship entry (`a < b`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationEntry {
    /// Lower participant index.
    pub a: usize,
    /// Higher participant index.
    pub b: usize,
    /// The relationship.
    pub relation: SocialRelation,
}

/// Time-invariant context of a dining event — collected externally by
/// the acquisition platform, not extracted from pixels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeInvariantContext {
    /// Venue ("IRIT meeting room", "Restaurant X, table 4", …).
    pub location: String,
    /// ISO-8601 date of the event.
    pub date: String,
    /// Occasion type ("business lunch", "family dinner", …).
    pub occasion: String,
    /// Menu / dishes served.
    pub menu: Vec<String>,
    /// Number of participants (the `n` of the look-at matrix).
    pub participants: usize,
    /// Participant display names by index.
    pub participant_names: Vec<String>,
    /// Ambient temperature in °C, when recorded.
    pub temperature_c: Option<f64>,
    /// Social relationships between participant pairs (`a < b`).
    pub relations: Vec<RelationEntry>,
}

impl TimeInvariantContext {
    /// Registers a symmetric relation between `a` and `b`.
    ///
    /// # Panics
    /// Panics when `a == b` or either index is out of range.
    pub fn set_relation(&mut self, a: usize, b: usize, rel: SocialRelation) {
        assert_ne!(a, b, "a relation needs two distinct participants");
        assert!(
            a < self.participants && b < self.participants,
            "index out of range"
        );
        let (lo, hi) = (a.min(b), a.max(b));
        if let Some(e) = self.relations.iter_mut().find(|e| e.a == lo && e.b == hi) {
            e.relation = rel;
        } else {
            self.relations.push(RelationEntry {
                a: lo,
                b: hi,
                relation: rel,
            });
        }
    }

    /// Looks up the relation between `a` and `b` (order-insensitive).
    pub fn relation(&self, a: usize, b: usize) -> Option<&SocialRelation> {
        let (lo, hi) = (a.min(b), a.max(b));
        self.relations
            .iter()
            .find(|e| e.a == lo && e.b == hi)
            .map(|e| &e.relation)
    }
}

/// Per-frame time-variant measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeVariantLayers {
    /// Frame index.
    pub frame: usize,
    /// Timestamp in seconds.
    pub time: f64,
    /// The look-at matrix of this frame (gaze layer, Fig. 4).
    pub lookat: LookAtMatrix,
    /// Fused group emotion (Fig. 5).
    pub overall_emotion: OverallEmotion,
}

/// One event's complete multilayer record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultilayerRecord {
    /// Event-level, time-invariant context.
    pub context: TimeInvariantContext,
    /// Frame-level, time-variant layers.
    pub frames: Vec<TimeVariantLayers>,
}

impl MultilayerRecord {
    /// The time-variant layer nearest to time `t` seconds (`None` for an
    /// empty record).
    pub fn at_time(&self, t: f64) -> Option<&TimeVariantLayers> {
        self.frames
            .iter()
            .min_by(|a, b| (a.time - t).abs().total_cmp(&(b.time - t).abs()))
    }

    /// Frames whose overall happiness is at least `threshold` percent —
    /// the "customer satisfaction" query of the smart-restaurant use
    /// case.
    pub fn happy_frames(&self, threshold: f64) -> Vec<usize> {
        self.frames
            .iter()
            .filter(|f| f.overall_emotion.overall_happiness >= threshold)
            .map(|f| f.frame)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overall_emotion::{fuse_emotions, EmotionEstimate, OverallEmotionConfig};
    use dievent_emotion::Emotion;

    fn record() -> MultilayerRecord {
        let mut context = TimeInvariantContext {
            location: "IRIT meeting room".into(),
            date: "2018-04-16".into(),
            occasion: "working lunch".into(),
            menu: vec!["salad".into(), "pasta".into()],
            participants: 4,
            participant_names: (1..=4).map(|i| format!("P{i}")).collect(),
            temperature_c: Some(21.5),
            relations: Vec::new(),
        };
        context.set_relation(0, 2, SocialRelation::Colleagues);
        context.set_relation(3, 1, SocialRelation::Strangers);

        let cfg = OverallEmotionConfig {
            participants: 4,
            smoothing: 0.0,
        };
        let frames = (0..10)
            .map(|f| {
                let emotion = if f < 5 {
                    Emotion::Neutral
                } else {
                    Emotion::Happy
                };
                let ests: Vec<_> = (0..4)
                    .map(|p| EmotionEstimate::hard(p, emotion, 1.0))
                    .collect();
                TimeVariantLayers {
                    frame: f,
                    // Exact binary fractions so the JSON round-trip test
                    // can use strict equality.
                    time: f as f64 * 0.25,
                    lookat: LookAtMatrix::zero(4),
                    overall_emotion: fuse_emotions(&ests, &cfg),
                }
            })
            .collect();
        MultilayerRecord { context, frames }
    }

    #[test]
    fn relations_are_symmetric() {
        let r = record();
        assert_eq!(r.context.relation(0, 2), Some(&SocialRelation::Colleagues));
        assert_eq!(r.context.relation(2, 0), Some(&SocialRelation::Colleagues));
        assert_eq!(r.context.relation(1, 3), Some(&SocialRelation::Strangers));
        assert_eq!(r.context.relation(0, 1), None);
    }

    #[test]
    #[should_panic]
    fn self_relation_panics() {
        let mut c = TimeInvariantContext {
            participants: 2,
            ..Default::default()
        };
        c.set_relation(1, 1, SocialRelation::Friends);
    }

    #[test]
    fn at_time_picks_nearest_frame() {
        let r = record();
        assert_eq!(r.at_time(0.0).unwrap().frame, 0);
        assert_eq!(r.at_time(1.2).unwrap().frame, 5);
        assert_eq!(r.at_time(99.0).unwrap().frame, 9);
        let empty = MultilayerRecord {
            context: Default::default(),
            frames: vec![],
        };
        assert!(empty.at_time(1.0).is_none());
    }

    #[test]
    fn happy_frames_query() {
        let r = record();
        assert_eq!(r.happy_frames(90.0), vec![5, 6, 7, 8, 9]);
        assert_eq!(r.happy_frames(101.0), Vec::<usize>::new());
    }

    #[test]
    fn record_serializes_round_trip() {
        let r = record();
        let json = serde_json::to_string(&r).unwrap();
        let back: MultilayerRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
