//! Dominance analysis from the look-at summary (paper §III, Fig. 9).
//!
//! "The summary matrix provides useful information related to the
//! dominate of the meeting. For instance, the yellow participant (P1)
//! is the dominate of the meeting since the summation of the
//! participant P1 column is the maximum." — received looks rank
//! participants by how much attention they command.

use crate::lookat::LookAtSummary;
use serde::{Deserialize, Serialize};

/// Dominance ranking of a meeting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DominanceReport {
    /// Participants ordered from most to least dominant, with their
    /// received-look counts.
    pub ranking: Vec<(usize, u32)>,
    /// The dominant participant (first of `ranking`), if any looks were
    /// recorded at all.
    pub dominant: Option<usize>,
    /// Received looks normalized by total looks (attention share per
    /// participant, indexed by participant).
    pub attention_share: Vec<f64>,
}

/// Computes the dominance ranking from a summary matrix.
pub fn dominance_ranking(summary: &LookAtSummary) -> DominanceReport {
    let n = summary.participants();
    let received: Vec<u32> = (0..n).map(|p| summary.received(p)).collect();
    let total: u32 = received.iter().sum();

    let mut ranking: Vec<(usize, u32)> = received.iter().copied().enumerate().collect();
    // Sort by received looks descending; ties break on lower index
    // (stable order for reproducibility).
    ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    DominanceReport {
        dominant: (total > 0).then(|| ranking[0].0),
        attention_share: received
            .iter()
            .map(|&r| {
                if total > 0 {
                    r as f64 / total as f64
                } else {
                    0.0
                }
            })
            .collect(),
        ranking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookat::LookAtMatrix;

    fn summary_from(looks: &[(usize, usize, u32)], n: usize) -> LookAtSummary {
        let mut s = LookAtSummary::new(n);
        // Encode counts by adding that many single-cell matrices.
        for &(g, t, c) in looks {
            for _ in 0..c {
                let mut m = LookAtMatrix::zero(n);
                m.set(g, t, 1);
                s.add(&m);
            }
        }
        s
    }

    #[test]
    fn column_sum_maximum_wins() {
        // P0 receives 5, P1 receives 3, P2 receives 1.
        let s = summary_from(&[(1, 0, 5), (0, 1, 3), (0, 2, 1)], 3);
        let r = dominance_ranking(&s);
        assert_eq!(r.dominant, Some(0));
        assert_eq!(r.ranking[0], (0, 5));
        assert_eq!(r.ranking[1], (1, 3));
        assert_eq!(r.ranking[2], (2, 1));
        let share: f64 = r.attention_share.iter().sum();
        assert!((share - 1.0).abs() < 1e-12);
        assert!((r.attention_share[0] - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_has_no_dominant() {
        let s = LookAtSummary::new(4);
        let r = dominance_ranking(&s);
        assert_eq!(r.dominant, None);
        assert!(r.attention_share.iter().all(|&x| x == 0.0));
        assert_eq!(r.ranking.len(), 4);
    }

    #[test]
    fn ties_break_on_lower_index() {
        let s = summary_from(&[(0, 1, 2), (1, 0, 2)], 2);
        let r = dominance_ranking(&s);
        assert_eq!(r.dominant, Some(0));
    }
}
