//! Multi-camera fusion into the common world frame (paper Eq. 1–2).
//!
//! Every camera reports heads and gazes in its own frame `F_c`; the
//! paper transforms everything into a single reference frame before the
//! intersection test ("both the line and the head position must be in
//! the same reference frame"). With a calibrated rig the transform is
//! each camera's `ʷT_c`. When several cameras see the same person, the
//! fused head position is the weighted mean and the fused gaze is the
//! weighted, renormalized mean direction — both standard, and both
//! reduce the single-view depth error the radius-based estimator
//! carries.

use crate::observation::{CameraObservation, FrameObservations, ParticipantPose};
use dievent_geometry::Vec3;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fusion tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Observations whose fused position deviates from the cross-camera
    /// mean by more than this (metres) are discarded as outliers before
    /// the final average. Zero disables outlier rejection.
    pub outlier_distance: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            outlier_distance: 0.6,
        }
    }
}

/// Fuses one frame of per-camera observations into world-frame poses,
/// one entry per distinct person index, ordered by person.
pub fn fuse_frame(obs: &FrameObservations, config: &FusionConfig) -> Vec<ParticipantPose> {
    // World-frame samples per person.
    struct Sample {
        head: Vec3,
        gaze: Option<Vec3>,
        weight: f64,
    }
    let mut by_person: BTreeMap<usize, Vec<Sample>> = BTreeMap::new();

    for (cam_pose, sightings) in &obs.cameras {
        for CameraObservation {
            person,
            head_cam,
            gaze_cam,
            weight,
        } in sightings
        {
            let head = cam_pose.transform_point(*head_cam);
            let gaze = gaze_cam.and_then(|g| cam_pose.transform_dir(g).try_normalized());
            by_person.entry(*person).or_default().push(Sample {
                head,
                gaze,
                weight: weight.max(1e-6),
            });
        }
    }

    let mut out = Vec::with_capacity(by_person.len());
    for (person, mut samples) in by_person {
        // Consensus centre: component-wise median, which an outlier
        // cannot drag the way a mean can.
        let consensus = component_median(&samples.iter().map(|s| s.head).collect::<Vec<_>>());
        // Outlier rejection: drop samples far from the consensus (a
        // merged-blob mismeasurement from one camera shouldn't drag the
        // fused position).
        if config.outlier_distance > 0.0 && samples.len() >= 3 {
            samples.retain(|s| s.head.distance(consensus) <= config.outlier_distance);
        }
        if samples.is_empty() {
            continue;
        }
        let head = weighted_mean(
            &samples
                .iter()
                .map(|s| (s.head, s.weight))
                .collect::<Vec<_>>(),
        );

        // Gaze: weighted sum of unit directions, renormalized.
        let mut gsum = Vec3::ZERO;
        let mut gw = 0.0;
        for s in &samples {
            if let Some(g) = s.gaze {
                gsum += g * s.weight;
                gw += s.weight;
            }
        }
        let gaze = if gw > 0.0 {
            gsum.try_normalized()
        } else {
            None
        };

        out.push(ParticipantPose {
            person,
            head,
            gaze,
            support: samples.len(),
        });
    }
    out
}

/// Component-wise median of a non-empty sample set.
fn component_median(points: &[Vec3]) -> Vec3 {
    let med = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    };
    Vec3::new(
        med(points.iter().map(|p| p.x).collect()),
        med(points.iter().map(|p| p.y).collect()),
        med(points.iter().map(|p| p.z).collect()),
    )
}

fn weighted_mean(samples: &[(Vec3, f64)]) -> Vec3 {
    let mut sum = Vec3::ZERO;
    let mut w = 0.0;
    for (v, wi) in samples {
        sum += *v * *wi;
        w += *wi;
    }
    if w > 0.0 {
        sum / w
    } else {
        Vec3::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dievent_geometry::{Iso3, Mat3};
    use std::f64::consts::FRAC_PI_2;

    fn cam_at(pos: Vec3, yaw: f64) -> Iso3 {
        Iso3::new(Mat3::rotation_z(yaw), pos)
    }

    fn obs(person: usize, head_cam: Vec3, gaze_cam: Option<Vec3>) -> CameraObservation {
        CameraObservation {
            person,
            head_cam,
            gaze_cam,
            weight: 1.0,
        }
    }

    #[test]
    fn single_camera_passes_through_transformed() {
        // Camera at (0,0,2.5) rotated 90° about Z: camera-frame +X maps
        // to world +Y.
        let pose = cam_at(Vec3::new(0.0, 0.0, 2.5), FRAC_PI_2);
        let frame = FrameObservations {
            cameras: vec![(pose, vec![obs(2, Vec3::new(1.0, 0.0, -1.0), Some(Vec3::X))])],
        };
        let fused = fuse_frame(&frame, &FusionConfig::default());
        assert_eq!(fused.len(), 1);
        let p = &fused[0];
        assert_eq!(p.person, 2);
        assert!(p.head.approx_eq(Vec3::new(0.0, 1.0, 1.5), 1e-9));
        assert!(p.gaze.unwrap().approx_eq(Vec3::Y, 1e-9));
        assert_eq!(p.support, 1);
    }

    #[test]
    fn two_cameras_average_out_depth_error() {
        // True head at (2, 0, 1.2). Camera A (identity pose) overshoots
        // depth by +0.2 along world X; camera B (at (4,0,1.2), facing
        // −X via 180° yaw) overshoots by +0.2 along world −X. Fusion
        // cancels the bias.
        let cam_a = Iso3::IDENTITY;
        let cam_b = cam_at(Vec3::new(4.0, 0.0, 1.2), std::f64::consts::PI);
        let frame = FrameObservations {
            cameras: vec![
                (cam_a, vec![obs(0, Vec3::new(2.2, 0.0, 1.2), None)]),
                (cam_b, vec![obs(0, Vec3::new(2.2, 0.0, 0.0), None)]),
            ],
        };
        let fused = fuse_frame(&frame, &FusionConfig::default());
        assert_eq!(fused.len(), 1);
        assert!(
            fused[0].head.approx_eq(Vec3::new(2.0, 0.0, 1.2), 1e-9),
            "{:?}",
            fused[0].head
        );
        assert_eq!(fused[0].support, 2);
    }

    #[test]
    fn gaze_directions_fuse_by_renormalized_mean() {
        let cam = Iso3::IDENTITY;
        let frame = FrameObservations {
            cameras: vec![
                (
                    cam,
                    vec![obs(
                        0,
                        Vec3::ZERO,
                        Some(Vec3::new(1.0, 0.1, 0.0).normalized()),
                    )],
                ),
                (
                    cam,
                    vec![obs(
                        0,
                        Vec3::ZERO,
                        Some(Vec3::new(1.0, -0.1, 0.0).normalized()),
                    )],
                ),
            ],
        };
        let fused = fuse_frame(&frame, &FusionConfig::default());
        let g = fused[0].gaze.unwrap();
        assert!(g.approx_eq(Vec3::X, 1e-9), "{g:?}");
        assert!((g.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn person_without_gaze_still_fused() {
        let frame = FrameObservations {
            cameras: vec![(Iso3::IDENTITY, vec![obs(1, Vec3::new(1.0, 1.0, 1.0), None)])],
        };
        let fused = fuse_frame(&frame, &FusionConfig::default());
        assert_eq!(fused.len(), 1);
        assert!(fused[0].gaze.is_none());
    }

    #[test]
    fn outlier_camera_rejected() {
        let frame = FrameObservations {
            cameras: vec![
                (Iso3::IDENTITY, vec![obs(0, Vec3::new(2.0, 0.0, 1.2), None)]),
                (
                    Iso3::IDENTITY,
                    vec![obs(0, Vec3::new(2.05, 0.0, 1.2), None)],
                ),
                // A wildly wrong sighting (merged blob).
                (Iso3::IDENTITY, vec![obs(0, Vec3::new(4.5, 0.0, 1.2), None)]),
            ],
        };
        let fused = fuse_frame(&frame, &FusionConfig::default());
        assert_eq!(fused[0].support, 2, "outlier dropped");
        assert!((fused[0].head.x - 2.025).abs() < 1e-9);
        // With rejection disabled the outlier drags the mean.
        let raw = fuse_frame(
            &frame,
            &FusionConfig {
                outlier_distance: 0.0,
            },
        );
        assert!(raw[0].head.x > 2.5);
    }

    #[test]
    fn multiple_people_sorted_by_index() {
        let frame = FrameObservations {
            cameras: vec![(
                Iso3::IDENTITY,
                vec![
                    obs(3, Vec3::new(1.0, 0.0, 0.0), None),
                    obs(1, Vec3::new(2.0, 0.0, 0.0), None),
                ],
            )],
        };
        let fused = fuse_frame(&frame, &FusionConfig::default());
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].person, 1);
        assert_eq!(fused[1].person, 3);
    }

    #[test]
    fn weights_bias_the_mean() {
        let frame = FrameObservations {
            cameras: vec![
                (
                    Iso3::IDENTITY,
                    vec![CameraObservation {
                        person: 0,
                        head_cam: Vec3::new(1.0, 0.0, 0.0),
                        gaze_cam: None,
                        weight: 3.0,
                    }],
                ),
                (
                    Iso3::IDENTITY,
                    vec![CameraObservation {
                        person: 0,
                        head_cam: Vec3::new(2.0, 0.0, 0.0),
                        gaze_cam: None,
                        weight: 1.0,
                    }],
                ),
            ],
        };
        let fused = fuse_frame(&frame, &FusionConfig::default());
        assert!((fused[0].head.x - 1.25).abs() < 1e-9);
    }
}
