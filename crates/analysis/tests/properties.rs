//! Property-based tests for the multilayer analysis.

use dievent_analysis::{
    fuse_frame, smooth_matrices, CameraObservation, FrameObservations, FusionConfig, LookAtConfig,
    LookAtMatrix, LookAtSummary, ParticipantPose,
};
use dievent_geometry::{Iso3, Mat3, Vec3};
use proptest::prelude::*;

fn vec3() -> impl Strategy<Value = Vec3> {
    (-5.0..5.0f64, -5.0..5.0f64, 0.5..2.5f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit3() -> impl Strategy<Value = Vec3> {
    (-1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64).prop_filter_map("non-degenerate", |(x, y, z)| {
        Vec3::new(x, y, z).try_normalized()
    })
}

fn poses(n: usize) -> impl Strategy<Value = Vec<ParticipantPose>> {
    proptest::collection::vec((vec3(), unit3()), n..=n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(person, (head, gaze))| ParticipantPose {
                person,
                head,
                gaze: Some(gaze),
                support: 1,
            })
            .collect()
    })
}

fn rigid() -> impl Strategy<Value = Iso3> {
    (unit3(), -3.0..3.0f64, vec3())
        .prop_map(|(axis, angle, t)| Iso3::new(Mat3::rotation_axis_angle(axis, angle), t))
}

proptest! {
    /// The look-at matrix is invariant under a rigid motion of the whole
    /// scene — the formal reason the paper may pick any common frame.
    #[test]
    fn lookat_matrix_is_frame_invariant(ps in poses(4), t in rigid()) {
        let cfg = LookAtConfig::default();
        let m1 = LookAtMatrix::from_poses(4, &ps, &cfg);
        let moved: Vec<ParticipantPose> = ps
            .iter()
            .map(|p| ParticipantPose {
                person: p.person,
                head: t.transform_point(p.head),
                gaze: p.gaze.map(|g| t.transform_dir(g)),
                support: p.support,
            })
            .collect();
        let m2 = LookAtMatrix::from_poses(4, &moved, &cfg);
        // Skip razor-edge tangency configurations.
        let mut near_edge = false;
        for a in &ps {
            for b in &ps {
                if a.person == b.person { continue; }
                let ray = a.gaze_ray().unwrap();
                let perp = ray.distance_to_point(b.head);
                if (perp - cfg.attention_radius).abs() < 1e-3 {
                    near_edge = true;
                }
            }
        }
        prop_assume!(!near_edge);
        prop_assert_eq!(m1, m2);
    }

    #[test]
    fn diagonal_is_always_zero(ps in poses(5)) {
        let m = LookAtMatrix::from_poses(5, &ps, &LookAtConfig::default());
        for i in 0..5 {
            prop_assert_eq!(m.get(i, i), 0);
        }
    }

    #[test]
    fn nearest_hit_rows_have_at_most_one_look(ps in poses(5)) {
        let m = LookAtMatrix::from_poses(5, &ps, &LookAtConfig::default());
        for g in 0..5 {
            let row: u32 = (0..5).map(|t| m.get(g, t) as u32).sum();
            prop_assert!(row <= 1, "nearest-hit semantics allow one target");
        }
    }

    #[test]
    fn summary_is_additive(ps in poses(3), k in 1usize..6) {
        let cfg = LookAtConfig::default();
        let m = LookAtMatrix::from_poses(3, &ps, &cfg);
        let mut s = LookAtSummary::new(3);
        for _ in 0..k {
            s.add(&m);
        }
        for g in 0..3 {
            for t in 0..3 {
                prop_assert_eq!(s.get(g, t), m.get(g, t) as u32 * k as u32);
            }
        }
        prop_assert_eq!(s.frames(), k);
    }

    /// Smoothing never invents state that a window majority doesn't
    /// support: a constant sequence is a fixed point.
    #[test]
    fn smoothing_fixes_constant_sequences(ps in poses(4), len in 1usize..12, window in 0usize..9) {
        let m = LookAtMatrix::from_poses(4, &ps, &LookAtConfig::default());
        let seq = vec![m; len];
        let out = smooth_matrices(&seq, window);
        prop_assert_eq!(out, seq);
    }

    /// Fusing a single camera's observations is exactly the rigid
    /// transform of those observations.
    #[test]
    fn single_camera_fusion_is_a_transform(
        cam in rigid(),
        head in vec3(),
        gaze in unit3(),
    ) {
        let frame = FrameObservations {
            cameras: vec![(
                cam,
                vec![CameraObservation { person: 0, head_cam: head, gaze_cam: Some(gaze), weight: 1.0 }],
            )],
        };
        let fused = fuse_frame(&frame, &FusionConfig::default());
        prop_assert_eq!(fused.len(), 1);
        prop_assert!(fused[0].head.approx_eq(cam.transform_point(head), 1e-9));
        prop_assert!(fused[0].gaze.unwrap().approx_eq(cam.transform_dir(gaze), 1e-9));
    }

    /// Episodes for one pair never overlap and exactly cover the frames
    /// where mutual contact held (with min_frames = 1).
    #[test]
    fn episodes_tile_mutual_frames(
        pattern in proptest::collection::vec(proptest::bool::ANY, 1..60),
    ) {
        use dievent_analysis::ec_stats::ec_episodes;
        let seq: Vec<LookAtMatrix> = pattern
            .iter()
            .map(|&ec| {
                let mut m = LookAtMatrix::zero(2);
                if ec {
                    m.set(0, 1, 1);
                    m.set(1, 0, 1);
                }
                m
            })
            .collect();
        let eps = ec_episodes(&seq, 1);
        // No overlaps, sorted.
        for w in eps.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        // Coverage equals the true mutual frames.
        let mut covered = vec![false; pattern.len()];
        for e in &eps {
            for c in &mut covered[e.start..e.end] {
                prop_assert!(!*c, "episodes must be disjoint");
                *c = true;
            }
        }
        prop_assert_eq!(covered, pattern);
    }

    /// Camera order never matters to fusion.
    #[test]
    fn fusion_is_camera_order_invariant(
        cam_a in rigid(),
        cam_b in rigid(),
        ha in vec3(),
        hb in vec3(),
    ) {
        let oa = CameraObservation { person: 0, head_cam: ha, gaze_cam: None, weight: 1.0 };
        let ob = CameraObservation { person: 0, head_cam: hb, gaze_cam: None, weight: 1.0 };
        let f1 = FrameObservations { cameras: vec![(cam_a, vec![oa]), (cam_b, vec![ob])] };
        let f2 = FrameObservations { cameras: vec![(cam_b, vec![ob]), (cam_a, vec![oa])] };
        let cfg = FusionConfig::default();
        let r1 = fuse_frame(&f1, &cfg);
        let r2 = fuse_frame(&f2, &cfg);
        prop_assert_eq!(r1.len(), r2.len());
        prop_assert!(r1[0].head.approx_eq(r2[0].head, 1e-9));
    }
}
