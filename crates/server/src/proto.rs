//! The framed, dependency-free TCP ingest protocol.
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! [len: u32 BE][tag: u8][body: len bytes]
//! ```
//!
//! `len` counts the body only (the tag byte is not included) and is
//! capped at [`MAX_BODY`] — a malformed or hostile length prefix fails
//! fast instead of allocating. Control messages carry JSON bodies;
//! the hot [`ClientMsg::Frame`] path carries a fixed binary header
//! plus raw pixel bytes, with the timestamp shipped as `f64` bits so
//! the server-side frame is bit-identical to the client's.
//!
//! Decoding maps 1:1 onto the typed session API: a [`ClientMsg`]
//! ingest message converts to exactly one
//! [`SessionInput`](dievent_core::SessionInput) via
//! [`ClientMsg::into_input`], so the wire format and the in-process
//! API cannot drift.

use dievent_analysis::CameraObservation;
use dievent_core::{AnalysisDigest, CameraId, EventId, PipelineConfig, SessionInput};
use dievent_scene::Scenario;
use dievent_video::{GrayFrame, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Maximum body length the decoder will allocate (32 MiB — enough for
/// a 4096×4096 8-bit frame with headroom).
pub const MAX_BODY: usize = 32 * 1024 * 1024;

/// Maximum frame width/height accepted on the wire.
pub const MAX_DIM: u32 = 8192;

/// Fixed binary header of a `Frame` body:
/// event u64 | camera u32 | seq u64 | timestamp-bits u64 | w u32 | h u32.
const FRAME_HEADER: usize = 8 + 4 + 8 + 8 + 4 + 4;

const TAG_OPEN: u8 = 1;
const TAG_FRAME: u8 = 2;
const TAG_POSE: u8 = 3;
const TAG_FINISH: u8 = 4;
const TAG_DRAIN: u8 = 5;

const TAG_OPENED: u8 = 0x81;
const TAG_REJECTED: u8 = 0x82;
const TAG_FINISHED: u8 = 0x83;
const TAG_DRAINED: u8 = 0x84;

/// Why a protocol read or decode failed.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket read/write failed.
    Io(io::Error),
    /// The bytes were well-framed but the content was invalid
    /// (unknown tag, oversized body, bad JSON, dimension mismatch).
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "protocol i/o error: {e}"),
            ProtoError::Malformed(msg) => write!(f, "malformed message: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Typed rejection reasons carried by [`ServerMsg::Rejected`] — the
/// admission-control and protocol edge cases a client can act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// `OpenEvent` refused: the per-process session quota is full.
    QuotaExhausted,
    /// `OpenEvent` refused: the server is draining toward shutdown.
    Draining,
    /// `OpenEvent` refused: that event id is already open.
    DuplicateEvent,
    /// `OpenEvent` refused: the pipeline config failed validation.
    InvalidConfig,
    /// Ingest/finish refused: no open session with that event id.
    UnknownEvent,
    /// Ingest refused: per-camera sequence number is not the next
    /// expected one (a gap or duplicate on the client side).
    BadSeq,
    /// Connection refused: the per-process connection cap is reached.
    ServerBusy,
    /// The message could not be decoded.
    Malformed,
    /// The session rejected the input (closed, worker died, ...).
    Internal,
}

impl RejectCode {
    /// Stable wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectCode::QuotaExhausted => "quota_exhausted",
            RejectCode::Draining => "draining",
            RejectCode::DuplicateEvent => "duplicate_event",
            RejectCode::InvalidConfig => "invalid_config",
            RejectCode::UnknownEvent => "unknown_event",
            RejectCode::BadSeq => "bad_seq",
            RejectCode::ServerBusy => "server_busy",
            RejectCode::Malformed => "malformed",
            RejectCode::Internal => "internal",
        }
    }

    /// Parses a wire string back into the code.
    pub fn parse(s: &str) -> Option<RejectCode> {
        Some(match s {
            "quota_exhausted" => RejectCode::QuotaExhausted,
            "draining" => RejectCode::Draining,
            "duplicate_event" => RejectCode::DuplicateEvent,
            "invalid_config" => RejectCode::InvalidConfig,
            "unknown_event" => RejectCode::UnknownEvent,
            "bad_seq" => RejectCode::BadSeq,
            "server_busy" => RejectCode::ServerBusy,
            "malformed" => RejectCode::Malformed,
            "internal" => RejectCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for RejectCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which request a [`ServerMsg::Rejected`] answers. Ingest messages
/// are normally unacknowledged, so without this a client could not
/// tell a late ingest refusal from the refusal of the control message
/// it is currently waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectOp {
    /// Refusing an `OpenEvent`.
    Open,
    /// Refusing a `Frame` or `PoseObs`.
    Ingest,
    /// Refusing a `FinishEvent`.
    Finish,
    /// Refusing the connection itself (over the connection cap).
    Connection,
}

impl RejectOp {
    /// Stable wire string for this op.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectOp::Open => "open",
            RejectOp::Ingest => "ingest",
            RejectOp::Finish => "finish",
            RejectOp::Connection => "connection",
        }
    }

    /// Parses a wire string back into the op.
    pub fn parse(s: &str) -> Option<RejectOp> {
        Some(match s {
            "open" => RejectOp::Open,
            "ingest" => RejectOp::Ingest,
            "finish" => RejectOp::Finish,
            "connection" => RejectOp::Connection,
            _ => return None,
        })
    }
}

impl fmt::Display for RejectOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A client → server message.
///
/// `OpenEvent` inlines its scenario + config rather than boxing them:
/// every variant is decoded once and consumed immediately, never
/// stored in bulk, so the size skew has no resident cost.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum ClientMsg {
    /// Open a session for `event` over `scenario`'s rig. The server
    /// answers `Opened` or `Rejected`.
    OpenEvent {
        /// Tenant/event id (must be unused among open sessions).
        event: EventId,
        /// The rig + participants the session analyzes.
        scenario: Scenario,
        /// Requested pipeline configuration. The server overrides the
        /// streaming quota knobs and observability per its own policy.
        config: PipelineConfig,
    },
    /// One camera frame. Not acknowledged unless rejected.
    Frame {
        /// Target event.
        event: EventId,
        /// Source camera.
        camera: CameraId,
        /// Per-camera sequence number, starting at 0, no gaps.
        seq: u64,
        /// The frame itself; the timestamp travels as `f64` bits.
        frame: GrayFrame,
    },
    /// Pre-extracted pose observations for one frame of one camera.
    PoseObs {
        /// Target event.
        event: EventId,
        /// Source camera.
        camera: CameraId,
        /// Per-camera sequence number (shared with `Frame` ordering).
        seq: u64,
        /// The observations an external tracker already extracted.
        observations: Vec<CameraObservation>,
    },
    /// Finish `event`: run the remaining stages and answer `Finished`.
    FinishEvent {
        /// Target event.
        event: EventId,
    },
    /// Finish every open session; the server answers one `Finished`
    /// per drained session, then `Drained`. New `OpenEvent`s are
    /// rejected from now on.
    Drain,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// The session is open and accepting input.
    Opened {
        /// The event that opened.
        event: EventId,
    },
    /// A request was refused; the connection stays usable (except
    /// for [`RejectOp::Connection`], after which the server closes).
    Rejected {
        /// The event the refused request targeted, when attributable.
        event: Option<EventId>,
        /// Which request this refusal answers.
        op: RejectOp,
        /// Typed reason.
        code: RejectCode,
        /// Human-readable detail.
        message: String,
    },
    /// A session completed; carries the analysis digest plus the
    /// conservation ledger (`processed + dropped == pushed` for
    /// frame-only workloads).
    Finished {
        /// The event that finished.
        event: EventId,
        /// Digest of the final `EventAnalysis`.
        digest: AnalysisDigest,
        /// Inputs the server accepted for this tenant.
        pushed: u64,
        /// Frames the extraction stage consumed.
        processed: u64,
        /// Inputs shed by the tenant's `DropOldest` policy.
        dropped: u64,
    },
    /// Drain finished.
    Drained {
        /// Sessions finished by this drain.
        finished: u64,
    },
}

#[derive(Serialize, Deserialize)]
struct OpenBody {
    event: EventId,
    scenario: Scenario,
    config: PipelineConfig,
}

#[derive(Serialize, Deserialize)]
struct PoseBody {
    event: EventId,
    camera: CameraId,
    seq: u64,
    observations: Vec<CameraObservation>,
}

#[derive(Serialize, Deserialize)]
struct FinishBody {
    event: EventId,
}

#[derive(Serialize, Deserialize)]
struct OpenedBody {
    event: EventId,
}

#[derive(Serialize, Deserialize)]
struct RejectedBody {
    event: Option<EventId>,
    op: String,
    code: String,
    message: String,
}

#[derive(Serialize, Deserialize)]
struct FinishedBody {
    event: EventId,
    digest: AnalysisDigest,
    pushed: u64,
    processed: u64,
    dropped: u64,
}

#[derive(Serialize, Deserialize)]
struct DrainedBody {
    finished: u64,
}

impl ClientMsg {
    /// Converts an ingest message into its target and the exact
    /// [`SessionInput`] the typed session API takes — `None` for
    /// control messages. This is the single point where the wire
    /// format meets the in-process API.
    pub fn into_input(self) -> Option<(EventId, CameraId, u64, SessionInput)> {
        match self {
            ClientMsg::Frame {
                event,
                camera,
                seq,
                frame,
            } => Some((event, camera, seq, SessionInput::Frame(frame))),
            ClientMsg::PoseObs {
                event,
                camera,
                seq,
                observations,
            } => Some((
                event,
                camera,
                seq,
                SessionInput::PoseObservations(observations),
            )),
            _ => None,
        }
    }

    /// Writes this message as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            ClientMsg::OpenEvent {
                event,
                scenario,
                config,
            } => {
                let body = encode_json(&OpenBody {
                    event: *event,
                    scenario: scenario.clone(),
                    config: *config,
                });
                write_frame(w, TAG_OPEN, &body)
            }
            ClientMsg::Frame {
                event,
                camera,
                seq,
                frame,
            } => {
                let pixels = frame.data();
                let mut body = Vec::with_capacity(FRAME_HEADER + pixels.len());
                body.extend_from_slice(&event.raw().to_be_bytes());
                body.extend_from_slice(&(camera.index() as u32).to_be_bytes());
                body.extend_from_slice(&seq.to_be_bytes());
                body.extend_from_slice(&frame.timestamp.0.to_bits().to_be_bytes());
                body.extend_from_slice(&frame.width().to_be_bytes());
                body.extend_from_slice(&frame.height().to_be_bytes());
                body.extend_from_slice(pixels);
                write_frame(w, TAG_FRAME, &body)
            }
            ClientMsg::PoseObs {
                event,
                camera,
                seq,
                observations,
            } => {
                let body = encode_json(&PoseBody {
                    event: *event,
                    camera: *camera,
                    seq: *seq,
                    observations: observations.clone(),
                });
                write_frame(w, TAG_POSE, &body)
            }
            ClientMsg::FinishEvent { event } => {
                let body = encode_json(&FinishBody { event: *event });
                write_frame(w, TAG_FINISH, &body)
            }
            ClientMsg::Drain => write_frame(w, TAG_DRAIN, &[]),
        }
    }

    /// Reads one client message. `Ok(None)` on clean end-of-stream
    /// (the peer closed between frames); `should_stop` lets a server
    /// with a read timeout abandon an idle wait.
    pub fn read_from(
        r: &mut impl Read,
        should_stop: &dyn Fn() -> bool,
    ) -> Result<Option<ClientMsg>, ProtoError> {
        let Some((tag, body)) = read_frame(r, should_stop)? else {
            return Ok(None);
        };
        Ok(Some(ClientMsg::decode(tag, body)?))
    }

    fn decode(tag: u8, body: Vec<u8>) -> Result<ClientMsg, ProtoError> {
        match tag {
            TAG_OPEN => {
                let open: OpenBody = decode_json(&body)?;
                Ok(ClientMsg::OpenEvent {
                    event: open.event,
                    scenario: open.scenario,
                    config: open.config,
                })
            }
            TAG_FRAME => decode_frame_body(&body),
            TAG_POSE => {
                let pose: PoseBody = decode_json(&body)?;
                Ok(ClientMsg::PoseObs {
                    event: pose.event,
                    camera: pose.camera,
                    seq: pose.seq,
                    observations: pose.observations,
                })
            }
            TAG_FINISH => {
                let finish: FinishBody = decode_json(&body)?;
                Ok(ClientMsg::FinishEvent {
                    event: finish.event,
                })
            }
            TAG_DRAIN => Ok(ClientMsg::Drain),
            other => Err(ProtoError::Malformed(format!(
                "unknown client message tag {other:#04x}"
            ))),
        }
    }
}

impl ServerMsg {
    /// Writes this message as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            ServerMsg::Opened { event } => {
                let body = encode_json(&OpenedBody { event: *event });
                write_frame(w, TAG_OPENED, &body)
            }
            ServerMsg::Rejected {
                event,
                op,
                code,
                message,
            } => {
                let body = encode_json(&RejectedBody {
                    event: *event,
                    op: op.as_str().to_owned(),
                    code: code.as_str().to_owned(),
                    message: message.clone(),
                });
                write_frame(w, TAG_REJECTED, &body)
            }
            ServerMsg::Finished {
                event,
                digest,
                pushed,
                processed,
                dropped,
            } => {
                let body = encode_json(&FinishedBody {
                    event: *event,
                    digest: digest.clone(),
                    pushed: *pushed,
                    processed: *processed,
                    dropped: *dropped,
                });
                write_frame(w, TAG_FINISHED, &body)
            }
            ServerMsg::Drained { finished } => {
                let body = encode_json(&DrainedBody {
                    finished: *finished,
                });
                write_frame(w, TAG_DRAINED, &body)
            }
        }
    }

    /// Reads one server message; `Ok(None)` on clean end-of-stream.
    pub fn read_from(
        r: &mut impl Read,
        should_stop: &dyn Fn() -> bool,
    ) -> Result<Option<ServerMsg>, ProtoError> {
        let Some((tag, body)) = read_frame(r, should_stop)? else {
            return Ok(None);
        };
        Ok(Some(ServerMsg::decode(tag, body)?))
    }

    fn decode(tag: u8, body: Vec<u8>) -> Result<ServerMsg, ProtoError> {
        match tag {
            TAG_OPENED => {
                let opened: OpenedBody = decode_json(&body)?;
                Ok(ServerMsg::Opened {
                    event: opened.event,
                })
            }
            TAG_REJECTED => {
                let rejected: RejectedBody = decode_json(&body)?;
                let code = RejectCode::parse(&rejected.code).ok_or_else(|| {
                    ProtoError::Malformed(format!("unknown reject code {:?}", rejected.code))
                })?;
                let op = RejectOp::parse(&rejected.op).ok_or_else(|| {
                    ProtoError::Malformed(format!("unknown reject op {:?}", rejected.op))
                })?;
                Ok(ServerMsg::Rejected {
                    event: rejected.event,
                    op,
                    code,
                    message: rejected.message,
                })
            }
            TAG_FINISHED => {
                let fin: FinishedBody = decode_json(&body)?;
                Ok(ServerMsg::Finished {
                    event: fin.event,
                    digest: fin.digest,
                    pushed: fin.pushed,
                    processed: fin.processed,
                    dropped: fin.dropped,
                })
            }
            TAG_DRAINED => {
                let drained: DrainedBody = decode_json(&body)?;
                Ok(ServerMsg::Drained {
                    finished: drained.finished,
                })
            }
            other => Err(ProtoError::Malformed(format!(
                "unknown server message tag {other:#04x}"
            ))),
        }
    }
}

/// JSON-encodes a control-message body. The vendored serializer is
/// total (every `Value` renders), so the `Result` unwraps to empty
/// only if that ever changes — and an empty body then fails loudly at
/// the decoder, not silently mid-protocol.
fn encode_json<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_vec(value).unwrap_or_default()
}

fn decode_json<T: Deserialize>(body: &[u8]) -> Result<T, ProtoError> {
    serde_json::from_slice(body).map_err(|e| ProtoError::Malformed(format!("bad JSON body: {e}")))
}

/// Decodes the binary `Frame` body, validating dimensions *before*
/// constructing the frame — `GrayFrame::from_data` treats a pixel
/// count mismatch as a programmer error, so the wire layer must never
/// let one through.
fn decode_frame_body(body: &[u8]) -> Result<ClientMsg, ProtoError> {
    if body.len() < FRAME_HEADER {
        return Err(ProtoError::Malformed(format!(
            "frame body is {} bytes, header alone needs {FRAME_HEADER}",
            body.len()
        )));
    }
    let event = EventId::new(u64::from_be_bytes(sub8(body, 0)));
    let camera = CameraId::new(u32::from_be_bytes(sub4(body, 8)) as usize);
    let seq = u64::from_be_bytes(sub8(body, 12));
    let ts = f64::from_bits(u64::from_be_bytes(sub8(body, 20)));
    let width = u32::from_be_bytes(sub4(body, 28));
    let height = u32::from_be_bytes(sub4(body, 32));
    if width > MAX_DIM || height > MAX_DIM {
        return Err(ProtoError::Malformed(format!(
            "frame dimensions {width}x{height} exceed the {MAX_DIM} cap"
        )));
    }
    let expected = (width as usize) * (height as usize);
    let pixels = &body[FRAME_HEADER..];
    if pixels.len() != expected {
        return Err(ProtoError::Malformed(format!(
            "frame claims {width}x{height} = {expected} pixels but carries {}",
            pixels.len()
        )));
    }
    let frame = GrayFrame::from_data(width, height, pixels.to_vec()).with_timestamp(Timestamp(ts));
    Ok(ClientMsg::Frame {
        event,
        camera,
        seq,
        frame,
    })
}

/// `body[at..at + 8]` as an array. Callers bounds-check via
/// `FRAME_HEADER` before slicing.
fn sub8(body: &[u8], at: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    out.copy_from_slice(&body[at..at + 8]);
    out
}

fn sub4(body: &[u8], at: usize) -> [u8; 4] {
    let mut out = [0u8; 4];
    out.copy_from_slice(&body[at..at + 4]);
    out
}

/// Writes one `[len][tag][body]` frame.
fn write_frame(w: &mut impl Write, tag: u8, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("message body {} exceeds the {MAX_BODY} cap", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one `[len][tag][body]` frame. `Ok(None)` when the stream
/// ends cleanly *between* frames (or `should_stop` fires while
/// waiting there); EOF mid-frame is an error.
fn read_frame(
    r: &mut impl Read,
    should_stop: &dyn Fn() -> bool,
) -> Result<Option<(u8, Vec<u8>)>, ProtoError> {
    let mut head = [0u8; 5];
    match read_full(r, &mut head, should_stop, true)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
    }
    let len = u32::from_be_bytes([head[0], head[1], head[2], head[3]]) as usize;
    let tag = head[4];
    if len > MAX_BODY {
        return Err(ProtoError::Malformed(format!(
            "length prefix {len} exceeds the {MAX_BODY} cap"
        )));
    }
    let mut body = vec![0u8; len];
    match read_full(r, &mut body, should_stop, false)? {
        ReadOutcome::Eof => Err(ProtoError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended mid-message",
        ))),
        ReadOutcome::Full => Ok(Some((tag, body))),
    }
}

enum ReadOutcome {
    Full,
    Eof,
}

/// Fills `buf`, tolerating read timeouts (`WouldBlock`/`TimedOut`):
/// a timeout with *nothing read yet* re-polls `should_stop` — that is
/// how a server connection thread notices shutdown while idle — while
/// a timeout mid-buffer just keeps reading. `eof_ok` maps EOF at
/// offset 0 to a clean end-of-stream.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    should_stop: &dyn Fn() -> bool,
    eof_ok: bool,
) -> Result<ReadOutcome, ProtoError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(ReadOutcome::Eof);
                }
                return Err(ProtoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-message",
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 && should_stop() {
                    return Ok(ReadOutcome::Eof);
                }
            }
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEVER: &dyn Fn() -> bool = &|| false;

    #[test]
    fn frame_round_trips_bit_exact() {
        let frame =
            GrayFrame::from_data(3, 2, vec![1, 2, 3, 4, 5, 6]).with_timestamp(Timestamp(0.1 + 0.2)); // deliberately non-representable
        let msg = ClientMsg::Frame {
            event: EventId::new(42),
            camera: CameraId::new(1),
            seq: 7,
            frame: frame.clone(),
        };
        let mut wire = Vec::new();
        msg.write_to(&mut wire).unwrap();
        let decoded = ClientMsg::read_from(&mut wire.as_slice(), NEVER)
            .unwrap()
            .unwrap();
        match &decoded {
            ClientMsg::Frame { frame: got, .. } => {
                assert_eq!(got.timestamp.0.to_bits(), frame.timestamp.0.to_bits());
            }
            other => panic!("decoded {other:?}"),
        }
        assert_eq!(decoded, msg);
        let (event, camera, seq, input) = decoded.into_input().unwrap();
        assert_eq!((event.raw(), camera.index(), seq), (42, 1, 7));
        assert_eq!(input, SessionInput::Frame(frame));
    }

    #[test]
    fn control_messages_round_trip() {
        let open = ClientMsg::OpenEvent {
            event: EventId::new(3),
            scenario: Scenario::two_camera_dinner(5, 1),
            config: PipelineConfig::default(),
        };
        let pose = ClientMsg::PoseObs {
            event: EventId::new(3),
            camera: CameraId::new(0),
            seq: 0,
            observations: vec![],
        };
        let finish = ClientMsg::FinishEvent {
            event: EventId::new(3),
        };
        for msg in [open, pose, finish, ClientMsg::Drain] {
            let mut wire = Vec::new();
            msg.write_to(&mut wire).unwrap();
            let decoded = ClientMsg::read_from(&mut wire.as_slice(), NEVER)
                .unwrap()
                .unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let rejected = ServerMsg::Rejected {
            event: Some(EventId::new(9)),
            op: RejectOp::Open,
            code: RejectCode::QuotaExhausted,
            message: "5 of 5 sessions open".into(),
        };
        let drained = ServerMsg::Drained { finished: 4 };
        let opened = ServerMsg::Opened {
            event: EventId::new(9),
        };
        for msg in [rejected, drained, opened] {
            let mut wire = Vec::new();
            msg.write_to(&mut wire).unwrap();
            let decoded = ServerMsg::read_from(&mut wire.as_slice(), NEVER)
                .unwrap()
                .unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        // Pixel-count mismatch: claims 4x4 but ships 3 bytes.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_be_bytes());
        body.extend_from_slice(&0u32.to_be_bytes());
        body.extend_from_slice(&0u64.to_be_bytes());
        body.extend_from_slice(&0u64.to_be_bytes());
        body.extend_from_slice(&4u32.to_be_bytes());
        body.extend_from_slice(&4u32.to_be_bytes());
        body.extend_from_slice(&[1, 2, 3]);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
        wire.push(TAG_FRAME);
        wire.extend_from_slice(&body);
        assert!(matches!(
            ClientMsg::read_from(&mut wire.as_slice(), NEVER),
            Err(ProtoError::Malformed(_))
        ));

        // Oversized length prefix: refused before allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        wire.push(TAG_FRAME);
        assert!(matches!(
            ClientMsg::read_from(&mut wire.as_slice(), NEVER),
            Err(ProtoError::Malformed(_))
        ));

        // Unknown tag.
        let mut wire = Vec::new();
        wire.extend_from_slice(&0u32.to_be_bytes());
        wire.push(0x7f);
        assert!(matches!(
            ClientMsg::read_from(&mut wire.as_slice(), NEVER),
            Err(ProtoError::Malformed(_))
        ));

        // EOF mid-message.
        let msg = ClientMsg::FinishEvent {
            event: EventId::new(1),
        };
        let mut wire = Vec::new();
        msg.write_to(&mut wire).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(matches!(
            ClientMsg::read_from(&mut wire.as_slice(), NEVER),
            Err(ProtoError::Io(_))
        ));

        // Clean EOF between frames is not an error.
        assert!(matches!(
            ClientMsg::read_from(&mut [].as_slice(), NEVER),
            Ok(None)
        ));
    }
}
