//! Per-tenant state: admission control, quotas, and the registry of
//! open sessions.
//!
//! One [`TenantRegistry`] owns every open [`PipelineSession`], keyed
//! by [`EventId`]. Admission control happens at `OpenEvent` time
//! (session quota, drain state, duplicate ids, config validation);
//! per-tenant frame quotas are enforced *structurally*, by deriving
//! each tenant's bounded per-camera channel capacity from the
//! server-wide [`ServerConfig::max_inflight_frames`] budget and
//! letting the session's own backpressure policy (`Block` stalls only
//! that tenant's connection; `DropOldest` sheds that tenant's oldest
//! queued input and counts it) do the shedding. The conservation
//! ledger — `processed + dropped == pushed` for frame-only workloads —
//! is read back from the same per-tenant-labeled counters the
//! observability plane exports.

use crate::proto::RejectCode;
use dievent_core::{
    AnalysisDigest, BackpressureMode, CameraId, DiEventPipeline, EventAnalysis, EventId,
    ObserveConfig, PipelineConfig, PipelineSession, SessionInput, Telemetry,
};
use dievent_scene::Scenario;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server-wide policy: quotas, backpressure, and the observability
/// endpoint.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently open sessions; further `OpenEvent`s are
    /// rejected with [`RejectCode::QuotaExhausted`].
    pub max_sessions: usize,
    /// Per-tenant in-flight input budget, divided across the tenant's
    /// cameras to size each bounded feed queue (at least 1 each).
    pub max_inflight_frames: usize,
    /// Full-queue policy applied to every tenant: `Block` stalls the
    /// pushing connection, `DropOldest` sheds and counts per tenant.
    pub backpressure: BackpressureMode,
    /// Maximum concurrent ingest connections; further accepts are
    /// answered with [`RejectCode::ServerBusy`] and closed.
    pub max_connections: usize,
    /// Address for the live observability plane (`/metrics`,
    /// `/tenants`, ...). `None` runs without one.
    pub observe_addr: Option<SocketAddr>,
    /// Sampler interval for the observability plane.
    pub sample_interval: Duration,
    /// Keep each finished tenant's full `EventAnalysis` in memory for
    /// [`EventServer::take_analysis`](crate::EventServer::take_analysis)
    /// (the wire `Finished` message only carries the digest).
    pub retain_analyses: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            max_inflight_frames: 256,
            backpressure: BackpressureMode::Block,
            max_connections: 64,
            observe_addr: None,
            sample_interval: Duration::from_millis(250),
            retain_analyses: false,
        }
    }
}

impl ServerConfig {
    /// Validates the quota knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_sessions == 0 {
            return Err("max_sessions must be at least 1".into());
        }
        if self.max_inflight_frames == 0 {
            return Err("max_inflight_frames must be at least 1".into());
        }
        if self.max_connections == 0 {
            return Err("max_connections must be at least 1".into());
        }
        Ok(())
    }
}

/// A point-in-time view of one tenant, as served by `GET /tenants`.
#[derive(Debug, Clone, Serialize)]
pub struct TenantSnapshot {
    /// Tenant/event id.
    pub event: EventId,
    /// `"open"` or `"finishing"`.
    pub state: String,
    /// Cameras in the tenant's rig.
    pub cameras: usize,
    /// Inputs the server accepted for this tenant.
    pub pushed: u64,
    /// Frames the tenant's extraction stage consumed so far.
    pub processed: u64,
    /// Inputs shed by the tenant's `DropOldest` policy so far.
    pub dropped: u64,
    /// Seconds since the session opened.
    pub uptime_s: f64,
}

/// The mutable half of a tenant, behind the handle's mutex.
struct TenantState {
    /// `None` once finish took the session (while `finishing`).
    session: Option<PipelineSession>,
    /// Next expected wire sequence number per camera.
    next_seq: Vec<u64>,
    /// Inputs accepted (frames + pose observations).
    pushed: u64,
    finishing: bool,
}

/// One open tenant: the session plus its wire-protocol bookkeeping.
pub(crate) struct TenantHandle {
    event: EventId,
    /// Tenant-labeled view of the server's shared telemetry — every
    /// metric the session records carries `tenant="<event>"`.
    telemetry: Telemetry,
    cameras: usize,
    opened_at: Instant,
    state: Mutex<TenantState>,
}

/// What a tenant push attempt came back with.
pub(crate) enum PushOutcome {
    /// Input accepted (possibly after blocking on backpressure).
    Accepted,
    /// Input refused with a typed reason; the connection stays up.
    Refused(RejectCode, String),
}

impl TenantHandle {
    pub(crate) fn event(&self) -> EventId {
        self.event
    }

    /// Pushes one decoded wire input into the session, enforcing the
    /// per-camera sequence contract. Holding the state lock across the
    /// (possibly blocking) push is deliberate: it serializes pushers
    /// *of this tenant only* — a stalled tenant never holds a lock any
    /// other tenant needs.
    pub(crate) fn push(&self, camera: CameraId, seq: u64, input: SessionInput) -> PushOutcome {
        let mut state = self.state.lock();
        if state.finishing || state.session.is_none() {
            return PushOutcome::Refused(
                RejectCode::UnknownEvent,
                format!("event {} is finishing", self.event),
            );
        }
        let Some(expected) = state.next_seq.get(camera.index()).copied() else {
            return PushOutcome::Refused(
                RejectCode::UnknownEvent,
                format!("camera {camera} outside the {}-camera rig", self.cameras),
            );
        };
        if seq != expected {
            return PushOutcome::Refused(
                RejectCode::BadSeq,
                format!("camera {camera}: expected seq {expected}, got {seq}"),
            );
        }
        let Some(session) = state.session.as_mut() else {
            return PushOutcome::Refused(RejectCode::UnknownEvent, "session gone".into());
        };
        match session.push(camera, input) {
            Ok(()) => {
                state.next_seq[camera.index()] = expected + 1;
                state.pushed += 1;
                PushOutcome::Accepted
            }
            Err(e) => PushOutcome::Refused(RejectCode::Internal, e.to_string()),
        }
    }

    /// Frames the extraction stage consumed, via the tenant-labeled
    /// counters (get-or-create returns the same instrument the workers
    /// increment).
    fn processed(&self) -> u64 {
        (0..self.cameras)
            .map(|c| {
                self.telemetry
                    .counter_with("frames_processed", &[("camera", &c.to_string())])
                    .get()
            })
            .sum()
    }

    /// Inputs shed by this tenant's `DropOldest` policy.
    fn dropped(&self) -> u64 {
        (0..self.cameras)
            .map(|c| {
                self.telemetry
                    .counter_with("session.frames_dropped", &[("camera", &c.to_string())])
                    .get()
            })
            .sum()
    }

    fn snapshot(&self) -> TenantSnapshot {
        let (pushed, finishing) = {
            let state = self.state.lock();
            (state.pushed, state.finishing)
        };
        TenantSnapshot {
            event: self.event,
            state: if finishing { "finishing" } else { "open" }.to_owned(),
            cameras: self.cameras,
            pushed,
            processed: self.processed(),
            dropped: self.dropped(),
            uptime_s: self.opened_at.elapsed().as_secs_f64(),
        }
    }
}

/// The conservation ledger a finished tenant reports.
pub(crate) struct FinishLedger {
    pub digest: AnalysisDigest,
    pub pushed: u64,
    pub processed: u64,
    pub dropped: u64,
}

/// Registry of open tenants plus the drain flag and retained analyses.
pub(crate) struct TenantRegistry {
    config: ServerConfig,
    telemetry: Telemetry,
    tenants: Mutex<BTreeMap<EventId, Arc<TenantHandle>>>,
    draining: AtomicBool,
    finished_total: AtomicU64,
    analyses: Mutex<BTreeMap<EventId, EventAnalysis>>,
}

impl TenantRegistry {
    pub(crate) fn new(config: ServerConfig, telemetry: Telemetry) -> Self {
        TenantRegistry {
            config,
            telemetry,
            tenants: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            finished_total: AtomicU64::new(0),
            analyses: Mutex::new(BTreeMap::new()),
        }
    }

    pub(crate) fn config(&self) -> &ServerConfig {
        &self.config
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    pub(crate) fn set_draining(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Admission control + session construction for one `OpenEvent`.
    ///
    /// The tenant's requested pipeline config is honoured except where
    /// server policy overrides it: observability is stripped (the
    /// server runs one shared plane), the compute pool is forced to
    /// the shared global one (`pool_threads: 0`) so every tenant
    /// schedules fairly over the same workers, cameras run threaded,
    /// and the streaming quota knobs come from [`ServerConfig`].
    pub(crate) fn open(
        &self,
        event: EventId,
        scenario: &Scenario,
        requested: PipelineConfig,
    ) -> Result<Arc<TenantHandle>, (RejectCode, String)> {
        if self.is_draining() {
            return Err((
                RejectCode::Draining,
                "server is draining; not accepting new events".into(),
            ));
        }
        let cameras = scenario.rig.len();
        if cameras == 0 {
            return Err((RejectCode::InvalidConfig, "scenario has no cameras".into()));
        }
        let config = self.tenant_config(requested, cameras);
        if let Err(e) = config.validate() {
            return Err((RejectCode::InvalidConfig, e.to_string()));
        }

        let mut tenants = self.tenants.lock();
        // Duplicate before quota: re-opening a live event is a client
        // bug, and reporting it as quota pressure would misdirect.
        if tenants.contains_key(&event) {
            return Err((
                RejectCode::DuplicateEvent,
                format!("event {event} is already open"),
            ));
        }
        if tenants.len() >= self.config.max_sessions {
            return Err((
                RejectCode::QuotaExhausted,
                format!(
                    "{} of {} sessions open",
                    tenants.len(),
                    self.config.max_sessions
                ),
            ));
        }
        // Construct the session while holding the registry lock: a
        // racing duplicate OpenEvent must not open two sessions. The
        // lock is per-registry, but opens are rare control-plane work.
        let telemetry = self
            .telemetry
            .with_labels(&[("tenant", &event.to_string())]);
        let session = DiEventPipeline::new_with_telemetry(config, telemetry.clone())
            .session(scenario)
            .map_err(|e| (RejectCode::InvalidConfig, e.to_string()))?;
        let handle = Arc::new(TenantHandle {
            event,
            telemetry,
            cameras,
            opened_at: Instant::now(),
            state: Mutex::new(TenantState {
                session: Some(session),
                next_seq: vec![0; cameras],
                pushed: 0,
                finishing: false,
            }),
        });
        tenants.insert(event, Arc::clone(&handle));
        self.telemetry.counter("server.sessions_opened").incr();
        self.telemetry
            .gauge("server.sessions_open")
            .set(tenants.len() as f64);
        Ok(handle)
    }

    /// The effective per-tenant pipeline config.
    fn tenant_config(&self, mut config: PipelineConfig, cameras: usize) -> PipelineConfig {
        config.observe = ObserveConfig::default();
        config.pool_threads = 0;
        config.parallel_cameras = true;
        config.streaming.backpressure = self.config.backpressure;
        config.streaming.channel_capacity = (self.config.max_inflight_frames / cameras).max(1);
        config
    }

    pub(crate) fn get(&self, event: EventId) -> Option<Arc<TenantHandle>> {
        self.tenants.lock().get(&event).cloned()
    }

    /// Finishes one tenant: takes the session out (so concurrent
    /// pushers see `finishing` and are refused), runs the remaining
    /// pipeline stages *outside* any lock, reads back the conservation
    /// counters, and removes the tenant from the registry.
    pub(crate) fn finish(
        &self,
        handle: &Arc<TenantHandle>,
    ) -> Result<FinishLedger, (RejectCode, String)> {
        let (session, pushed) = {
            let mut state = handle.state.lock();
            let Some(session) = state.session.take() else {
                return Err((
                    RejectCode::UnknownEvent,
                    format!("event {} is already finishing", handle.event),
                ));
            };
            state.finishing = true;
            (session, state.pushed)
        };
        let analysis = session
            .finish()
            .map_err(|e| (RejectCode::Internal, e.to_string()))?;
        let ledger = FinishLedger {
            digest: analysis.digest(),
            pushed,
            processed: handle.processed(),
            dropped: handle.dropped(),
        };
        if self.config.retain_analyses {
            self.analyses.lock().insert(handle.event, analysis);
        }
        let open = {
            let mut tenants = self.tenants.lock();
            tenants.remove(&handle.event);
            tenants.len()
        };
        self.finished_total.fetch_add(1, Ordering::AcqRel);
        self.telemetry.counter("server.sessions_finished").incr();
        self.telemetry
            .gauge("server.sessions_open")
            .set(open as f64);
        Ok(ledger)
    }

    /// Flips the drain flag and returns every still-open tenant, in
    /// id order, for the caller to finish one by one.
    pub(crate) fn drain_targets(&self) -> Vec<Arc<TenantHandle>> {
        self.set_draining();
        self.tenants.lock().values().cloned().collect()
    }

    /// Takes a finished tenant's retained full analysis.
    pub(crate) fn take_analysis(&self, event: EventId) -> Option<EventAnalysis> {
        self.analyses.lock().remove(&event)
    }

    /// The `GET /tenants` body: drain state, open/finished totals, and
    /// one live snapshot per open tenant.
    pub(crate) fn snapshot_json(&self) -> String {
        let snapshots: Vec<TenantSnapshot> = {
            let tenants = self.tenants.lock();
            tenants.values().map(|t| t.snapshot()).collect()
        };
        let body = serde_json::json!({
            "draining": self.is_draining(),
            "open": snapshots.len(),
            "finished": self.finished_total.load(Ordering::Acquire),
            "tenants": snapshots,
        });
        serde_json::to_string_pretty(&body).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> PipelineConfig {
        PipelineConfig {
            classify_emotions: false,
            parse_video: false,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn admission_enforces_quota_drain_and_duplicates() {
        let registry = TenantRegistry::new(
            ServerConfig {
                max_sessions: 2,
                ..ServerConfig::default()
            },
            Telemetry::enabled(),
        );
        let scenario = Scenario::two_camera_dinner(5, 1);
        assert!(registry
            .open(EventId::new(1), &scenario, quick_config())
            .is_ok());
        let err = registry
            .open(EventId::new(1), &scenario, quick_config())
            .err()
            .expect("duplicate must be refused");
        assert_eq!(err.0, RejectCode::DuplicateEvent);
        assert!(registry
            .open(EventId::new(2), &scenario, quick_config())
            .is_ok());
        let err = registry
            .open(EventId::new(3), &scenario, quick_config())
            .err()
            .expect("quota must be enforced");
        assert_eq!(err.0, RejectCode::QuotaExhausted);
        // Finishing one frees a slot...
        let t1 = registry.get(EventId::new(1)).expect("tenant 1 open");
        assert!(registry.finish(&t1).is_ok());
        // ...but draining closes the door regardless.
        registry.set_draining();
        let err = registry
            .open(EventId::new(3), &scenario, quick_config())
            .err()
            .expect("draining must refuse opens");
        assert_eq!(err.0, RejectCode::Draining);
    }

    #[test]
    fn inflight_budget_divides_across_cameras() {
        let registry = TenantRegistry::new(
            ServerConfig {
                max_inflight_frames: 10,
                ..ServerConfig::default()
            },
            Telemetry::disabled(),
        );
        let cfg = registry.tenant_config(quick_config(), 4);
        assert_eq!(cfg.streaming.channel_capacity, 2);
        assert_eq!(cfg.pool_threads, 0);
        // A one-camera rig gets the whole budget; a huge rig still
        // gets at least one slot per camera.
        assert_eq!(
            registry
                .tenant_config(quick_config(), 1)
                .streaming
                .channel_capacity,
            10
        );
        assert_eq!(
            registry
                .tenant_config(quick_config(), 100)
                .streaming
                .channel_capacity,
            1
        );
    }

    #[test]
    fn bad_seq_and_unknown_camera_are_typed_refusals() {
        let registry = TenantRegistry::new(ServerConfig::default(), Telemetry::enabled());
        let scenario = Scenario::two_camera_dinner(5, 1);
        let recording = dievent_core::Recording::capture(scenario.clone());
        let Ok(tenant) = registry.open(EventId::new(7), &scenario, quick_config()) else {
            panic!("open succeeds");
        };
        let frame = recording.frame(0, 0);
        assert!(matches!(
            tenant.push(CameraId::new(0), 0, SessionInput::Frame(frame.clone())),
            PushOutcome::Accepted
        ));
        match tenant.push(CameraId::new(0), 5, SessionInput::Frame(frame.clone())) {
            PushOutcome::Refused(code, msg) => {
                assert_eq!(code, RejectCode::BadSeq);
                assert!(msg.contains("expected seq 1"));
            }
            PushOutcome::Accepted => panic!("seq gap must be refused"),
        }
        match tenant.push(CameraId::new(9), 0, SessionInput::Frame(frame)) {
            PushOutcome::Refused(code, _) => assert_eq!(code, RejectCode::UnknownEvent),
            PushOutcome::Accepted => panic!("unknown camera must be refused"),
        }
        assert!(registry.finish(&tenant).is_ok());
    }
}
