//! Multi-tenant event server for the DiEvent pipeline.
//!
//! A single long-running process multiplexing many concurrent dining
//! events: each tenant (an [`EventId`](dievent_core::EventId)) gets
//! its own streaming
//! [`PipelineSession`](dievent_core::PipelineSession), fed over a
//! dependency-free framed TCP protocol
//! (`[u32 len][u8 tag][body]` — see [`proto`]) whose ingest messages
//! decode 1:1 onto the typed
//! [`SessionInput`](dievent_core::SessionInput) API.
//!
//! * **Admission control** — session quota, duplicate-event and
//!   drain-state checks at `OpenEvent`, each refusal a typed
//!   [`RejectCode`] on the wire.
//! * **Per-tenant quotas** — every tenant's bounded per-camera queues
//!   are sized from one server-wide in-flight budget; `Block` stalls
//!   only that tenant's connection, `DropOldest` sheds and counts per
//!   tenant.
//! * **Fair scheduling** — all tenants share the global work-stealing
//!   pool, so a hot event competes for worker slots rather than
//!   monopolizing cores.
//! * **Observability** — one shared plane; every session metric
//!   carries a `tenant` label, and `GET /tenants` serves a live
//!   per-tenant JSON snapshot.
//! * **Graceful drain** — `Drain` (wire) or
//!   [`EventServer::drain`] finishes every in-flight session before
//!   exit; new events are refused while draining.
//!
//! ```no_run
//! use dievent_server::{EventServer, ServerConfig};
//!
//! let server = EventServer::bind(
//!     "127.0.0.1:0".parse().unwrap(),
//!     ServerConfig::default(),
//! ).unwrap();
//! println!("ingest on {}", server.local_addr());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
mod server;
mod tenant;

pub use client::{ControlReply, EventClient, FinishedEvent, Rejection};
pub use proto::{ClientMsg, ProtoError, RejectCode, RejectOp, ServerMsg, MAX_BODY, MAX_DIM};
pub use server::EventServer;
pub use tenant::{ServerConfig, TenantSnapshot};
