//! The long-running multi-tenant event server.
//!
//! One [`EventServer`] owns a TCP listener, a registry of concurrent
//! per-event [`PipelineSession`](dievent_core::PipelineSession)s, and
//! (optionally) one shared live-observability plane. The accept loop
//! mirrors the telemetry exporter's: a nonblocking listener polled
//! every few milliseconds so shutdown is bounded, with long-lived
//! per-connection handler threads capped by
//! [`ServerConfig::max_connections`].
//!
//! Fairness: every tenant's heavy compute runs on the single shared
//! work-stealing pool (`pool_threads: 0` is forced per tenant), so a
//! hot event competes for worker slots instead of spawning its own
//! unbounded threads, and each tenant's ingest is bounded by its own
//! derived queue capacity — a stalled or flooding tenant blocks (or
//! sheds) only its own connection.

use crate::proto::{ClientMsg, ProtoError, RejectCode, RejectOp, ServerMsg};
use crate::tenant::{PushOutcome, ServerConfig, TenantRegistry};
use dievent_core::{EventAnalysis, EventId, Telemetry};
use dievent_telemetry::{LiveOptions, LivePlane};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Accept-loop poll interval: an idle listener notices shutdown
/// within this long.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection socket read timeout — the granularity at which an
/// idle connection thread notices server shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long `shutdown_join` waits for threads before detaching them.
const JOIN_TIMEOUT: Duration = Duration::from_secs(10);

/// State shared by the accept loop, every connection thread, the
/// observability plane's `/tenants` provider, and the public handle.
struct ServerShared {
    registry: TenantRegistry,
    telemetry: Telemetry,
    shutdown: AtomicBool,
    conns_alive: AtomicUsize,
}

/// A running multi-tenant event server. Dropping it drains and joins.
pub struct EventServer {
    shared: Arc<ServerShared>,
    accept: Option<std::thread::JoinHandle<()>>,
    plane: Option<LivePlane>,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for EventServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventServer")
            .field("local_addr", &self.local_addr)
            .field("draining", &self.shared.registry.is_draining())
            .finish()
    }
}

impl EventServer {
    /// Binds the ingest listener (port 0 picks a free port), starts
    /// the observability plane when configured, and spawns the accept
    /// loop.
    pub fn bind(addr: SocketAddr, config: ServerConfig) -> io::Result<EventServer> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let telemetry = Telemetry::enabled();
        let plane = match config.observe_addr {
            None => None,
            Some(observe_addr) => Some(LivePlane::start(
                &telemetry,
                LiveOptions {
                    http_addr: Some(observe_addr),
                    sample_interval: config.sample_interval,
                    ..LiveOptions::default()
                },
            )?),
        };
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(ServerShared {
            registry: TenantRegistry::new(config, telemetry.clone()),
            telemetry,
            shutdown: AtomicBool::new(false),
            conns_alive: AtomicUsize::new(0),
        });
        if let Some(plane) = &plane {
            let provider = Arc::clone(&shared);
            plane.attach_tenants(move || provider.registry.snapshot_json());
        }
        let accept = std::thread::Builder::new()
            .name("dievent-server-accept".into())
            .spawn({
                let shared = Arc::clone(&shared);
                move || accept_loop(listener, &shared)
            })?;
        Ok(EventServer {
            shared,
            accept: Some(accept),
            plane,
            local_addr,
        })
    }

    /// The address the ingest listener bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The observability plane's HTTP address, when one is running.
    pub fn observe_addr(&self) -> Option<SocketAddr> {
        self.plane.as_ref().and_then(|p| p.local_addr())
    }

    /// Whether the server is draining (no new events admitted).
    pub fn is_draining(&self) -> bool {
        self.shared.registry.is_draining()
    }

    /// Live ingest connections.
    pub fn connections(&self) -> usize {
        self.shared.conns_alive.load(Ordering::Acquire)
    }

    /// The `GET /tenants` JSON, for in-process inspection.
    pub fn tenants_json(&self) -> String {
        self.shared.registry.snapshot_json()
    }

    /// Takes a finished event's retained full analysis (only kept
    /// when [`ServerConfig::retain_analyses`] is set).
    pub fn take_analysis(&self, event: EventId) -> Option<EventAnalysis> {
        self.shared.registry.take_analysis(event)
    }

    /// Drains in-process: rejects new events from now on and finishes
    /// every open session. Returns the number finished. Ingest
    /// connections stay up (their next push gets a typed refusal).
    pub fn drain(&self) -> usize {
        drain_sessions(&self.shared)
    }

    /// Graceful exit: drain, stop the accept loop, join connection
    /// threads (bounded), and shut the observability plane down.
    /// Returns `true` when everything joined in time. Idempotent.
    pub fn shutdown_join(&mut self) -> bool {
        let finished_clean = {
            let _span = self.shared.telemetry.span("server.shutdown");
            self.drain();
            self.shared.shutdown.store(true, Ordering::Release);
            if let Some(handle) = self.accept.take() {
                let _ = handle.join();
            }
            let deadline = std::time::Instant::now() + JOIN_TIMEOUT;
            loop {
                if self.shared.conns_alive.load(Ordering::Acquire) == 0 {
                    break true;
                }
                if std::time::Instant::now() >= deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        };
        if let Some(mut plane) = self.plane.take() {
            plane.shutdown_join(Duration::from_secs(2));
        }
        finished_clean
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        self.shutdown_join();
    }
}

/// Decrements the live-connection count even if a handler unwinds.
struct ConnGuard(Arc<ServerShared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns_alive.fetch_sub(1, Ordering::AcqRel);
        self.0
            .telemetry
            .gauge("server.connections")
            .set(self.0.conns_alive.load(Ordering::Acquire) as f64);
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<ServerShared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let alive = shared.conns_alive.load(Ordering::Acquire);
                if alive >= shared.registry.config().max_connections {
                    refuse_connection(stream, alive, shared);
                    continue;
                }
                shared.conns_alive.fetch_add(1, Ordering::AcqRel);
                shared
                    .telemetry
                    .gauge("server.connections")
                    .set((alive + 1) as f64);
                let guard = ConnGuard(Arc::clone(shared));
                let spawned = std::thread::Builder::new()
                    .name("dievent-server-conn".into())
                    .spawn({
                        let shared = Arc::clone(shared);
                        move || {
                            let _guard = guard;
                            handle_conn(stream, &shared);
                        }
                    });
                // Spawn failure rolls the count back via the guard,
                // which moved into the closure that never ran.
                drop(spawned);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Over-cap accept: answer with a typed refusal, then close.
fn refuse_connection(mut stream: TcpStream, alive: usize, shared: &Arc<ServerShared>) {
    shared
        .telemetry
        .counter("server.connections_refused")
        .incr();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = ServerMsg::Rejected {
        event: None,
        op: RejectOp::Connection,
        code: RejectCode::ServerBusy,
        message: format!(
            "{alive} of {} connections in use",
            shared.registry.config().max_connections
        ),
    }
    .write_to(&mut stream);
}

/// One long-lived ingest connection: read framed messages until the
/// peer hangs up, the stream turns malformed, or the server shuts
/// down. Ingest messages are not acknowledged unless refused; control
/// messages always get a reply.
fn handle_conn(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let mut span = shared.telemetry.span("server.conn");
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let stop = {
        let shared = Arc::clone(shared);
        move || shared.shutdown.load(Ordering::Acquire)
    };
    let mut messages = 0u64;
    loop {
        let msg = match ClientMsg::read_from(&mut stream, &stop) {
            Ok(Some(msg)) => msg,
            // Peer closed (or shutdown fired while idle): done.
            Ok(None) => break,
            Err(ProtoError::Malformed(detail)) => {
                // The framing itself may be broken, so answer once and
                // close rather than risk misparsing the rest forever.
                let _ = ServerMsg::Rejected {
                    event: None,
                    op: RejectOp::Ingest,
                    code: RejectCode::Malformed,
                    message: detail,
                }
                .write_to(&mut stream);
                break;
            }
            Err(ProtoError::Io(_)) => break,
        };
        messages += 1;
        if !dispatch(msg, &mut stream, shared) {
            break;
        }
    }
    span.set("messages", messages as i64);
}

/// Handles one decoded message; `false` ends the connection.
fn dispatch(msg: ClientMsg, stream: &mut TcpStream, shared: &Arc<ServerShared>) -> bool {
    match msg {
        ClientMsg::OpenEvent {
            event,
            scenario,
            config,
        } => {
            let _span = shared.telemetry.span("server.open_event");
            let reply = match shared.registry.open(event, &scenario, config) {
                Ok(_) => ServerMsg::Opened { event },
                Err((code, message)) => {
                    shared.telemetry.counter("server.opens_rejected").incr();
                    ServerMsg::Rejected {
                        event: Some(event),
                        op: RejectOp::Open,
                        code,
                        message,
                    }
                }
            };
            reply.write_to(stream).is_ok()
        }
        ClientMsg::Frame { .. } | ClientMsg::PoseObs { .. } => {
            let Some((event, camera, seq, input)) = msg.into_input() else {
                return true;
            };
            let Some(tenant) = shared.registry.get(event) else {
                return ServerMsg::Rejected {
                    event: Some(event),
                    op: RejectOp::Ingest,
                    code: RejectCode::UnknownEvent,
                    message: format!("no open session for event {event}"),
                }
                .write_to(stream)
                .is_ok();
            };
            match tenant.push(camera, seq, input) {
                PushOutcome::Accepted => true,
                PushOutcome::Refused(code, message) => ServerMsg::Rejected {
                    event: Some(event),
                    op: RejectOp::Ingest,
                    code,
                    message,
                }
                .write_to(stream)
                .is_ok(),
            }
        }
        ClientMsg::FinishEvent { event } => {
            let Some(tenant) = shared.registry.get(event) else {
                return ServerMsg::Rejected {
                    event: Some(event),
                    op: RejectOp::Finish,
                    code: RejectCode::UnknownEvent,
                    message: format!("no open session for event {event}"),
                }
                .write_to(stream)
                .is_ok();
            };
            let _span = shared.telemetry.span("server.finish_event");
            let reply = match shared.registry.finish(&tenant) {
                Ok(ledger) => ServerMsg::Finished {
                    event,
                    digest: ledger.digest,
                    pushed: ledger.pushed,
                    processed: ledger.processed,
                    dropped: ledger.dropped,
                },
                Err((code, message)) => ServerMsg::Rejected {
                    event: Some(event),
                    op: RejectOp::Finish,
                    code,
                    message,
                },
            };
            reply.write_to(stream).is_ok()
        }
        ClientMsg::Drain => {
            let _span = shared.telemetry.span("server.drain");
            let targets = shared.registry.drain_targets();
            let mut finished = 0u64;
            for tenant in targets {
                let event = tenant.event();
                if let Ok(ledger) = shared.registry.finish(&tenant) {
                    finished += 1;
                    let sent = ServerMsg::Finished {
                        event,
                        digest: ledger.digest,
                        pushed: ledger.pushed,
                        processed: ledger.processed,
                        dropped: ledger.dropped,
                    }
                    .write_to(stream)
                    .is_ok();
                    if !sent {
                        return false;
                    }
                }
            }
            ServerMsg::Drained { finished }.write_to(stream).is_ok()
        }
    }
}

/// Shared drain path for [`EventServer::drain`] and shutdown.
fn drain_sessions(shared: &Arc<ServerShared>) -> usize {
    let _span = shared.telemetry.span("server.drain");
    let targets = shared.registry.drain_targets();
    let mut finished = 0usize;
    for tenant in targets {
        if shared.registry.finish(&tenant).is_ok() {
            finished += 1;
        }
    }
    finished
}

// The registry parks sessions inside shared state crossed by
// connection threads — keep the compiler honest about that.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<dievent_core::PipelineSession>()
};
