//! A small blocking client for the framed ingest protocol — the
//! counterpart the load generator, smoke example, and integration
//! tests all drive the server with.
//!
//! Ingest sends (`send_frame`, `send_pose`) are one-way: the server
//! only answers them when it refuses one. Control calls (`open_event`,
//! `finish_event`, `drain`) wait for their reply, stashing any ingest
//! refusals that arrive in between into [`EventClient::rejections`] —
//! the [`RejectOp`] on every refusal is what makes that sorting
//! unambiguous.

use crate::proto::{ClientMsg, ProtoError, RejectCode, RejectOp, ServerMsg};
use dievent_analysis::CameraObservation;
use dievent_core::{AnalysisDigest, CameraId, EventId, PipelineConfig};
use dievent_scene::Scenario;
use dievent_video::GrayFrame;
use std::io;
use std::net::{SocketAddr, TcpStream};

/// One ingest refusal the server pushed at us.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// The event the refused request targeted, when attributable.
    pub event: Option<EventId>,
    /// Which request was refused.
    pub op: RejectOp,
    /// Typed reason.
    pub code: RejectCode,
    /// Human-readable detail.
    pub message: String,
}

/// A finished session's wire-level result.
#[derive(Debug, Clone)]
pub struct FinishedEvent {
    /// The event that finished.
    pub event: EventId,
    /// Digest of the final analysis.
    pub digest: AnalysisDigest,
    /// Inputs the server accepted for this tenant.
    pub pushed: u64,
    /// Frames the extraction stage consumed.
    pub processed: u64,
    /// Inputs shed by the tenant's `DropOldest` policy.
    pub dropped: u64,
}

/// The reply to a control request: granted, or refused with a code.
pub type ControlReply<T> = Result<T, Rejection>;

/// A blocking protocol client over one TCP connection.
pub struct EventClient {
    stream: TcpStream,
    /// Ingest refusals received while waiting for control replies.
    pub rejections: Vec<Rejection>,
}

impl EventClient {
    /// Connects to a server's ingest address.
    pub fn connect(addr: SocketAddr) -> io::Result<EventClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(EventClient {
            stream,
            rejections: Vec::new(),
        })
    }

    /// Opens a session; waits for the server's verdict.
    pub fn open_event(
        &mut self,
        event: EventId,
        scenario: &Scenario,
        config: PipelineConfig,
    ) -> Result<ControlReply<()>, ProtoError> {
        ClientMsg::OpenEvent {
            event,
            scenario: scenario.clone(),
            config,
        }
        .write_to(&mut self.stream)?;
        loop {
            match self.read_reply()? {
                ServerMsg::Opened { .. } => return Ok(Ok(())),
                ServerMsg::Rejected {
                    event,
                    op,
                    code,
                    message,
                } => {
                    let rejection = Rejection {
                        event,
                        op,
                        code,
                        message,
                    };
                    if op == RejectOp::Open || op == RejectOp::Connection {
                        return Ok(Err(rejection));
                    }
                    self.rejections.push(rejection);
                }
                other => {
                    return Err(ProtoError::Malformed(format!(
                        "unexpected reply to OpenEvent: {other:?}"
                    )))
                }
            }
        }
    }

    /// Sends one frame (fire-and-forget).
    pub fn send_frame(
        &mut self,
        event: EventId,
        camera: CameraId,
        seq: u64,
        frame: GrayFrame,
    ) -> io::Result<()> {
        ClientMsg::Frame {
            event,
            camera,
            seq,
            frame,
        }
        .write_to(&mut self.stream)
    }

    /// Sends one batch of pose observations (fire-and-forget).
    pub fn send_pose(
        &mut self,
        event: EventId,
        camera: CameraId,
        seq: u64,
        observations: Vec<CameraObservation>,
    ) -> io::Result<()> {
        ClientMsg::PoseObs {
            event,
            camera,
            seq,
            observations,
        }
        .write_to(&mut self.stream)
    }

    /// Finishes a session; waits for its `Finished` (or refusal),
    /// stashing interleaved ingest refusals.
    pub fn finish_event(
        &mut self,
        event: EventId,
    ) -> Result<ControlReply<FinishedEvent>, ProtoError> {
        ClientMsg::FinishEvent { event }.write_to(&mut self.stream)?;
        loop {
            match self.read_reply()? {
                ServerMsg::Finished {
                    event,
                    digest,
                    pushed,
                    processed,
                    dropped,
                } => {
                    return Ok(Ok(FinishedEvent {
                        event,
                        digest,
                        pushed,
                        processed,
                        dropped,
                    }))
                }
                ServerMsg::Rejected {
                    event,
                    op,
                    code,
                    message,
                } => {
                    let rejection = Rejection {
                        event,
                        op,
                        code,
                        message,
                    };
                    if op == RejectOp::Finish {
                        return Ok(Err(rejection));
                    }
                    self.rejections.push(rejection);
                }
                other => {
                    return Err(ProtoError::Malformed(format!(
                        "unexpected reply to FinishEvent: {other:?}"
                    )))
                }
            }
        }
    }

    /// Asks the server to drain: every open session finishes (each
    /// reported back), then new events are refused. Returns the
    /// per-session results in the order the server finished them.
    pub fn drain(&mut self) -> Result<Vec<FinishedEvent>, ProtoError> {
        ClientMsg::Drain.write_to(&mut self.stream)?;
        let mut finished = Vec::new();
        loop {
            match self.read_reply()? {
                ServerMsg::Finished {
                    event,
                    digest,
                    pushed,
                    processed,
                    dropped,
                } => finished.push(FinishedEvent {
                    event,
                    digest,
                    pushed,
                    processed,
                    dropped,
                }),
                ServerMsg::Drained { finished: n } => {
                    if n as usize != finished.len() {
                        return Err(ProtoError::Malformed(format!(
                            "Drained claims {n} sessions but {} Finished arrived",
                            finished.len()
                        )));
                    }
                    return Ok(finished);
                }
                ServerMsg::Rejected {
                    event,
                    op,
                    code,
                    message,
                } => self.rejections.push(Rejection {
                    event,
                    op,
                    code,
                    message,
                }),
                other => {
                    return Err(ProtoError::Malformed(format!(
                        "unexpected reply to Drain: {other:?}"
                    )))
                }
            }
        }
    }

    /// Drains any ingest refusals the server has already sent without
    /// blocking for more (uses a short read timeout probe).
    pub fn poll_rejections(&mut self) -> Result<&[Rejection], ProtoError> {
        self.stream
            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .map_err(ProtoError::Io)?;
        loop {
            match ServerMsg::read_from(&mut self.stream, &|| true) {
                Ok(Some(ServerMsg::Rejected {
                    event,
                    op,
                    code,
                    message,
                })) => self.rejections.push(Rejection {
                    event,
                    op,
                    code,
                    message,
                }),
                Ok(Some(other)) => {
                    return Err(ProtoError::Malformed(format!(
                        "unsolicited non-rejection message: {other:?}"
                    )))
                }
                Ok(None) => break,
                Err(e) => return Err(e),
            }
        }
        self.stream.set_read_timeout(None).map_err(ProtoError::Io)?;
        Ok(&self.rejections)
    }

    fn read_reply(&mut self) -> Result<ServerMsg, ProtoError> {
        match ServerMsg::read_from(&mut self.stream, &|| false)? {
            Some(msg) => Ok(msg),
            None => Err(ProtoError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection while a reply was pending",
            ))),
        }
    }
}
