//! Pluggable exporters.
//!
//! Every sink consumes the same [`Snapshot`]; pick the format:
//!
//! * [`TreeSink`] — human-readable span tree plus registry summary
//!   (what `dievent --metrics` prints to stderr);
//! * [`JsonlSink`] — one JSON object per span/event line (what
//!   `dievent --trace FILE` writes);
//! * [`PrometheusSink`] — text exposition of the registry.

use crate::report::TelemetryReport;
use crate::span::{EventRecord, FieldValue, SpanRecord};
use serde_json::json;
use std::io::{self, Write};

/// A point-in-time copy of a telemetry domain.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Recorded events, in order.
    pub events: Vec<EventRecord>,
    /// The aggregated metrics view.
    pub report: TelemetryReport,
}

/// An exporter of telemetry snapshots.
pub trait Sink {
    /// Writes the snapshot in this sink's format.
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()>;
}

fn fmt_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.0}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

fn fmt_fields(fields: &[(String, FieldValue)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!(" {k}={v}"))
        .collect::<String>()
}

/// Human-readable tree dump.
pub struct TreeSink<W: Write>(pub W);

impl<W: Write> Sink for TreeSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let w = &mut self.0;
        if !snapshot.spans.is_empty() {
            writeln!(w, "spans:")?;
            // Children of each span, in open order.
            let mut spans = snapshot.spans.to_vec();
            spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
            let roots: Vec<&SpanRecord> = spans
                .iter()
                .filter(|s| s.parent.is_none() || !spans.iter().any(|p| Some(p.id) == s.parent))
                .collect();
            for root in roots {
                write_subtree(w, &spans, root, 1)?;
            }
        }
        let r = &snapshot.report;
        if !r.counters.is_empty() {
            writeln!(w, "counters:")?;
            for c in &r.counters {
                writeln!(w, "  {:<48} {}", c.name, c.value)?;
            }
        }
        if !r.gauges.is_empty() {
            writeln!(w, "gauges:")?;
            for g in &r.gauges {
                writeln!(w, "  {:<48} {}", g.name, g.value)?;
            }
        }
        if !r.histograms.is_empty() {
            writeln!(w, "histograms:")?;
            for h in &r.histograms {
                writeln!(
                    w,
                    "  {:<48} count={} p50={} p95={} p99={} max={}",
                    h.name,
                    h.count,
                    fmt_seconds(h.p50),
                    fmt_seconds(h.p95),
                    fmt_seconds(h.p99),
                    fmt_seconds(h.max),
                )?;
            }
        }
        Ok(())
    }
}

fn write_subtree<W: Write>(
    w: &mut W,
    spans: &[SpanRecord],
    node: &SpanRecord,
    depth: usize,
) -> io::Result<()> {
    writeln!(
        w,
        "{}{} ({}){}",
        "  ".repeat(depth),
        node.name,
        fmt_seconds(node.duration_s),
        fmt_fields(&node.fields),
    )?;
    for child in spans.iter().filter(|s| s.parent == Some(node.id)) {
        write_subtree(w, spans, child, depth + 1)?;
    }
    Ok(())
}

/// JSON-lines trace exporter: one object per span (`"kind":"span"`)
/// and per event (`"kind":"event"`), spans sorted by start time.
pub struct JsonlSink<W: Write>(pub W);

fn render_line(v: &serde_json::Value) -> io::Result<String> {
    serde_json::to_string(v).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn fields_object(fields: &[(String, FieldValue)]) -> serde_json::Value {
    let mut obj = serde_json::Value::Object(Default::default());
    if let serde_json::Value::Object(map) = &mut obj {
        for (k, v) in fields {
            let jv = match v {
                FieldValue::Int(i) => json!(*i),
                FieldValue::Float(f) => json!(*f),
                FieldValue::Str(s) => json!(s),
                FieldValue::Bool(b) => json!(*b),
            };
            map.insert(k.clone(), jv);
        }
    }
    obj
}

impl<W: Write> Sink for JsonlSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let mut spans = snapshot.spans.to_vec();
        spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        for s in &spans {
            let line = json!({
                "kind": "span",
                "id": s.id,
                "parent": serde_json::to_value(&s.parent)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                "name": s.name,
                "thread": s.thread,
                "start_s": s.start_s,
                "duration_s": s.duration_s,
                "fields": fields_object(&s.fields),
            });
            writeln!(self.0, "{}", render_line(&line)?)?;
        }
        for e in &snapshot.events {
            let line = json!({
                "kind": "event",
                "span": serde_json::to_value(&e.span)
                    .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?,
                "name": e.name,
                "t_s": e.t_s,
                "fields": fields_object(&e.fields),
            });
            writeln!(self.0, "{}", render_line(&line)?)?;
        }
        Ok(())
    }
}

/// Prometheus text exposition of the registry (spans and events are
/// not exported — scrape formats carry metrics only).
pub struct PrometheusSink<W: Write>(pub W);

/// `frames_processed{camera="0"}` → `("frames_processed", `{camera="0"}`)`.
fn split_labels(rendered: &str) -> (&str, &str) {
    match rendered.find('{') {
        Some(i) => (&rendered[..i], &rendered[i..]),
        None => (rendered, ""),
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl<W: Write> Sink for PrometheusSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let w = &mut self.0;
        let r = &snapshot.report;
        let mut last_type: Option<String> = None;
        let mut type_line = |w: &mut W, name: &str, kind: &str| -> io::Result<()> {
            if last_type.as_deref() != Some(name) {
                writeln!(w, "# TYPE dievent_{name} {kind}")?;
                last_type = Some(name.to_owned());
            }
            Ok(())
        };
        for c in &r.counters {
            let (name, labels) = split_labels(&c.name);
            let name = sanitize(name);
            type_line(w, &name, "counter")?;
            writeln!(w, "dievent_{name}{labels} {}", c.value)?;
        }
        for g in &r.gauges {
            let (name, labels) = split_labels(&g.name);
            let name = sanitize(name);
            type_line(w, &name, "gauge")?;
            writeln!(w, "dievent_{name}{labels} {}", g.value)?;
        }
        for h in &r.histograms {
            let (name, labels) = split_labels(&h.name);
            let name = sanitize(name);
            type_line(w, &name, "summary")?;
            let base_labels = labels.trim_start_matches('{').trim_end_matches('}');
            let quantile = |q: &str, v: f64| {
                if base_labels.is_empty() {
                    format!("dievent_{name}{{quantile=\"{q}\"}} {v}")
                } else {
                    format!("dievent_{name}{{{base_labels},quantile=\"{q}\"}} {v}")
                }
            };
            writeln!(w, "{}", quantile("0.5", h.p50))?;
            writeln!(w, "{}", quantile("0.95", h.p95))?;
            writeln!(w, "{}", quantile("0.99", h.p99))?;
            writeln!(w, "dievent_{name}_sum{labels} {}", h.sum)?;
            writeln!(w, "dievent_{name}_count{labels} {}", h.count)?;
        }
        // Span aggregates exported as a pair of synthetic metrics.
        for s in &r.spans {
            let name = sanitize(&s.name);
            type_line(w, &format!("span_{name}_seconds_total"), "counter")?;
            writeln!(w, "dievent_span_{name}_seconds_total {}", s.total_s)?;
            type_line(w, &format!("span_{name}_count"), "counter")?;
            writeln!(w, "dievent_span_{name}_count {}", s.count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    fn sample() -> Telemetry {
        let t = Telemetry::enabled();
        {
            let mut run = t.span("run");
            run.set("frames", 40usize);
            let _child = t.span("stage.extraction");
            t.counter_with("frames_processed", &[("camera", "0")])
                .add(40);
            t.gauge("participants").set(4.0);
            t.histogram("frame_extraction_seconds").observe(0.002);
        }
        t
    }

    #[test]
    fn tree_dump_shows_hierarchy_and_metrics() {
        let text = sample().render_tree();
        assert!(text.contains("run ("), "{text}");
        assert!(
            text.contains("    stage.extraction ("),
            "nested deeper: {text}"
        );
        assert!(text.contains("frames=40"));
        assert!(text.contains("frames_processed{camera=\"0\"}"));
        assert!(text.contains("p50="));
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let text = sample().trace_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "two spans: {text}");
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["kind"], serde_json::json!("span"));
            assert!(v["duration_s"].as_f64().unwrap() >= 0.0);
        }
    }

    #[test]
    fn jsonl_round_trips_the_snapshot() {
        let t = sample();
        t.event("frame.dropped");
        let snapshot = t.snapshot();
        let text = t.trace_jsonl();
        let values: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(values.len(), snapshot.spans.len() + snapshot.events.len());
        // Every exported span is reconstructible field-for-field.
        for record in &snapshot.spans {
            let line = values
                .iter()
                .find(|v| v["kind"].as_str() == Some("span") && v["id"].as_u64() == Some(record.id))
                .unwrap_or_else(|| panic!("span {} missing from trace", record.id));
            assert_eq!(line["name"].as_str(), Some(record.name.as_str()));
            assert_eq!(line["parent"].as_u64(), record.parent);
            assert_eq!(line["start_s"].as_f64(), Some(record.start_s));
            assert_eq!(line["duration_s"].as_f64(), Some(record.duration_s));
        }
        let event = values
            .iter()
            .find(|v| v["kind"].as_str() == Some("event"))
            .expect("event line present");
        assert_eq!(event["name"].as_str(), Some("frame.dropped"));
    }

    #[test]
    fn prometheus_exposition_has_types_and_values() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE dievent_frames_processed counter"));
        assert!(text.contains("dievent_frames_processed{camera=\"0\"} 40"));
        assert!(text.contains("# TYPE dievent_participants gauge"));
        assert!(text.contains("quantile=\"0.95\""));
        assert!(text.contains("dievent_frame_extraction_seconds_count 1"));
        assert!(text.contains("dievent_span_run_seconds_total"));
    }
}
