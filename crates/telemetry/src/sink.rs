//! Pluggable exporters.
//!
//! Every sink consumes the same [`Snapshot`]; pick the format:
//!
//! * [`TreeSink`] — human-readable span tree plus registry summary
//!   (what `dievent --metrics` prints to stderr);
//! * [`JsonlSink`] — one JSON object per span/event line (what
//!   `dievent --trace FILE` writes);
//! * [`PrometheusSink`] — text exposition of the registry.

use crate::report::TelemetryReport;
use crate::span::{EventRecord, FieldValue, SpanRecord};
use serde_json::json;
use std::io::{self, Write};

/// A point-in-time copy of a telemetry domain.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Recorded events, in order.
    pub events: Vec<EventRecord>,
    /// The aggregated metrics view.
    pub report: TelemetryReport,
}

/// An exporter of telemetry snapshots.
pub trait Sink {
    /// Writes the snapshot in this sink's format.
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()>;
}

fn fmt_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.0}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

fn fmt_fields(fields: &[(String, FieldValue)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!(" {k}={v}"))
        .collect::<String>()
}

/// Human-readable tree dump.
pub struct TreeSink<W: Write>(pub W);

impl<W: Write> Sink for TreeSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let w = &mut self.0;
        if !snapshot.spans.is_empty() {
            writeln!(w, "spans:")?;
            // Children of each span, in open order.
            let mut spans = snapshot.spans.to_vec();
            spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
            let roots: Vec<&SpanRecord> = spans
                .iter()
                .filter(|s| s.parent.is_none() || !spans.iter().any(|p| Some(p.id) == s.parent))
                .collect();
            for root in roots {
                write_subtree(w, &spans, root, 1)?;
            }
        }
        let r = &snapshot.report;
        if !r.counters.is_empty() {
            writeln!(w, "counters:")?;
            for c in &r.counters {
                writeln!(w, "  {:<48} {}", c.name, c.value)?;
            }
        }
        if !r.gauges.is_empty() {
            writeln!(w, "gauges:")?;
            for g in &r.gauges {
                writeln!(w, "  {:<48} {}", g.name, g.value)?;
            }
        }
        if !r.histograms.is_empty() {
            writeln!(w, "histograms:")?;
            for h in &r.histograms {
                writeln!(
                    w,
                    "  {:<48} count={} p50={} p95={} p99={} max={}",
                    h.name,
                    h.count,
                    fmt_seconds(h.p50),
                    fmt_seconds(h.p95),
                    fmt_seconds(h.p99),
                    fmt_seconds(h.max),
                )?;
            }
        }
        Ok(())
    }
}

fn write_subtree<W: Write>(
    w: &mut W,
    spans: &[SpanRecord],
    node: &SpanRecord,
    depth: usize,
) -> io::Result<()> {
    writeln!(
        w,
        "{}{} ({}){}",
        "  ".repeat(depth),
        node.name,
        fmt_seconds(node.duration_s),
        fmt_fields(&node.fields),
    )?;
    for child in spans.iter().filter(|s| s.parent == Some(node.id)) {
        write_subtree(w, spans, child, depth + 1)?;
    }
    Ok(())
}

/// JSON-lines trace exporter: one object per span (`"kind":"span"`)
/// and per event (`"kind":"event"`), spans sorted by start time.
pub struct JsonlSink<W: Write>(pub W);

fn render_line(v: &serde_json::Value) -> io::Result<String> {
    serde_json::to_string(v).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn fields_object(fields: &[(String, FieldValue)]) -> serde_json::Value {
    let mut obj = serde_json::Value::Object(Default::default());
    if let serde_json::Value::Object(map) = &mut obj {
        for (k, v) in fields {
            let jv = match v {
                FieldValue::Int(i) => json!(*i),
                FieldValue::Float(f) => json!(*f),
                FieldValue::Str(s) => json!(s),
                FieldValue::Bool(b) => json!(*b),
            };
            map.insert(k.clone(), jv);
        }
    }
    obj
}

impl<W: Write> Sink for JsonlSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let mut spans = snapshot.spans.to_vec();
        spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        for s in &spans {
            let line = json!({
                "kind": "span",
                "id": s.id,
                "parent": serde_json::to_value(&s.parent)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                "name": s.name,
                "thread": s.thread,
                "start_s": s.start_s,
                "duration_s": s.duration_s,
                "fields": fields_object(&s.fields),
            });
            writeln!(self.0, "{}", render_line(&line)?)?;
        }
        for e in &snapshot.events {
            let line = json!({
                "kind": "event",
                "span": serde_json::to_value(&e.span)
                    .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?,
                "name": e.name,
                "t_s": e.t_s,
                "fields": fields_object(&e.fields),
            });
            writeln!(self.0, "{}", render_line(&line)?)?;
        }
        Ok(())
    }
}

/// Prometheus text exposition of the registry (spans and events are
/// not exported — scrape formats carry metrics only).
///
/// Conformance notes: counters carry the conventional `_total` suffix,
/// every family gets `# HELP` and `# TYPE` lines, histograms are
/// exported as summaries with `quantile` labels, and label values /
/// help text are escaped per the exposition format.
pub struct PrometheusSink<W: Write>(pub W);

/// `frames_processed{camera="0"}` → `("frames_processed", `{camera="0"}`)`.
fn split_labels(rendered: &str) -> (&str, &str) {
    match rendered.find('{') {
        Some(i) => (&rendered[..i], &rendered[i..]),
        None => (rendered, ""),
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Appends `_total` unless the name already carries it.
fn counter_name(name: &str) -> String {
    if name.ends_with("_total") {
        name.to_owned()
    } else {
        format!("{name}_total")
    }
}

/// Escaping for `# HELP` text: backslash and line feed (double quotes
/// are legal in help text and stay as-is).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Help text for the pipeline's well-known instrument families; the
/// sink falls back to the metric name for instruments it doesn't know.
fn help_for(base: &str) -> Option<&'static str> {
    Some(match base {
        "frames_processed" => "Frames fully processed by a camera's stage-3 extractor",
        "faces_detected" => "Face detections accepted by a camera's extractor",
        "identity_misses" => "Detections the face recognizer could not attribute",
        "detections_dropped" => "Detections dropped as unattributable (no usable gaze)",
        "emotion_classifications" => "LBP+MLP emotion classifier invocations",
        "lookat_tests" => "Ordered participant pairs geometrically tested for looks",
        "ec_episodes" => "Eye-contact episodes detected over the recording",
        "metadata_inserts" => "Records inserted into the metadata repository",
        "session.frames_fused" => "Frames fused into look-at matrices by the sequencer",
        "session.frames_dropped" => "Frames shed by DropOldest backpressure, per camera",
        "session.reorder_evictions" => "Frames fused incomplete after the reorder window expired",
        "session.late_arrivals" => "Camera outputs arriving after their frame was already fused",
        "session.queue_depth" => "Bounded input queue occupancy, per camera (frames)",
        "session.reorder_occupancy" => "Frames pending in the sequencer's reorder window",
        "session.uptime_s" => "Seconds since the streaming session opened",
        "session.watermark_frame" => "Lowest frame index not yet fused (sequencer frontier)",
        "session.camera_alive" => "1 while the camera's worker thread is running, else 0",
        "pool.tasks" => "Tasks executed by the work-stealing pool for this domain",
        "pool.steals" => "Pool tasks taken from a sibling worker's deque",
        "pool.threads" => "Worker threads in the active pool",
        "pool.queue_depth" => "Tasks queued in the pool (injector + worker deques)",
        "observe.requests" => "HTTP requests served by the live observability plane",
        "observe.samples" => "Snapshot windows taken by the live sampler",
        "participants" => "Participants in the analyzed scenario",
        "cameras" => "Cameras in the acquisition rig",
        "recording_frames" => "Frames fused over the whole recording",
        "frame_extraction_seconds" => "Stage-3 wall-clock seconds per frame, per camera",
        "fusion_seconds" => "Stage-4 fusion + look-at wall-clock seconds per frame",
        "metadata_flush_seconds" => "Metadata log flush latency",
        _ => return None,
    })
}

impl<W: Write> Sink for PrometheusSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let w = &mut self.0;
        let r = &snapshot.report;
        let mut last_family: Option<String> = None;
        let mut family = |w: &mut W, raw: &str, exposed: &str, kind: &str| -> io::Result<()> {
            if last_family.as_deref() != Some(exposed) {
                let help = help_for(raw).unwrap_or(raw);
                writeln!(w, "# HELP dievent_{exposed} {}", escape_help(help))?;
                writeln!(w, "# TYPE dievent_{exposed} {kind}")?;
                last_family = Some(exposed.to_owned());
            }
            Ok(())
        };
        for c in &r.counters {
            let (raw, labels) = split_labels(&c.name);
            let name = counter_name(&sanitize(raw));
            family(w, raw, &name, "counter")?;
            writeln!(w, "dievent_{name}{labels} {}", c.value)?;
        }
        for g in &r.gauges {
            let (raw, labels) = split_labels(&g.name);
            let name = sanitize(raw);
            family(w, raw, &name, "gauge")?;
            writeln!(w, "dievent_{name}{labels} {}", g.value)?;
        }
        for h in &r.histograms {
            let (raw, labels) = split_labels(&h.name);
            let name = sanitize(raw);
            family(w, raw, &name, "summary")?;
            let base_labels = labels.trim_start_matches('{').trim_end_matches('}');
            let quantile = |q: &str, v: f64| {
                if base_labels.is_empty() {
                    format!("dievent_{name}{{quantile=\"{q}\"}} {v}")
                } else {
                    format!("dievent_{name}{{{base_labels},quantile=\"{q}\"}} {v}")
                }
            };
            writeln!(w, "{}", quantile("0.5", h.p50))?;
            writeln!(w, "{}", quantile("0.95", h.p95))?;
            writeln!(w, "{}", quantile("0.99", h.p99))?;
            writeln!(w, "dievent_{name}_sum{labels} {}", h.sum)?;
            writeln!(w, "dievent_{name}_count{labels} {}", h.count)?;
        }
        // Span aggregates exported as a pair of synthetic counters:
        // total seconds and completion count per span name.
        for s in &r.spans {
            let name = sanitize(&s.name);
            let seconds = format!("span_{name}_seconds_total");
            family(w, &s.name, &seconds, "counter")?;
            writeln!(w, "dievent_{seconds} {}", s.total_s)?;
            let count = format!("span_{name}_total");
            family(w, &s.name, &count, "counter")?;
            writeln!(w, "dievent_{count} {}", s.count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    fn sample() -> Telemetry {
        let t = Telemetry::enabled();
        {
            let mut run = t.span("run");
            run.set("frames", 40usize);
            let _child = t.span("stage.extraction");
            t.counter_with("frames_processed", &[("camera", "0")])
                .add(40);
            t.gauge("participants").set(4.0);
            t.histogram("frame_extraction_seconds").observe(0.002);
        }
        t
    }

    #[test]
    fn tree_dump_shows_hierarchy_and_metrics() {
        let text = sample().render_tree();
        assert!(text.contains("run ("), "{text}");
        assert!(
            text.contains("    stage.extraction ("),
            "nested deeper: {text}"
        );
        assert!(text.contains("frames=40"));
        assert!(text.contains("frames_processed{camera=\"0\"}"));
        assert!(text.contains("p50="));
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let text = sample().trace_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "two spans: {text}");
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["kind"], serde_json::json!("span"));
            assert!(v["duration_s"].as_f64().unwrap() >= 0.0);
        }
    }

    #[test]
    fn jsonl_round_trips_the_snapshot() {
        let t = sample();
        t.event("frame.dropped");
        let snapshot = t.snapshot();
        let text = t.trace_jsonl();
        let values: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(values.len(), snapshot.spans.len() + snapshot.events.len());
        // Every exported span is reconstructible field-for-field.
        for record in &snapshot.spans {
            let line = values
                .iter()
                .find(|v| v["kind"].as_str() == Some("span") && v["id"].as_u64() == Some(record.id))
                .unwrap_or_else(|| panic!("span {} missing from trace", record.id));
            assert_eq!(line["name"].as_str(), Some(record.name.as_str()));
            assert_eq!(line["parent"].as_u64(), record.parent);
            assert_eq!(line["start_s"].as_f64(), Some(record.start_s));
            assert_eq!(line["duration_s"].as_f64(), Some(record.duration_s));
        }
        let event = values
            .iter()
            .find(|v| v["kind"].as_str() == Some("event"))
            .expect("event line present");
        assert_eq!(event["name"].as_str(), Some("frame.dropped"));
    }

    #[test]
    fn prometheus_exposition_has_types_and_values() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE dievent_frames_processed_total counter"));
        assert!(text.contains("dievent_frames_processed_total{camera=\"0\"} 40"));
        assert!(text.contains("# HELP dievent_frames_processed_total "));
        assert!(text.contains("# TYPE dievent_participants gauge"));
        assert!(text.contains("# TYPE dievent_frame_extraction_seconds summary"));
        assert!(text.contains("quantile=\"0.95\""));
        assert!(text.contains("dievent_frame_extraction_seconds_count 1"));
        assert!(text.contains("dievent_span_run_seconds_total"));
        assert!(text.contains("dievent_span_run_total 1"));
    }

    #[test]
    fn prometheus_exposition_escapes_label_values() {
        let t = Telemetry::enabled();
        t.counter_with("odd", &[("path", "a\\b\"c\nd")]).add(1);
        let text = t.render_prometheus();
        assert!(
            text.contains("dievent_odd_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "{text}"
        );
        // The exposition stays one-sample-per-line despite the newline
        // in the label value.
        assert!(text.lines().all(|l| !l.is_empty()), "{text}");
    }
}
