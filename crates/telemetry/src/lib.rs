//! Observability for the DiEvent pipeline.
//!
//! Three pieces, designed to be cheap enough to leave on:
//!
//! * **Tracing** ([`Telemetry::span`]) — nested wall-clock spans with
//!   key-value fields. Nesting is tracked per thread; cross-thread
//!   children (camera workers under the extraction stage) attach via
//!   [`Telemetry::span_under`].
//! * **Metrics** ([`Telemetry::counter`], [`Telemetry::gauge`],
//!   [`Telemetry::histogram`]) — named instruments in a process-local
//!   registry. Histograms are log-scale with p50/p95/p99 summaries.
//! * **Sinks** ([`sink`]) — a human-readable tree dump, a JSON-lines
//!   trace exporter, and a Prometheus-style text exposition, all fed
//!   from one [`Snapshot`].
//!
//! A [`Telemetry`] handle is a cheap clone (one `Arc`). A *disabled*
//! handle ([`Telemetry::disabled`]) carries no allocation at all:
//! every instrument it hands out is a no-op, so instrumented code pays
//! one branch per operation.
//!
//! ```
//! use dievent_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled();
//! {
//!     let mut span = telemetry.span("stage.extraction");
//!     span.set("cameras", 2i64);
//!     telemetry.counter("frames_processed").add(40);
//!     telemetry.histogram("frame_extraction_seconds").observe(0.0021);
//! }
//! let report = telemetry.report();
//! assert_eq!(report.counter("frames_processed"), Some(40));
//! ```

#![forbid(unsafe_code)]

mod http;
pub mod lineage;
pub mod live;
mod metrics;
mod report;
pub mod sink;
mod span;

pub use http::{validate_exposition, ExpositionStats};
pub use lineage::{
    CameraLane, FrameWaterfall, LineageReport, LineageStageSummary, LineageSummary, LineageTracer,
};
pub use live::{
    collapsed_stacks, span_profile, LiveOptions, LivePlane, PlaneProbe, ProfileNode, RateEntry,
    RateWindow, WindowQuantiles,
};
pub use metrics::{Counter, Gauge, Histogram};
pub use report::{CounterEntry, GaugeEntry, HistogramSummary, SpanSummary, TelemetryReport};
pub use sink::{JsonlSink, PrometheusSink, Sink, Snapshot, TreeSink};
pub use span::{EventRecord, FieldValue, SpanGuard, SpanRecord};

use metrics::Registry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

pub(crate) struct Inner {
    epoch: Instant,
    next_span_id: AtomicU64,
    /// Completed spans, in completion order.
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
    /// Per-thread stack of open span ids (for implicit nesting).
    stacks: Mutex<HashMap<ThreadId, Vec<u64>>>,
    /// Spans currently open, by id — the live profiler resolves parent
    /// chains through here while ancestors are still running.
    open: Mutex<HashMap<u64, OpenSpan>>,
    registry: Registry,
}

/// Name/parent/start of a span that has not completed yet.
#[derive(Debug, Clone)]
pub(crate) struct OpenSpan {
    pub(crate) name: String,
    pub(crate) parent: Option<u64>,
    pub(crate) start_s: f64,
}

impl Inner {
    pub(crate) fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Copy of the completed spans (for the live profiler).
    pub(crate) fn completed_spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    fn current_span(&self) -> Option<u64> {
        self.stacks
            .lock()
            .get(&std::thread::current().id())
            .and_then(|s| s.last().copied())
    }

    fn push_span(&self, id: u64) {
        self.stacks
            .lock()
            .entry(std::thread::current().id())
            .or_default()
            .push(id);
    }

    fn pop_span(&self, id: u64) {
        let mut stacks = self.stacks.lock();
        if let Some(stack) = stacks.get_mut(&std::thread::current().id()) {
            // Guards drop LIFO within a thread, so this is normally the
            // top; tolerate out-of-order drops by removing the match.
            if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                stack.remove(pos);
            }
        }
    }

    fn close_span(&self, id: u64) {
        self.open.lock().remove(&id);
    }

    /// Copy of the currently open spans (for the live profiler).
    pub(crate) fn open_spans(&self) -> Vec<(u64, OpenSpan)> {
        self.open
            .lock()
            .iter()
            .map(|(id, s)| (*id, s.clone()))
            .collect()
    }
}

/// A handle to one telemetry domain. Clone freely; all clones share
/// the same spans, events, and registry.
///
/// A handle may carry *base labels* (see [`Telemetry::with_labels`]):
/// every metric it creates gets those labels merged in ahead of the
/// call-site labels, while still landing in the shared registry. This
/// is how a multi-tenant server stamps each session's gauges with a
/// `tenant` label without giving each tenant its own registry.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    /// Labels prepended to every instrument this handle creates.
    base: Option<Arc<Vec<(String, String)>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A live telemetry domain.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_span_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                events: Mutex::new(Vec::new()),
                stacks: Mutex::new(HashMap::new()),
                open: Mutex::new(HashMap::new()),
                registry: Registry::default(),
            })),
            base: None,
        }
    }

    /// A no-op handle: spans, events, and every instrument it hands
    /// out do nothing. This is the `Default`.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            base: None,
        }
    }

    /// A handle sharing this one's registry whose metrics all carry
    /// `labels` in addition to any labels given at the call site (and
    /// any base labels this handle already carries — labels accumulate
    /// across chained calls). Callers must not repeat a key already in
    /// the base set: label keys are not deduplicated.
    ///
    /// Spans and events are unaffected; only counters, gauges, and
    /// histograms pick up the base labels.
    pub fn with_labels(&self, labels: &[(&str, &str)]) -> Telemetry {
        if self.inner.is_none() || labels.is_empty() {
            return self.clone();
        }
        let mut base: Vec<(String, String)> = self.base.as_deref().cloned().unwrap_or_default();
        base.extend(
            labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned())),
        );
        Telemetry {
            inner: self.inner.clone(),
            base: Some(Arc::new(base)),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub(crate) fn inner_arc(&self) -> Option<Arc<Inner>> {
        self.inner.clone()
    }

    /// Opens a span nested under the current thread's innermost open
    /// span. The span closes (and records its duration) when the
    /// returned guard drops.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        let parent = self.inner.as_ref().and_then(|i| i.current_span());
        self.span_under(name, parent)
    }

    /// Opens a span with an explicit parent — the escape hatch for
    /// cross-thread nesting, where the implicit per-thread stack can't
    /// see the parent. `parent` is typically [`SpanGuard::id`] of a
    /// span owned by another thread.
    pub fn span_under(&self, name: impl Into<String>, parent: Option<u64>) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => {
                let id = inner.next_span_id.fetch_add(1, Ordering::Relaxed);
                let name = name.into();
                let start_s = inner.now_s();
                inner.push_span(id);
                inner.open.lock().insert(
                    id,
                    OpenSpan {
                        name: name.clone(),
                        parent,
                        start_s,
                    },
                );
                SpanGuard::live(Arc::clone(inner), id, parent, name, start_s)
            }
        }
    }

    /// Records a point-in-time event attached to the current thread's
    /// innermost open span (or free-standing when none is open).
    pub fn event(&self, name: impl Into<String>) {
        if let Some(inner) = &self.inner {
            let record = EventRecord {
                span: inner.current_span(),
                name: name.into(),
                t_s: inner.now_s(),
                fields: Vec::new(),
            };
            inner.events.lock().push(record);
        }
    }

    /// A named monotonic counter (get-or-create).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// A labeled counter, e.g. `counter_with("frames_processed",
    /// &[("camera", "0")])`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => match self.merged_labels(labels) {
                None => inner.registry.counter(name, labels),
                Some(merged) => inner.registry.counter(name, &as_label_refs(&merged)),
            },
        }
    }

    /// A named gauge (get-or-create).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// A labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            None => Gauge::noop(),
            Some(inner) => match self.merged_labels(labels) {
                None => inner.registry.gauge(name, labels),
                Some(merged) => inner.registry.gauge(name, &as_label_refs(&merged)),
            },
        }
    }

    /// A named log-scale histogram (get-or-create).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// A labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.inner {
            None => Histogram::noop(),
            Some(inner) => match self.merged_labels(labels) {
                None => inner.registry.histogram(name, labels),
                Some(merged) => inner.registry.histogram(name, &as_label_refs(&merged)),
            },
        }
    }

    /// Base labels + call-site labels, owned; `None` when this handle
    /// carries no base labels (the common case — avoids allocating).
    fn merged_labels(&self, labels: &[(&str, &str)]) -> Option<Vec<(String, String)>> {
        let base = self.base.as_deref()?;
        let mut merged = base.clone();
        merged.extend(
            labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned())),
        );
        Some(merged)
    }

    /// A point-in-time copy of everything recorded so far: completed
    /// spans, events, and metric values. Open spans are not included.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            None => Snapshot::default(),
            Some(inner) => {
                // Take each lock in its own statement: `report()` locks
                // `spans` again, and the guards are not reentrant.
                let spans = inner.spans.lock().clone();
                let events = inner.events.lock().clone();
                let report = self.report();
                Snapshot {
                    spans,
                    events,
                    report,
                }
            }
        }
    }

    /// The aggregated metrics + span-summary view (serializable; this
    /// is what [`EventAnalysis`](../dievent_core) carries).
    pub fn report(&self) -> TelemetryReport {
        match &self.inner {
            None => TelemetryReport::default(),
            Some(inner) => report::build(&inner.registry, &inner.spans.lock()),
        }
    }

    /// Renders the span tree + registry summary as human-readable text
    /// (the [`TreeSink`] output).
    pub fn render_tree(&self) -> String {
        self.render_with(TreeSink(Vec::new()))
    }

    /// Renders the trace as JSON lines (one span or event per line).
    pub fn trace_jsonl(&self) -> String {
        self.render_with(JsonlSink(Vec::new()))
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.render_with(PrometheusSink(Vec::new()))
    }

    fn render_with<S: Sink + AsBytes>(&self, mut sink: S) -> String {
        let snapshot = self.snapshot();
        // Vec<u8>-backed sinks cannot fail; an error would only truncate
        // the rendered output, never corrupt registry state.
        let _ = sink.export(&snapshot);
        String::from_utf8_lossy(&sink.into_bytes()).into_owned()
    }
}

/// Borrowed view of owned label pairs, as the registry expects them.
fn as_label_refs(labels: &[(String, String)]) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

/// Internal: sinks over `Vec<u8>` that can give their buffer back.
trait AsBytes {
    fn into_bytes(self) -> Vec<u8>;
}

impl AsBytes for TreeSink<Vec<u8>> {
    fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

impl AsBytes for JsonlSink<Vec<u8>> {
    fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

impl AsBytes for PrometheusSink<Vec<u8>> {
    fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let mut span = t.span("nothing");
        span.set("k", 1i64);
        t.counter("c").incr();
        t.gauge("g").set(5.0);
        t.histogram("h").observe(1.0);
        t.event("e");
        drop(span);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(t.report(), TelemetryReport::default());
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.counter("shared").add(3);
        u.counter("shared").add(4);
        assert_eq!(t.report().counter("shared"), Some(7));
    }

    #[test]
    fn base_labels_merge_into_shared_registry() {
        let t = Telemetry::enabled();
        let tenant = t.with_labels(&[("tenant", "7")]);
        // Same name + same final label set → same underlying counter.
        tenant.counter_with("frames", &[("camera", "0")]).add(2);
        t.counter_with("frames", &[("camera", "0"), ("tenant", "7")])
            .add(3);
        assert_eq!(
            t.counter_with("frames", &[("tenant", "7"), ("camera", "0")])
                .get(),
            5,
            "base labels and call-site labels land on one instrument"
        );
        // Chained with_labels accumulates.
        let deep = tenant.with_labels(&[("camera", "1")]);
        deep.counter("frames").incr();
        assert_eq!(
            t.counter_with("frames", &[("tenant", "7"), ("camera", "1")])
                .get(),
            1
        );
        // The exposition carries the merged labels.
        let text = t.render_prometheus();
        assert!(
            text.contains("tenant=\"7\""),
            "rendered exposition must carry base labels:\n{text}"
        );
        // Disabled handles stay inert through with_labels.
        let d = Telemetry::disabled().with_labels(&[("tenant", "1")]);
        assert!(!d.is_enabled());
    }

    #[test]
    fn events_attach_to_open_span() {
        let t = Telemetry::enabled();
        let outer = t.span("outer");
        let outer_id = outer.id();
        t.event("inside");
        drop(outer);
        t.event("after");
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].span, outer_id);
        assert_eq!(snap.events[1].span, None);
    }
}
