//! Span and event records plus the RAII span guard.

use crate::Inner;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// A signed integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Int(v) => write!(f, "{v}"),
            FieldValue::Float(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Int(v as i64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::Int(v as i64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id within the telemetry domain (assigned at open).
    pub id: u64,
    /// The enclosing span, if any.
    pub parent: Option<u64>,
    /// The span's name (e.g. `stage.extraction`).
    pub name: String,
    /// Debug identifier of the thread the span ran on.
    pub thread: String,
    /// Open time, seconds since the domain's epoch.
    pub start_s: f64,
    /// Wall-clock duration in seconds.
    pub duration_s: f64,
    /// Key-value fields set on the span.
    pub fields: Vec<(String, FieldValue)>,
}

/// One point-in-time event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// The span the event occurred inside, if any.
    pub span: Option<u64>,
    /// The event's name.
    pub name: String,
    /// Event time, seconds since the domain's epoch.
    pub t_s: f64,
    /// Key-value fields set on the event.
    pub fields: Vec<(String, FieldValue)>,
}

/// RAII guard for an open span: records the span (with its wall-clock
/// duration) into the telemetry domain when dropped.
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_s: f64,
    started: std::time::Instant,
    fields: Vec<(String, FieldValue)>,
}

impl SpanGuard {
    pub(crate) fn noop() -> Self {
        SpanGuard {
            inner: None,
            id: 0,
            parent: None,
            name: String::new(),
            start_s: 0.0,
            started: std::time::Instant::now(),
            fields: Vec::new(),
        }
    }

    pub(crate) fn live(
        inner: Arc<Inner>,
        id: u64,
        parent: Option<u64>,
        name: String,
        start_s: f64,
    ) -> Self {
        SpanGuard {
            inner: Some(inner),
            id,
            parent,
            name,
            start_s,
            started: std::time::Instant::now(),
            fields: Vec::new(),
        }
    }

    /// The span's id, for explicit cross-thread parenting via
    /// [`Telemetry::span_under`](crate::Telemetry::span_under).
    /// `None` on a disabled handle.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|_| self.id)
    }

    /// Attaches a key-value field to the span.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<FieldValue>) {
        if self.inner.is_some() {
            self.fields.push((key.into(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.pop_span(self.id);
            inner.close_span(self.id);
            let record = SpanRecord {
                id: self.id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                thread: format!("{:?}", std::thread::current().id()),
                start_s: self.start_s,
                duration_s: self.started.elapsed().as_secs_f64(),
                fields: std::mem::take(&mut self.fields),
            };
            inner.spans.lock().push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn spans_nest_on_one_thread() {
        let t = Telemetry::enabled();
        let outer = t.span("outer");
        let outer_id = outer.id().unwrap();
        {
            let inner = t.span("inner");
            assert_ne!(inner.id().unwrap(), outer_id);
        }
        drop(outer);
        let spans = t.snapshot().spans;
        assert_eq!(spans.len(), 2);
        // Completion order: inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].parent, Some(outer_id));
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].parent, None);
        assert!(spans[1].start_s <= spans[0].start_s);
        assert!(spans[1].duration_s >= spans[0].duration_s);
    }

    #[test]
    fn explicit_parenting_crosses_threads() {
        let t = Telemetry::enabled();
        let stage = t.span("stage");
        let stage_id = stage.id();
        let handles: Vec<_> = (0..2)
            .map(|c| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let mut worker = t.span_under("worker", stage_id);
                    worker.set("camera", c as i64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(stage);
        let spans = t.snapshot().spans;
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        for w in &workers {
            assert_eq!(w.parent, stage_id);
        }
        let cameras: Vec<i64> = workers
            .iter()
            .flat_map(|w| w.fields.iter())
            .filter(|(k, _)| k == "camera")
            .map(|(_, v)| match v {
                crate::FieldValue::Int(i) => *i,
                _ => panic!("camera field must be an int"),
            })
            .collect();
        assert_eq!(cameras.len(), 2);
        assert!(cameras.contains(&0) && cameras.contains(&1));
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let t = Telemetry::enabled();
        {
            let _run = t.span("run");
            for _ in 0..3 {
                let _child = t.span("child");
            }
        }
        let spans = t.snapshot().spans;
        let run_id = spans.iter().find(|s| s.name == "run").unwrap().id;
        let children: Vec<_> = spans.iter().filter(|s| s.name == "child").collect();
        assert_eq!(children.len(), 3);
        assert!(children.iter().all(|c| c.parent == Some(run_id)));
        // Siblings open in order.
        assert!(children.windows(2).all(|w| w[0].start_s <= w[1].start_s));
    }
}
