//! Per-frame causal lineage tracing with tail-latency attribution.
//!
//! Aggregate metrics answer "how is the pipeline doing"; lineage
//! answers "where did *this* frame spend its time". A
//! [`LineageTracer`] stamps every frame at ingest and again at each
//! stage boundary — camera-channel enqueue, extraction start/end (per
//! camera), fusion start/end — all on one monotonic clock, so each
//! fused frame yields a [`FrameWaterfall`] that cleanly splits its
//! end-to-end latency into **queue-wait** (channel + pool backlog),
//! **compute** (extraction, fusion), and **reorder-hold** (time parked
//! in the sequencer waiting for sibling cameras or the watermark).
//!
//! Storage is bounded: per-stage latency histograms (registered in the
//! owning [`Telemetry`] domain as `lineage.*_seconds`, so they ride
//! `/metrics` and the rate windows for free), a fixed-size reservoir
//! sample of full waterfalls (deterministically seeded, uniform over
//! the run), and an always-kept set of slowest-frame exemplars — the
//! p99/max tail is never sampled away. A frame that can never fuse
//! (every lane shed by backpressure, or stranded behind the reorder
//! frontier) is retired when the frontier passes it, so the in-flight
//! table cannot grow without bound.
//!
//! Like every instrument in this crate, a disabled tracer
//! ([`LineageTracer::disabled`]) is a `None` behind one branch per
//! call — instrumented code pays nothing when tracing is off.
//!
//! ```
//! use dievent_telemetry::{LineageTracer, Telemetry};
//!
//! let telemetry = Telemetry::enabled();
//! let tracer = LineageTracer::enabled(&telemetry, 1, 64);
//! tracer.ingest(0, 0);
//! tracer.extract_start(0, 0);
//! tracer.extract_end(0, 0);
//! let t = tracer.now_s();
//! tracer.fused(0, t, tracer.now_s());
//! let report = tracer.report().expect("enabled tracer reports");
//! assert_eq!(report.summary.frames_traced, 1);
//! assert_eq!(report.waterfalls.len(), 1);
//! ```

use crate::{Histogram, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How many slowest-frame waterfalls are always retained, independent
/// of reservoir sampling. Covers the p99 exemplar for runs up to ~800
/// frames and the max for any run.
const EXEMPLARS: usize = 8;

/// One camera's timeline through extraction for a single frame, in
/// seconds on the tracer's clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraLane {
    /// Camera index.
    pub camera: usize,
    /// When the frame entered the camera's channel (or the inline
    /// stage) — the ingest stamp.
    pub enqueue_s: f64,
    /// When extraction of this frame actually began.
    pub start_s: f64,
    /// When the camera's output for this frame was fully produced.
    pub end_s: f64,
}

/// The complete per-stage waterfall of one fused frame.
///
/// Invariant (asserted by `tests/frame_lineage.rs`): within every lane
/// `enqueue_s <= start_s <= end_s`, every lane's `end_s <=
/// fuse_start_s <= fuse_end_s`, and the attribution fields partition
/// `total_s` — all stamps come from one monotonic clock and each
/// boundary happens-before the next through a channel or join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameWaterfall {
    /// Frame index.
    pub frame: u64,
    /// Per-camera extraction timelines (only lanes that completed;
    /// a lane shed by backpressure is absent).
    pub lanes: Vec<CameraLane>,
    /// When fusion of this frame began.
    pub fuse_start_s: f64,
    /// When fusion of this frame completed.
    pub fuse_end_s: f64,
    /// Earliest lane enqueue — when the frame entered the pipeline.
    pub ingest_s: f64,
    /// End-to-end latency: `fuse_end_s - ingest_s`.
    pub total_s: f64,
    /// Worst per-lane wait between enqueue and extraction start.
    pub queue_wait_s: f64,
    /// Worst per-lane extraction compute time.
    pub extract_s: f64,
    /// Time parked in the reorder window after the last lane finished.
    pub reorder_hold_s: f64,
    /// Fusion compute time.
    pub fuse_s: f64,
}

/// Latency distribution of one attribution stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageStageSummary {
    /// Stage name: `queue_wait`, `extract`, `reorder_hold`, `fuse`, or
    /// `total`.
    pub stage: String,
    /// Frames observed.
    pub count: u64,
    /// Mean seconds.
    pub mean_s: f64,
    /// Median seconds (log-bucket resolution).
    pub p50_s: f64,
    /// 95th percentile seconds.
    pub p95_s: f64,
    /// 99th percentile seconds.
    pub p99_s: f64,
    /// Exact maximum seconds.
    pub max_s: f64,
}

/// Aggregate stage-attribution summary of a traced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageSummary {
    /// Frames that fused and produced a waterfall.
    pub frames_traced: u64,
    /// Camera lanes shed by backpressure (`DropOldest`) before
    /// extraction.
    pub lanes_discarded: u64,
    /// Frames retired without ever fusing (every lane shed or
    /// stranded behind the frontier).
    pub frames_incomplete: u64,
    /// Frames still in flight at report time — 0 after a clean
    /// `finish()`.
    pub in_flight: usize,
    /// Per-stage latency breakdown: queue-wait vs compute
    /// (extract + fuse) vs reorder-hold, plus end-to-end total.
    pub stages: Vec<LineageStageSummary>,
}

impl LineageSummary {
    /// The named stage's distribution, if present.
    pub fn stage(&self, name: &str) -> Option<&LineageStageSummary> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

/// Everything a traced run exports: the stage-attribution summary, the
/// always-kept slowest-frame exemplars, and the reservoir of full
/// waterfalls (frame order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageReport {
    /// Aggregate per-stage breakdown.
    pub summary: LineageSummary,
    /// Slowest frames by end-to-end latency, slowest first — the p99
    /// and max tail, never sampled away.
    pub exemplars: Vec<FrameWaterfall>,
    /// Uniform reservoir sample of waterfalls, in frame order.
    pub waterfalls: Vec<FrameWaterfall>,
}

impl LineageReport {
    /// Renders the report as JSON lines: one `summary` object, then
    /// one object per waterfall (exemplars flagged). The format the
    /// CLI's `--trace-lineage FILE` writes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |value: serde_json::Value| {
            if let Ok(line) = serde_json::to_string(&value) {
                out.push_str(&line);
                out.push('\n');
            }
        };
        push(serde_json::json!({ "kind": "summary", "summary": &self.summary }));
        for w in &self.exemplars {
            push(serde_json::json!({ "kind": "exemplar", "waterfall": w }));
        }
        for w in &self.waterfalls {
            push(serde_json::json!({ "kind": "waterfall", "waterfall": w }));
        }
        out
    }
}

/// An in-flight lane: enqueue always stamped, start/end filled as the
/// frame progresses.
#[derive(Debug, Clone, Copy)]
struct LaneStamp {
    enqueue_s: f64,
    start_s: Option<f64>,
    end_s: Option<f64>,
}

struct LineageState {
    /// frame → one optional stamp per camera. Entries are created by
    /// `ingest` only and removed by `fused` or `retire_below`.
    in_flight: HashMap<u64, Vec<Option<LaneStamp>>>,
    frames_traced: u64,
    lanes_discarded: u64,
    frames_incomplete: u64,
    /// Waterfalls offered to the reservoir so far.
    offered: u64,
    reservoir: Vec<FrameWaterfall>,
    /// Sorted by `total_s` descending, capped at [`EXEMPLARS`].
    exemplars: Vec<FrameWaterfall>,
    /// xorshift64 state — deterministic, so the reservoir a given
    /// frame sequence produces is reproducible.
    rng: u64,
}

struct LineageCore {
    telemetry: Telemetry,
    epoch: Instant,
    cameras: usize,
    reservoir_len: usize,
    queue_wait: Histogram,
    extract: Histogram,
    reorder_hold: Histogram,
    fuse: Histogram,
    total: Histogram,
    state: Mutex<LineageState>,
}

/// Per-frame lineage tracer handle. Cheap to clone (one `Arc`); a
/// disabled handle ([`LineageTracer::disabled`]) is `None` and every
/// operation on it is a single branch.
#[derive(Clone, Default)]
pub struct LineageTracer(Option<Arc<LineageCore>>);

impl std::fmt::Debug for LineageTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineageTracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl LineageTracer {
    /// A live tracer for `cameras` lanes, retaining at most
    /// `reservoir_len` full waterfalls (plus the slowest-frame
    /// exemplars, which are always kept). The per-stage histograms are
    /// registered in `telemetry`'s registry as `lineage.*_seconds`.
    pub fn enabled(telemetry: &Telemetry, cameras: usize, reservoir_len: usize) -> Self {
        LineageTracer(Some(Arc::new(LineageCore {
            telemetry: telemetry.clone(),
            epoch: Instant::now(),
            cameras: cameras.max(1),
            reservoir_len: reservoir_len.max(1),
            queue_wait: telemetry.histogram("lineage.queue_wait_seconds"),
            extract: telemetry.histogram("lineage.extract_seconds"),
            reorder_hold: telemetry.histogram("lineage.reorder_hold_seconds"),
            fuse: telemetry.histogram("lineage.fuse_seconds"),
            total: telemetry.histogram("lineage.total_seconds"),
            state: Mutex::new(LineageState {
                in_flight: HashMap::new(),
                frames_traced: 0,
                lanes_discarded: 0,
                frames_incomplete: 0,
                offered: 0,
                reservoir: Vec::new(),
                exemplars: Vec::new(),
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
        })))
    }

    /// A no-op handle: every stamp is a single `None` branch. This is
    /// the `Default`.
    pub fn disabled() -> Self {
        LineageTracer(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Seconds since the tracer's epoch (0 on a disabled handle). The
    /// clock every stamp shares.
    pub fn now_s(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| c.epoch.elapsed().as_secs_f64())
    }

    /// Stamps camera `camera`'s lane of `frame` at channel enqueue —
    /// the only call that creates an in-flight entry.
    pub fn ingest(&self, camera: usize, frame: u64) {
        let Some(core) = &self.0 else { return };
        let now = core.epoch.elapsed().as_secs_f64();
        let mut state = core.state.lock();
        let cameras = core.cameras;
        let lanes = state
            .in_flight
            .entry(frame)
            .or_insert_with(|| vec![None; cameras]);
        if let Some(slot) = lanes.get_mut(camera) {
            *slot = Some(LaneStamp {
                enqueue_s: now,
                start_s: None,
                end_s: None,
            });
        }
    }

    /// Stamps the start of extraction for camera `camera`'s lane.
    /// A lane never ingested (or already discarded/retired) is left
    /// untouched — stamps cannot resurrect a dead entry.
    pub fn extract_start(&self, camera: usize, frame: u64) {
        self.stamp(camera, frame, |lane, now| {
            if lane.start_s.is_none() {
                lane.start_s = Some(now);
            }
        });
    }

    /// Stamps the end of extraction (the camera's output is fully
    /// produced) for camera `camera`'s lane.
    pub fn extract_end(&self, camera: usize, frame: u64) {
        self.stamp(camera, frame, |lane, now| {
            if lane.end_s.is_none() {
                lane.end_s = Some(now);
            }
        });
    }

    fn stamp(&self, camera: usize, frame: u64, apply: impl FnOnce(&mut LaneStamp, f64)) {
        let Some(core) = &self.0 else { return };
        let now = core.epoch.elapsed().as_secs_f64();
        let mut state = core.state.lock();
        if let Some(lane) = state
            .in_flight
            .get_mut(&frame)
            .and_then(|lanes| lanes.get_mut(camera))
            .and_then(Option::as_mut)
        {
            apply(lane, now);
        }
    }

    /// Marks camera `camera`'s lane of `frame` as shed by backpressure
    /// (`DropOldest` evicted it before extraction). The lane is
    /// cleared; the frame may still fuse from its other lanes.
    pub fn discard(&self, camera: usize, frame: u64) {
        let Some(core) = &self.0 else { return };
        let mut state = core.state.lock();
        if let Some(slot) = state
            .in_flight
            .get_mut(&frame)
            .and_then(|lanes| lanes.get_mut(camera))
        {
            if slot.take().is_some() {
                state.lanes_discarded += 1;
            }
        }
    }

    /// Completes `frame`: removes its in-flight entry, builds the
    /// waterfall from lanes that finished extraction, feeds the stage
    /// histograms, and offers the waterfall to the reservoir and the
    /// exemplar set. `fuse_start_s`/`fuse_end_s` bracket the fusion
    /// compute (from [`now_s`](LineageTracer::now_s)).
    pub fn fused(&self, frame: u64, fuse_start_s: f64, fuse_end_s: f64) {
        let Some(core) = &self.0 else { return };
        let mut state = core.state.lock();
        let Some(stamps) = state.in_flight.remove(&frame) else {
            return;
        };
        let lanes: Vec<CameraLane> = stamps
            .into_iter()
            .enumerate()
            .filter_map(|(camera, stamp)| {
                let stamp = stamp?;
                match (stamp.start_s, stamp.end_s) {
                    (Some(start_s), Some(end_s)) => Some(CameraLane {
                        camera,
                        enqueue_s: stamp.enqueue_s,
                        start_s,
                        end_s,
                    }),
                    _ => None,
                }
            })
            .collect();
        if lanes.is_empty() {
            state.frames_incomplete += 1;
            return;
        }
        let ingest_s = lanes
            .iter()
            .map(|l| l.enqueue_s)
            .fold(f64::INFINITY, f64::min);
        let queue_wait_s = lanes
            .iter()
            .map(|l| l.start_s - l.enqueue_s)
            .fold(0.0, f64::max);
        let extract_s = lanes
            .iter()
            .map(|l| l.end_s - l.start_s)
            .fold(0.0, f64::max);
        let last_end = lanes
            .iter()
            .map(|l| l.end_s)
            .fold(f64::NEG_INFINITY, f64::max);
        let waterfall = FrameWaterfall {
            frame,
            lanes,
            fuse_start_s,
            fuse_end_s,
            ingest_s,
            total_s: fuse_end_s - ingest_s,
            queue_wait_s,
            extract_s,
            reorder_hold_s: fuse_start_s - last_end,
            fuse_s: fuse_end_s - fuse_start_s,
        };
        core.queue_wait.observe(waterfall.queue_wait_s.max(0.0));
        core.extract.observe(waterfall.extract_s.max(0.0));
        core.reorder_hold.observe(waterfall.reorder_hold_s.max(0.0));
        core.fuse.observe(waterfall.fuse_s.max(0.0));
        core.total.observe(waterfall.total_s.max(0.0));
        state.frames_traced += 1;
        offer_exemplar(&mut state.exemplars, &waterfall);
        offer_reservoir(&mut state, core.reservoir_len, waterfall);
    }

    /// Retires every in-flight frame below `frontier` — frames the
    /// sequencer has moved past can never fuse, and without this sweep
    /// their entries would accumulate for the life of the run.
    pub fn retire_below(&self, frontier: u64) {
        let Some(core) = &self.0 else { return };
        let mut state = core.state.lock();
        let before = state.in_flight.len();
        state.in_flight.retain(|&frame, _| frame >= frontier);
        state.frames_incomplete += (before - state.in_flight.len()) as u64;
    }

    /// Frames currently in flight (0 on a disabled handle). A cleanly
    /// finished session leaves none.
    pub fn in_flight(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |c| c.state.lock().in_flight.len())
    }

    /// Builds the stage-attribution report: summary, slowest-frame
    /// exemplars, and the reservoir of waterfalls (frame order).
    /// `None` on a disabled handle.
    pub fn report(&self) -> Option<LineageReport> {
        let core = self.0.as_ref()?;
        let _span = core.telemetry.span("lineage.report");
        let state = core.state.lock();
        let stage = |name: &str, h: &Histogram| LineageStageSummary {
            stage: name.to_owned(),
            count: h.count(),
            mean_s: h.mean(),
            p50_s: h.quantile(0.50),
            p95_s: h.quantile(0.95),
            p99_s: h.quantile(0.99),
            max_s: h.max(),
        };
        let mut waterfalls = state.reservoir.clone();
        waterfalls.sort_by_key(|w| w.frame);
        Some(LineageReport {
            summary: LineageSummary {
                frames_traced: state.frames_traced,
                lanes_discarded: state.lanes_discarded,
                frames_incomplete: state.frames_incomplete,
                in_flight: state.in_flight.len(),
                stages: vec![
                    stage("queue_wait", &core.queue_wait),
                    stage("extract", &core.extract),
                    stage("reorder_hold", &core.reorder_hold),
                    stage("fuse", &core.fuse),
                    stage("total", &core.total),
                ],
            },
            exemplars: state.exemplars.clone(),
            waterfalls,
        })
    }
}

/// Keeps the slowest [`EXEMPLARS`] waterfalls, sorted slowest first.
fn offer_exemplar(exemplars: &mut Vec<FrameWaterfall>, w: &FrameWaterfall) {
    if exemplars.len() >= EXEMPLARS
        && exemplars
            .last()
            .is_some_and(|slowest_kept| w.total_s <= slowest_kept.total_s)
    {
        return;
    }
    let at = exemplars
        .iter()
        .position(|e| e.total_s < w.total_s)
        .unwrap_or(exemplars.len());
    exemplars.insert(at, w.clone());
    exemplars.truncate(EXEMPLARS);
}

/// Algorithm-R reservoir sampling with a deterministic xorshift64
/// stream: uniform over all offered waterfalls, bounded at
/// `reservoir_len`.
fn offer_reservoir(state: &mut LineageState, reservoir_len: usize, w: FrameWaterfall) {
    state.offered += 1;
    if state.reservoir.len() < reservoir_len {
        state.reservoir.push(w);
        return;
    }
    let j = (xorshift64(&mut state.rng) % state.offered) as usize;
    if j < reservoir_len {
        state.reservoir[j] = w;
    }
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_one(tracer: &LineageTracer, camera: usize, frame: u64) {
        tracer.ingest(camera, frame);
        tracer.extract_start(camera, frame);
        tracer.extract_end(camera, frame);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = LineageTracer::disabled();
        assert!(!tracer.is_enabled());
        assert_eq!(tracer.now_s(), 0.0);
        trace_one(&tracer, 0, 0);
        tracer.fused(0, 0.0, 0.0);
        tracer.retire_below(10);
        assert_eq!(tracer.in_flight(), 0);
        assert!(tracer.report().is_none());
    }

    #[test]
    fn fused_frames_produce_monotonic_waterfalls() {
        let t = Telemetry::enabled();
        let tracer = LineageTracer::enabled(&t, 2, 16);
        for frame in 0..5u64 {
            trace_one(&tracer, 0, frame);
            trace_one(&tracer, 1, frame);
            let start = tracer.now_s();
            tracer.fused(frame, start, tracer.now_s());
        }
        assert_eq!(tracer.in_flight(), 0);
        let report = tracer.report().expect("enabled");
        assert_eq!(report.summary.frames_traced, 5);
        assert_eq!(report.waterfalls.len(), 5);
        for w in &report.waterfalls {
            assert_eq!(w.lanes.len(), 2);
            for lane in &w.lanes {
                assert!(lane.enqueue_s <= lane.start_s);
                assert!(lane.start_s <= lane.end_s);
                assert!(lane.end_s <= w.fuse_start_s);
            }
            assert!(w.fuse_start_s <= w.fuse_end_s);
            assert!(w.total_s >= 0.0);
        }
        let summary = &report.summary;
        for name in ["queue_wait", "extract", "reorder_hold", "fuse", "total"] {
            let s = summary.stage(name).expect("stage present");
            assert_eq!(s.count, 5, "{name}");
            assert!(s.p99_s >= 0.0 && s.max_s >= s.p50_s - 1e-12, "{name}");
        }
    }

    #[test]
    fn stage_histograms_land_in_the_telemetry_registry() {
        let t = Telemetry::enabled();
        let tracer = LineageTracer::enabled(&t, 1, 8);
        trace_one(&tracer, 0, 0);
        let s = tracer.now_s();
        tracer.fused(0, s, tracer.now_s());
        let report = t.report();
        let hist = report
            .histograms
            .iter()
            .find(|h| h.name == "lineage.total_seconds")
            .expect("lineage histogram registered");
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn reservoir_is_bounded_and_exemplars_keep_the_slowest() {
        let t = Telemetry::enabled();
        let tracer = LineageTracer::enabled(&t, 1, 4);
        for frame in 0..100u64 {
            trace_one(&tracer, 0, frame);
            let start = tracer.now_s();
            // Frame 42 gets an artificially huge fuse time: it must
            // survive in the exemplars no matter what the reservoir
            // keeps.
            let end = if frame == 42 {
                start + 1000.0
            } else {
                tracer.now_s()
            };
            tracer.fused(frame, start, end);
        }
        let report = tracer.report().expect("enabled");
        assert_eq!(report.summary.frames_traced, 100);
        assert_eq!(report.waterfalls.len(), 4, "reservoir bounded");
        assert!(report.exemplars.len() <= EXEMPLARS);
        assert_eq!(
            report.exemplars.first().map(|w| w.frame),
            Some(42),
            "slowest frame is the first exemplar"
        );
        // Exemplars are sorted slowest-first.
        for pair in report.exemplars.windows(2) {
            assert!(pair[0].total_s >= pair[1].total_s);
        }
        // Reservoir is in frame order.
        for pair in report.waterfalls.windows(2) {
            assert!(pair[0].frame < pair[1].frame);
        }
    }

    #[test]
    fn discard_and_retire_keep_in_flight_bounded() {
        let t = Telemetry::enabled();
        let tracer = LineageTracer::enabled(&t, 2, 8);
        // Frame 0: one lane evicted, the other fuses — still traced.
        tracer.ingest(0, 0);
        tracer.ingest(1, 0);
        tracer.discard(0, 0);
        tracer.extract_start(1, 0);
        tracer.extract_end(1, 0);
        let s = tracer.now_s();
        tracer.fused(0, s, tracer.now_s());
        // Frame 1: both lanes evicted — can never fuse.
        tracer.ingest(0, 1);
        tracer.ingest(1, 1);
        tracer.discard(0, 1);
        tracer.discard(1, 1);
        assert_eq!(tracer.in_flight(), 1);
        tracer.retire_below(2);
        assert_eq!(tracer.in_flight(), 0);
        let summary = tracer.report().expect("enabled").summary;
        assert_eq!(summary.frames_traced, 1);
        assert_eq!(summary.lanes_discarded, 3);
        assert_eq!(summary.frames_incomplete, 1);
        assert_eq!(summary.in_flight, 0);
    }

    #[test]
    fn stamps_cannot_resurrect_a_retired_frame() {
        let t = Telemetry::enabled();
        let tracer = LineageTracer::enabled(&t, 1, 8);
        tracer.ingest(0, 5);
        tracer.retire_below(10);
        assert_eq!(tracer.in_flight(), 0);
        // A straggler worker stamping after retirement must not
        // re-create the entry.
        tracer.extract_start(0, 5);
        tracer.extract_end(0, 5);
        assert_eq!(tracer.in_flight(), 0);
        tracer.fused(5, 0.0, 0.0);
        assert_eq!(tracer.report().expect("enabled").summary.frames_traced, 0);
    }

    #[test]
    fn dropping_every_handle_frees_the_core() {
        let t = Telemetry::enabled();
        let tracer = LineageTracer::enabled(&t, 1, 8);
        let weak = Arc::downgrade(tracer.0.as_ref().expect("enabled"));
        let clone = tracer.clone();
        drop(tracer);
        assert!(weak.upgrade().is_some(), "clone keeps the core alive");
        drop(clone);
        assert!(
            weak.upgrade().is_none(),
            "last handle must free the lineage buffers"
        );
    }

    #[test]
    fn jsonl_export_round_trips() {
        let t = Telemetry::enabled();
        let tracer = LineageTracer::enabled(&t, 1, 8);
        trace_one(&tracer, 0, 3);
        let s = tracer.now_s();
        tracer.fused(3, s, tracer.now_s());
        let report = tracer.report().expect("enabled");
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines.len() >= 3, "summary + exemplar + waterfall");
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.get("kind").is_some());
        }
    }
}
