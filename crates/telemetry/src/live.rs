//! The live observability plane: a rate-aware snapshot aggregator, a
//! collapsed-stack span profiler, and the [`LivePlane`] that runs both
//! on background threads next to an executing session.
//!
//! The registry's counters are monotonic, so two snapshots taken at
//! different times diff into a *windowed* view: frames/s per camera,
//! drops/s, steal rate, and per-window latency quantiles (from
//! histogram bucket deltas) — the things a final-report average hides.
//! Windows land in a bounded ring, served over HTTP by [`crate::http`]
//! and attached to the final report as a trajectory.
//!
//! ```
//! use dievent_telemetry::{LiveOptions, LivePlane, Telemetry};
//! use std::time::Duration;
//!
//! let telemetry = Telemetry::enabled();
//! let mut plane = LivePlane::start(&telemetry, LiveOptions::default())
//!     .expect("no socket requested, start cannot fail");
//! telemetry.counter("frames_processed").add(40);
//! plane.sample_now();
//! let windows = plane.windows(None);
//! assert_eq!(windows.last().map(|w| w.delta_total("frames_processed")), Some(40));
//! assert!(plane.shutdown_join(Duration::from_secs(2)));
//! ```

use crate::metrics::HistogramCore;
use crate::report::GaugeEntry;
use crate::{http, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// How the live plane runs: where (if anywhere) to serve HTTP, how
/// often to sample, and how many windows to retain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveOptions {
    /// Address to bind the embedded metrics endpoint on; `None` runs
    /// the sampler without any socket. Port 0 picks a free port —
    /// read it back via [`LivePlane::local_addr`].
    pub http_addr: Option<SocketAddr>,
    /// Interval between sampler ticks (heartbeat + window). Clamped
    /// to at least 1 ms.
    pub sample_interval: Duration,
    /// Maximum retained [`RateWindow`]s; older windows fall off.
    pub ring_len: usize,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            http_addr: None,
            sample_interval: Duration::from_millis(250),
            ring_len: 120,
        }
    }
}

/// One counter's movement over a window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateEntry {
    /// Rendered instrument name, e.g. `frames_processed{camera="0"}`.
    pub name: String,
    /// Increase over the window.
    pub delta: u64,
    /// Increase divided by the window length.
    pub per_second: f64,
}

/// One histogram's windowed distribution, from bucket-count deltas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowQuantiles {
    /// Rendered instrument name.
    pub name: String,
    /// Observations that landed inside the window.
    pub count: u64,
    /// Mean of the window's observations (0 when empty).
    pub mean: f64,
    /// Windowed median (log-bucket resolution).
    pub p50: f64,
    /// Windowed 95th percentile.
    pub p95: f64,
    /// Windowed 99th percentile.
    pub p99: f64,
}

/// One sampling window: counter rates, windowed histogram quantiles,
/// and the gauge values at the window's end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateWindow {
    /// Window open, seconds since the telemetry epoch.
    pub start_s: f64,
    /// Window close, seconds since the telemetry epoch.
    pub end_s: f64,
    /// Every counter's movement over the window (zero deltas kept, so
    /// "present but idle" is distinguishable from "absent").
    pub rates: Vec<RateEntry>,
    /// Point-in-time gauge values at the window's end.
    pub gauges: Vec<GaugeEntry>,
    /// Windowed histogram distributions.
    pub quantiles: Vec<WindowQuantiles>,
}

impl RateWindow {
    /// The window's length in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }

    /// Per-second rate of the counter with this rendered name.
    pub fn rate(&self, name: &str) -> Option<f64> {
        self.rates
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.per_second)
    }

    /// Summed delta of every counter whose bare name matches —
    /// `delta_total("frames_processed")` adds all cameras.
    pub fn delta_total(&self, base: &str) -> u64 {
        let labeled = format!("{base}{{");
        self.rates
            .iter()
            .filter(|r| r.name == base || r.name.starts_with(&labeled))
            .map(|r| r.delta)
            .sum()
    }

    /// Summed per-second rate across labels of a bare counter name.
    pub fn rate_total(&self, base: &str) -> f64 {
        let labeled = format!("{base}{{");
        self.rates
            .iter()
            .filter(|r| r.name == base || r.name.starts_with(&labeled))
            .map(|r| r.per_second)
            .sum()
    }

    /// The gauge value recorded at this window's end, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// This window's distribution of the named histogram, if present.
    pub fn quantiles(&self, name: &str) -> Option<&WindowQuantiles> {
        self.quantiles.iter().find(|q| q.name == name)
    }
}

/// Baseline captured at the previous tick, diffed against the next.
struct Baseline {
    t_s: f64,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, (Vec<u64>, f64)>,
}

/// Diffs successive registry snapshots into [`RateWindow`]s.
pub(crate) struct Aggregator {
    ring_len: usize,
    prev: Option<Baseline>,
    ring: VecDeque<RateWindow>,
}

impl Aggregator {
    pub(crate) fn new(ring_len: usize) -> Self {
        Aggregator {
            ring_len: ring_len.max(1),
            prev: None,
            ring: VecDeque::new(),
        }
    }

    /// Takes one sample; produces a window iff a baseline exists and
    /// time advanced.
    pub(crate) fn sample(&mut self, telemetry: &Telemetry) {
        let Some(inner) = telemetry.inner_arc() else {
            return;
        };
        let now = inner.now_s();
        let registry = inner.registry();
        let counters: BTreeMap<String, u64> = registry
            .counter_values()
            .into_iter()
            .map(|(k, v)| (k.render(), v))
            .collect();
        let hists: BTreeMap<String, (Vec<u64>, f64)> = registry
            .histogram_cores()
            .into_iter()
            .map(|(k, core)| (k.render(), (core.bucket_snapshot(), core.sum())))
            .collect();

        if let Some(prev) = &self.prev {
            let dt = now - prev.t_s;
            if dt > 0.0 {
                let rates = counters
                    .iter()
                    .map(|(name, &value)| {
                        let before = prev.counters.get(name).copied().unwrap_or(0);
                        let delta = value.saturating_sub(before);
                        RateEntry {
                            name: name.clone(),
                            delta,
                            per_second: delta as f64 / dt,
                        }
                    })
                    .collect();
                let gauges = registry
                    .gauge_values()
                    .into_iter()
                    .map(|(k, value)| GaugeEntry {
                        name: k.render(),
                        value,
                    })
                    .collect();
                let quantiles = hists
                    .iter()
                    .map(|(name, (buckets, sum))| {
                        windowed_quantiles(name, buckets, *sum, prev.hists.get(name))
                    })
                    .collect();
                self.ring.push_back(RateWindow {
                    start_s: prev.t_s,
                    end_s: now,
                    rates,
                    gauges,
                    quantiles,
                });
                while self.ring.len() > self.ring_len {
                    self.ring.pop_front();
                }
            }
        }
        self.prev = Some(Baseline {
            t_s: now,
            counters,
            hists,
        });
    }

    /// The retained windows, oldest first; `last` limits to the most
    /// recent N.
    pub(crate) fn windows(&self, last: Option<usize>) -> Vec<RateWindow> {
        let take = last.unwrap_or(self.ring.len()).min(self.ring.len());
        self.ring
            .iter()
            .skip(self.ring.len() - take)
            .cloned()
            .collect()
    }
}

/// Builds one histogram's windowed distribution from bucket deltas.
fn windowed_quantiles(
    name: &str,
    buckets: &[u64],
    sum: f64,
    prev: Option<&(Vec<u64>, f64)>,
) -> WindowQuantiles {
    let zero: (Vec<u64>, f64) = (Vec::new(), 0.0);
    let (prev_buckets, prev_sum) = prev.unwrap_or(&zero);
    let deltas: Vec<u64> = buckets
        .iter()
        .enumerate()
        .map(|(i, &b)| b.saturating_sub(prev_buckets.get(i).copied().unwrap_or(0)))
        .collect();
    let count: u64 = deltas.iter().sum();
    let mean = if count > 0 {
        ((sum - prev_sum) / count as f64).max(0.0)
    } else {
        0.0
    };
    WindowQuantiles {
        name: name.to_owned(),
        count,
        mean,
        p50: delta_quantile(&deltas, count, 0.50),
        p95: delta_quantile(&deltas, count, 0.95),
        p99: delta_quantile(&deltas, count, 0.99),
    }
}

/// The value at quantile `q` of a bucket-delta distribution; 0 when
/// the window saw no observations.
fn delta_quantile(deltas: &[u64], total: u64, q: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (idx, &d) in deltas.iter().enumerate() {
        cumulative += d;
        if cumulative >= rank {
            return HistogramCore::bucket_value(idx);
        }
    }
    0.0
}

/// One node of the span profile: a root-first `;`-joined stack with
/// cumulative total and self (total minus children) time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileNode {
    /// Root-first call path, names joined with `;` — the
    /// collapsed-stack convention flamegraph tooling consumes.
    pub stack: String,
    /// Spans aggregated into this node.
    pub count: u64,
    /// Total wall-clock seconds (including children).
    pub total_s: f64,
    /// Seconds not attributed to any child span.
    pub self_s: f64,
}

/// Maximum parent-chain depth the profiler will walk; beyond this the
/// chain is treated as detached (defends against id cycles in
/// hand-built parents).
const MAX_STACK_DEPTH: usize = 64;

/// Aggregates completed *and still-open* spans into a profile, one
/// node per distinct call path. Open spans are counted at their
/// elapsed time so a mid-run profile is meaningful.
pub fn span_profile(telemetry: &Telemetry) -> Vec<ProfileNode> {
    let Some(inner) = telemetry.inner_arc() else {
        return Vec::new();
    };
    let now = inner.now_s();
    // id → (name, parent, duration). Open spans resolve ancestors for
    // completed children, and contribute their elapsed time.
    let mut meta: HashMap<u64, (String, Option<u64>, f64)> = HashMap::new();
    for s in inner.completed_spans() {
        meta.insert(s.id, (s.name, s.parent, s.duration_s));
    }
    for (id, open) in inner.open_spans() {
        meta.entry(id)
            .or_insert((open.name, open.parent, (now - open.start_s).max(0.0)));
    }

    let mut child_time: HashMap<u64, f64> = HashMap::new();
    for (_, parent, duration) in meta.values() {
        if let Some(parent) = parent {
            *child_time.entry(*parent).or_default() += duration;
        }
    }

    let mut nodes: BTreeMap<String, ProfileNode> = BTreeMap::new();
    for (id, (_, _, duration)) in &meta {
        let stack = stack_of(*id, &meta);
        let self_s = (duration - child_time.get(id).copied().unwrap_or(0.0)).max(0.0);
        let node = nodes.entry(stack.clone()).or_insert(ProfileNode {
            stack,
            count: 0,
            total_s: 0.0,
            self_s: 0.0,
        });
        node.count += 1;
        node.total_s += duration;
        node.self_s += self_s;
    }
    nodes.into_values().collect()
}

/// Renders the profile in collapsed-stack format: one `stack value`
/// line per node, value = self time in integer microseconds. Feed
/// straight to `flamegraph.pl` / `inferno`.
pub fn collapsed_stacks(telemetry: &Telemetry) -> String {
    let mut out = String::new();
    for node in span_profile(telemetry) {
        let micros = (node.self_s * 1e6).round().max(0.0) as u64;
        out.push_str(&node.stack);
        out.push(' ');
        out.push_str(&micros.to_string());
        out.push('\n');
    }
    out
}

/// Root-first `;`-joined path for one span id.
fn stack_of(id: u64, meta: &HashMap<u64, (String, Option<u64>, f64)>) -> String {
    let mut names: Vec<&str> = Vec::new();
    let mut cursor = Some(id);
    while let Some(current) = cursor {
        let Some((name, parent, _)) = meta.get(&current) else {
            break;
        };
        names.push(name.as_str());
        if names.len() >= MAX_STACK_DEPTH {
            break;
        }
        cursor = *parent;
    }
    names.reverse();
    names.join(";")
}

/// The per-tick heartbeat callback. It *borrows* the probe for the
/// duration of each call instead of owning one: an owned probe would
/// put an `Arc<PlaneShared>` inside `PlaneShared.heartbeat` — a cycle
/// that keeps the callback's captures (a pool handle and its worker
/// threads, session vitals, telemetry) alive forever.
type HeartbeatFn = Box<dyn Fn(&PlaneProbe) + Send + 'static>;

/// Provider for the `GET /tenants` JSON body: a multi-tenant server
/// attaches one (see [`LivePlane::attach_tenants`]) that snapshots its
/// tenant registry on demand. Shared with the HTTP thread, hence
/// `Sync` on top of the heartbeat's bounds.
type TenantsFn = Arc<dyn Fn() -> String + Send + Sync + 'static>;

/// State shared between the plane handle, the sampler thread, and the
/// HTTP server thread.
pub(crate) struct PlaneShared {
    pub(crate) telemetry: Telemetry,
    pub(crate) aggregator: Mutex<Aggregator>,
    /// The session's frame-lineage tracer, when lineage tracing is on —
    /// serves `GET /lineage`. A handle, not an owner: the session owns
    /// the tracer's lifecycle.
    pub(crate) lineage: Mutex<Option<crate::lineage::LineageTracer>>,
    /// Snapshot provider for the multi-tenant `GET /tenants` view —
    /// `None` (404) until a server attaches one. Cleared at shutdown
    /// so the provider's captures (a tenant registry) are released
    /// even while outstanding probes keep this struct alive.
    pub(crate) tenants: Mutex<Option<TenantsFn>>,
    /// Called at the top of every tick — the session publishes its
    /// heartbeat gauges (uptime, watermark, liveness, pool deltas)
    /// from here so they are fresh in every sample and scrape.
    /// Cleared at shutdown so its captures are released even while
    /// outstanding [`PlaneProbe`]s keep this struct alive.
    heartbeat: Mutex<Option<HeartbeatFn>>,
    pub(crate) ready: AtomicBool,
    pub(crate) shutdown: AtomicBool,
    /// Background threads currently running (sampler + server).
    threads_alive: AtomicUsize,
    /// What `/readyz` would have said at the instant the server loop
    /// exited — lets tests assert "not ready *before* socket close"
    /// without racing the shutdown.
    pub(crate) ready_when_closed: Mutex<Option<bool>>,
    pub(crate) started: Instant,
    /// Sampler wake: the bool is "stop requested".
    wake: (StdMutex<bool>, Condvar),
    sample_interval: Duration,
}

impl PlaneShared {
    /// Runs the heartbeat callback (when registered), lending it a
    /// probe for readiness downgrades.
    fn run_heartbeat(self: &Arc<Self>) {
        let heartbeat = self.heartbeat.lock();
        if let Some(f) = heartbeat.as_ref() {
            f(&PlaneProbe {
                shared: Arc::clone(self),
            });
        }
    }

    /// One sampler tick: heartbeat, then window the registry.
    pub(crate) fn tick(self: &Arc<Self>) {
        self.run_heartbeat();
        self.aggregator.lock().sample(&self.telemetry);
        self.telemetry.counter("observe.samples").incr();
    }

    pub(crate) fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) && !self.shutdown.load(Ordering::Acquire)
    }
}

/// Decrements `threads_alive` when a plane thread exits, even if it
/// unwinds.
struct AliveGuard(Arc<PlaneShared>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.threads_alive.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A diagnostic handle onto the plane's shared state that outlives the
/// [`LivePlane`] — lets tests assert that dropping a plane (or a
/// session holding one) leaks no threads.
#[derive(Clone)]
pub struct PlaneProbe {
    shared: Arc<PlaneShared>,
}

impl PlaneProbe {
    /// Background threads (sampler + server) still running.
    pub fn threads_alive(&self) -> usize {
        self.shared.threads_alive.load(Ordering::Acquire)
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// What `/readyz` reported at the instant the listener closed
    /// (`None` while the server is still running or never ran).
    pub fn ready_when_closed(&self) -> Option<bool> {
        *self.shared.ready_when_closed.lock()
    }

    /// Flips the readiness flag, like [`LivePlane::set_ready`] — for
    /// health checks that run inside the heartbeat closure, which
    /// cannot hold the plane itself.
    pub fn set_ready(&self, ready: bool) {
        self.shared.ready.store(ready, Ordering::Release);
    }

    /// Whether a lineage tracer is attached to the plane's shared
    /// state. Must read `false` once the plane shut down: the tracer's
    /// waterfall buffers would otherwise stay pinned for as long as
    /// any probe lives.
    pub fn lineage_attached(&self) -> bool {
        self.shared.lineage.lock().is_some()
    }

    /// Whether a `/tenants` provider is attached. Must read `false`
    /// once the plane shut down, for the same pinning reason as
    /// [`lineage_attached`](PlaneProbe::lineage_attached).
    pub fn tenants_attached(&self) -> bool {
        self.shared.tenants.lock().is_some()
    }
}

/// The running observability plane: a sampler thread (heartbeat +
/// rate windows) and, when an address was configured, an embedded
/// HTTP server for `/metrics`, `/healthz`, `/readyz`, `/snapshot`,
/// and `/profile`.
///
/// Dropping the plane shuts both threads down gracefully (readiness
/// flips to `false` *before* the socket closes) and joins them with a
/// bounded wait — a session abandoned without `finish()` cannot leak
/// threads.
pub struct LivePlane {
    shared: Arc<PlaneShared>,
    sampler: Option<JoinHandle<()>>,
    server: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

impl std::fmt::Debug for LivePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePlane")
            .field("local_addr", &self.local_addr)
            .field("ready", &self.shared.is_ready())
            .finish()
    }
}

impl LivePlane {
    /// Starts the plane: binds the listener (when configured), takes
    /// the initial baseline sample, and spawns the background threads.
    /// Fails only on socket bind/spawn errors.
    pub fn start(telemetry: &Telemetry, options: LiveOptions) -> std::io::Result<LivePlane> {
        Self::start_inner(telemetry, options, None, false)
    }

    /// Like [`start`](LivePlane::start), but wires the heartbeat
    /// callback and the initial `/readyz` verdict *before* the sampler
    /// and server threads spawn: the very first rate window already
    /// carries the heartbeat gauges, and a probe connecting right
    /// after the bind never sees a spurious 503 for an open session.
    /// The callback is lent a [`PlaneProbe`] on every call (e.g. to
    /// downgrade readiness) and is dropped at shutdown.
    pub fn start_with_heartbeat(
        telemetry: &Telemetry,
        options: LiveOptions,
        ready: bool,
        heartbeat: impl Fn(&PlaneProbe) + Send + 'static,
    ) -> std::io::Result<LivePlane> {
        Self::start_inner(telemetry, options, Some(Box::new(heartbeat)), ready)
    }

    fn start_inner(
        telemetry: &Telemetry,
        options: LiveOptions,
        heartbeat: Option<HeartbeatFn>,
        ready: bool,
    ) -> std::io::Result<LivePlane> {
        let interval = options.sample_interval.max(Duration::from_millis(1));
        let shared = Arc::new(PlaneShared {
            telemetry: telemetry.clone(),
            aggregator: Mutex::new(Aggregator::new(options.ring_len)),
            lineage: Mutex::new(None),
            tenants: Mutex::new(None),
            heartbeat: Mutex::new(heartbeat),
            ready: AtomicBool::new(ready),
            shutdown: AtomicBool::new(false),
            threads_alive: AtomicUsize::new(0),
            ready_when_closed: Mutex::new(None),
            started: Instant::now(),
            wake: (StdMutex::new(false), Condvar::new()),
            sample_interval: interval,
        });
        // Baseline (heartbeat included) so the first timed tick
        // already yields a window carrying the heartbeat gauges.
        shared.run_heartbeat();
        shared.aggregator.lock().sample(telemetry);

        let mut local_addr = None;
        let mut server = None;
        if let Some(addr) = options.http_addr {
            let listener = TcpListener::bind(addr)?;
            local_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            server = Some(Self::spawn("dievent-live-http", &shared, {
                let shared = Arc::clone(&shared);
                move || http::serve(listener, shared)
            })?);
        }
        let sampler = Self::spawn("dievent-live-sampler", &shared, {
            let shared = Arc::clone(&shared);
            move || sampler_loop(&shared)
        })?;

        Ok(LivePlane {
            shared,
            sampler: Some(sampler),
            server,
            local_addr,
        })
    }

    fn spawn(
        name: &str,
        shared: &Arc<PlaneShared>,
        body: impl FnOnce() + Send + 'static,
    ) -> std::io::Result<JoinHandle<()>> {
        shared.threads_alive.fetch_add(1, Ordering::AcqRel);
        let guard = AliveGuard(Arc::clone(shared));
        let spawned = std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || {
                let _guard = guard;
                body();
            });
        match spawned {
            Ok(handle) => Ok(handle),
            // The guard moved into the closure that never ran; the
            // count was already rolled back when `spawn` dropped it.
            Err(e) => Err(e),
        }
    }

    /// The address the HTTP listener actually bound (resolves port 0),
    /// `None` when no address was configured.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Registers the per-tick heartbeat callback (replacing any
    /// previous one). Runs on the sampler thread before every sample
    /// and on [`sample_now`](LivePlane::sample_now), lent a
    /// [`PlaneProbe`] so it can downgrade readiness without owning a
    /// handle back into the plane. Dropped at shutdown. Prefer
    /// [`start_with_heartbeat`](LivePlane::start_with_heartbeat) so
    /// the first tick already sees the callback.
    pub fn set_heartbeat(&self, f: impl Fn(&PlaneProbe) + Send + 'static) {
        *self.shared.heartbeat.lock() = Some(Box::new(f));
    }

    /// Attaches a frame-lineage tracer: `GET /lineage` serves its
    /// stage-attribution report from now on (404 until then). The
    /// plane holds a cheap handle, not ownership.
    pub fn attach_lineage(&self, tracer: crate::lineage::LineageTracer) {
        *self.shared.lineage.lock() = Some(tracer);
    }

    /// Attaches the `GET /tenants` snapshot provider: the endpoint
    /// serves whatever JSON the closure returns from now on (404 until
    /// then). A multi-tenant server hands in a closure over its tenant
    /// registry. Detached (and its captures released) at shutdown.
    pub fn attach_tenants(&self, provider: impl Fn() -> String + Send + Sync + 'static) {
        *self.shared.tenants.lock() = Some(Arc::new(provider));
    }

    /// Flips the `/readyz` verdict.
    pub fn set_ready(&self, ready: bool) {
        self.shared.ready.store(ready, Ordering::Release);
    }

    /// Current `/readyz` verdict.
    pub fn is_ready(&self) -> bool {
        self.shared.is_ready()
    }

    /// Takes a sample immediately (heartbeat + window), off-schedule.
    pub fn sample_now(&self) {
        self.shared.tick();
    }

    /// Retained rate windows, oldest first; `last` limits to the most
    /// recent N.
    pub fn windows(&self, last: Option<usize>) -> Vec<RateWindow> {
        self.shared.aggregator.lock().windows(last)
    }

    /// A diagnostic handle that survives the plane itself.
    pub fn probe(&self) -> PlaneProbe {
        PlaneProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Graceful shutdown: readiness drops first, both threads are
    /// signalled, then joined until `timeout`. Returns `true` when
    /// every thread joined in time. Idempotent.
    pub fn shutdown_join(&mut self, timeout: Duration) -> bool {
        self.shared.ready.store(false, Ordering::Release);
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let (lock, condvar) = &self.shared.wake;
            let mut stop = match lock.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *stop = true;
            condvar.notify_all();
        }
        // Drop the heartbeat callback: its captures (session vitals,
        // telemetry, possibly a pool handle whose worker threads only
        // exit when the last handle drops) must be released now, not
        // when the last outstanding PlaneProbe goes away.
        *self.shared.heartbeat.lock() = None;
        // Same for the lineage handle: its waterfall buffers must not
        // stay pinned behind a long-lived test probe.
        *self.shared.lineage.lock() = None;
        // And for the tenants provider, whose closure captures the
        // server's tenant registry.
        *self.shared.tenants.lock() = None;
        let deadline = Instant::now() + timeout;
        let mut all_joined = true;
        for handle in [self.sampler.take(), self.server.take()]
            .into_iter()
            .flatten()
        {
            loop {
                if handle.is_finished() {
                    let _ = handle.join();
                    break;
                }
                if Instant::now() >= deadline {
                    // Detach rather than block forever; the probe's
                    // thread count will expose the leak to tests.
                    all_joined = false;
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        all_joined
    }
}

impl Drop for LivePlane {
    fn drop(&mut self) {
        self.shutdown_join(Duration::from_secs(2));
    }
}

/// The sampler thread: tick every `sample_interval` until shutdown.
fn sampler_loop(shared: &Arc<PlaneShared>) {
    loop {
        {
            let (lock, condvar) = &shared.wake;
            let mut stop = match lock.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // A stop requested while the previous tick ran (or before
            // this thread reached its first wait) notified a condvar
            // nobody was waiting on — check the flag before sleeping,
            // or shutdown would stall a full interval.
            if *stop || shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            stop = match condvar.wait_timeout(stop, shared.sample_interval) {
                Ok((guard, _timeout)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
            if *stop || shared.shutdown.load(Ordering::Acquire) {
                return;
            }
        }
        shared.tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_report_counter_rates_and_deltas() {
        let t = Telemetry::enabled();
        let mut agg = Aggregator::new(8);
        agg.sample(&t); // baseline
        t.counter_with("frames_processed", &[("camera", "0")])
            .add(30);
        t.counter_with("frames_processed", &[("camera", "1")])
            .add(10);
        std::thread::sleep(Duration::from_millis(2));
        agg.sample(&t);
        let windows = agg.windows(None);
        assert_eq!(windows.len(), 1);
        let w = &windows[0];
        assert_eq!(w.delta_total("frames_processed"), 40);
        assert!(w.rate("frames_processed{camera=\"0\"}").unwrap_or(0.0) > 0.0);
        assert!(w.rate_total("frames_processed") > 0.0);
        assert!(w.duration_s() > 0.0);
        assert_eq!(w.rate("missing"), None);
    }

    #[test]
    fn windowed_quantiles_see_only_the_window() {
        let t = Telemetry::enabled();
        let h = t.histogram("fusion_seconds");
        let mut agg = Aggregator::new(8);
        // First window: fast observations.
        agg.sample(&t);
        for _ in 0..100 {
            h.observe(1e-3);
        }
        std::thread::sleep(Duration::from_millis(2));
        agg.sample(&t);
        // Second window: slow observations only.
        for _ in 0..100 {
            h.observe(1.0);
        }
        std::thread::sleep(Duration::from_millis(2));
        agg.sample(&t);
        let windows = agg.windows(None);
        assert_eq!(windows.len(), 2);
        let first = windows[0].quantiles("fusion_seconds").expect("present");
        let second = windows[1].quantiles("fusion_seconds").expect("present");
        assert_eq!(first.count, 100);
        assert_eq!(second.count, 100);
        // Windowed p95 tracks each window's own distribution, which
        // the cumulative histogram (p50 ≈ mixed) cannot show.
        assert!(first.p95 < 2e-3, "fast window p95 {}", first.p95);
        assert!(second.p95 > 0.5, "slow window p95 {}", second.p95);
        assert!((first.mean - 1e-3).abs() / 1e-3 < 0.05);
    }

    #[test]
    fn ring_is_bounded() {
        let t = Telemetry::enabled();
        let mut agg = Aggregator::new(3);
        agg.sample(&t);
        for i in 0..10u64 {
            t.counter("ticks").add(i + 1);
            std::thread::sleep(Duration::from_millis(1));
            agg.sample(&t);
        }
        assert_eq!(agg.windows(None).len(), 3);
        assert_eq!(agg.windows(Some(2)).len(), 2);
        assert_eq!(agg.windows(Some(99)).len(), 3);
        // Oldest-first ordering.
        let w = agg.windows(None);
        assert!(w[0].end_s <= w[1].start_s + 1e-9);
    }

    #[test]
    fn profile_collapses_stacks_with_self_time() {
        let t = Telemetry::enabled();
        {
            let _run = t.span("run");
            {
                let _stage = t.span("stage.extraction");
                let _chunk = t.span("camera.extract_chunk");
            }
            let _fuse = t.span("stage.fusion");
        }
        let nodes = span_profile(&t);
        let stacks: Vec<&str> = nodes.iter().map(|n| n.stack.as_str()).collect();
        assert!(stacks.contains(&"run"));
        assert!(stacks.contains(&"run;stage.extraction"));
        assert!(stacks.contains(&"run;stage.extraction;camera.extract_chunk"));
        assert!(stacks.contains(&"run;stage.fusion"));
        for n in &nodes {
            assert!(n.self_s <= n.total_s + 1e-9, "{}", n.stack);
            assert!(n.self_s >= 0.0);
        }
        let collapsed = collapsed_stacks(&t);
        assert!(collapsed.lines().count() >= 4, "{collapsed}");
        for line in collapsed.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("stack value");
            assert!(!stack.is_empty());
            assert!(value.parse::<u64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn profile_includes_open_spans_mid_run() {
        let t = Telemetry::enabled();
        let run = t.span("run");
        let _worker = t.span_under("camera.worker", run.id());
        std::thread::sleep(Duration::from_millis(2));
        // Both spans are still open — the profile must still resolve
        // the full parent chain and count elapsed time.
        let nodes = span_profile(&t);
        let worker = nodes
            .iter()
            .find(|n| n.stack == "run;camera.worker")
            .expect("open span profiled");
        assert!(worker.total_s > 0.0);
    }

    #[test]
    fn plane_samples_on_a_timer_and_joins_cleanly() {
        let t = Telemetry::enabled();
        let mut plane = LivePlane::start(
            &t,
            LiveOptions {
                http_addr: None,
                sample_interval: Duration::from_millis(5),
                ring_len: 64,
            },
        )
        .expect("no socket to bind");
        let probe = plane.probe();
        assert_eq!(probe.threads_alive(), 1, "sampler only");
        t.counter("frames_processed").add(7);
        std::thread::sleep(Duration::from_millis(30));
        assert!(!plane.windows(None).is_empty(), "timer produced windows");
        assert!(plane.shutdown_join(Duration::from_secs(2)));
        assert_eq!(probe.threads_alive(), 0);
        assert!(probe.is_shutdown());
    }

    #[test]
    fn heartbeat_runs_before_every_sample() {
        let t = Telemetry::enabled();
        let plane = LivePlane::start(&t, LiveOptions::default()).expect("no socket");
        let beats = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&beats);
        let hb_telemetry = t.clone();
        plane.set_heartbeat(move |_probe| {
            counted.fetch_add(1, Ordering::Relaxed);
            hb_telemetry.gauge("session.uptime_s").set(1.0);
        });
        plane.sample_now();
        plane.sample_now();
        assert_eq!(beats.load(Ordering::Relaxed), 2);
        let windows = plane.windows(None);
        let last = windows.last().expect("two samples, one window min");
        assert_eq!(last.gauge("session.uptime_s"), Some(1.0));
    }

    #[test]
    fn start_with_heartbeat_wires_before_the_first_tick() {
        let t = Telemetry::enabled();
        let hb_telemetry = t.clone();
        let mut plane = LivePlane::start_with_heartbeat(
            &t,
            LiveOptions {
                http_addr: None,
                sample_interval: Duration::from_millis(5),
                ring_len: 8,
            },
            true,
            move |_probe| hb_telemetry.gauge("session.uptime_s").set(2.0),
        )
        .expect("no socket");
        assert!(plane.is_ready(), "initial readiness applies before start");
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let windows = plane.windows(None);
            if let Some(first) = windows.first() {
                // Even the *first* window must carry the heartbeat
                // gauges — the callback was registered before the
                // sampler thread existed.
                assert_eq!(first.gauge("session.uptime_s"), Some(2.0));
                break;
            }
            assert!(Instant::now() < deadline, "sampler produced no window");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(plane.shutdown_join(Duration::from_secs(2)));
    }

    #[test]
    fn heartbeat_can_downgrade_readiness_via_the_lent_probe() {
        let t = Telemetry::enabled();
        let plane = LivePlane::start(&t, LiveOptions::default()).expect("no socket");
        plane.set_ready(true);
        plane.set_heartbeat(|probe| probe.set_ready(false));
        assert!(plane.is_ready());
        plane.sample_now();
        assert!(!plane.is_ready(), "heartbeat flipped readiness");
    }

    #[test]
    fn shutdown_frees_heartbeat_captures_despite_live_probes() {
        let t = Telemetry::enabled();
        let mut plane = LivePlane::start(&t, LiveOptions::default()).expect("no socket");
        let sentinel = Arc::new(());
        let weak = Arc::downgrade(&sentinel);
        plane.set_heartbeat(move |_probe| {
            let _held = &sentinel;
        });
        plane.sample_now();
        assert!(weak.upgrade().is_some(), "captures alive while running");
        // The probe outlives the plane (as test probes do): the
        // heartbeat's captures must still be dropped at shutdown —
        // a session's pool handle held here would otherwise leak the
        // pool's worker threads for as long as any probe exists.
        let probe = plane.probe();
        assert!(plane.shutdown_join(Duration::from_secs(2)));
        assert!(
            weak.upgrade().is_none(),
            "shutdown must drop the heartbeat callback and its captures"
        );
        drop(probe);
    }

    #[test]
    fn stop_requested_before_the_first_wait_is_seen_immediately() {
        let t = Telemetry::enabled();
        let mut plane = LivePlane::start(
            &t,
            LiveOptions {
                http_addr: None,
                sample_interval: Duration::from_secs(30),
                ring_len: 4,
            },
        )
        .expect("no socket");
        let probe = plane.probe();
        // Zero-timeout join: signals stop (racing the sampler thread
        // to its first condvar wait) and detaches. The pre-wait stop
        // check must make the thread exit promptly either way — with
        // only the post-wait check it would sleep out the full 30 s
        // interval whenever the notify won the race.
        plane.shutdown_join(Duration::ZERO);
        let deadline = Instant::now() + Duration::from_secs(2);
        while probe.threads_alive() > 0 {
            assert!(
                Instant::now() < deadline,
                "sampler slept through a stop request"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn dropping_the_plane_joins_threads() {
        let t = Telemetry::enabled();
        let plane = LivePlane::start(
            &t,
            LiveOptions {
                http_addr: None,
                sample_interval: Duration::from_millis(1),
                ring_len: 4,
            },
        )
        .expect("no socket");
        let probe = plane.probe();
        drop(plane);
        assert_eq!(probe.threads_alive(), 0, "drop must join the sampler");
        assert!(probe.is_shutdown());
    }

    #[test]
    fn disabled_telemetry_yields_no_windows_or_profile() {
        let t = Telemetry::disabled();
        let mut agg = Aggregator::new(4);
        agg.sample(&t);
        agg.sample(&t);
        assert!(agg.windows(None).is_empty());
        assert!(span_profile(&t).is_empty());
        assert_eq!(collapsed_stacks(&t), "");
    }
}
