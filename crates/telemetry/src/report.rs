//! The aggregated, serializable view of a telemetry domain.

use crate::metrics::Registry;
use crate::span::SpanRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One counter's value. `name` includes rendered labels, e.g.
/// `frames_processed{camera="0"}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Rendered instrument name.
    pub name: String,
    /// Current count.
    pub value: u64,
}

/// One gauge's value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Rendered instrument name.
    pub name: String,
    /// Latest value.
    pub value: f64,
}

/// One histogram, summarized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Rendered instrument name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// All completed spans sharing a name, aggregated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total wall-clock seconds across them.
    pub total_s: f64,
    /// Longest single span.
    pub max_s: f64,
}

/// The aggregated metrics + span view of one telemetry domain.
/// Serializable, cheap to clone, detached from the live registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// All counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Completed spans aggregated by name, sorted by name.
    pub spans: Vec<SpanSummary>,
}

impl TelemetryReport {
    /// Value of the counter with this rendered name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Sum of all counters whose bare name (ignoring labels) matches —
    /// e.g. `counter_total("frames_processed")` adds every camera.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name || c.name.starts_with(&format!("{name}{{")))
            .map(|c| c.value)
            .sum()
    }

    /// Value of the gauge with this rendered name, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Summary of the histogram with this rendered name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Summary of the spans with this name, if any completed.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Total wall-clock seconds of spans with this name (0 when none).
    pub fn span_total_s(&self, name: &str) -> f64 {
        self.span(name).map_or(0.0, |s| s.total_s)
    }
}

pub(crate) fn build(registry: &Registry, spans: &[SpanRecord]) -> TelemetryReport {
    let counters = registry
        .counter_values()
        .into_iter()
        .map(|(k, value)| CounterEntry {
            name: k.render(),
            value,
        })
        .collect();
    let gauges = registry
        .gauge_values()
        .into_iter()
        .map(|(k, value)| GaugeEntry {
            name: k.render(),
            value,
        })
        .collect();
    let histograms = registry
        .histogram_cores()
        .into_iter()
        .map(|(k, core)| HistogramSummary {
            name: k.render(),
            count: core.count(),
            sum: core.sum(),
            min: core.min(),
            max: core.max(),
            p50: core.quantile(0.50),
            p95: core.quantile(0.95),
            p99: core.quantile(0.99),
        })
        .collect();

    let mut by_name: BTreeMap<&str, SpanSummary> = BTreeMap::new();
    for s in spans {
        let entry = by_name.entry(&s.name).or_insert_with(|| SpanSummary {
            name: s.name.clone(),
            count: 0,
            total_s: 0.0,
            max_s: 0.0,
        });
        entry.count += 1;
        entry.total_s += s.duration_s;
        entry.max_s = entry.max_s.max(s.duration_s);
    }

    TelemetryReport {
        counters,
        gauges,
        histograms,
        spans: by_name.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn report_aggregates_spans_by_name() {
        let t = Telemetry::enabled();
        for _ in 0..3 {
            let _s = t.span("stage.analysis");
        }
        let report = t.report();
        let s = report.span("stage.analysis").unwrap();
        assert_eq!(s.count, 3);
        assert!(s.total_s >= s.max_s);
        assert_eq!(report.span("missing"), None);
        assert_eq!(report.span_total_s("missing"), 0.0);
    }

    #[test]
    fn counter_total_sums_labels() {
        let t = Telemetry::enabled();
        t.counter_with("frames", &[("camera", "0")]).add(10);
        t.counter_with("frames", &[("camera", "1")]).add(5);
        t.counter("frames_other").add(99);
        let report = t.report();
        assert_eq!(report.counter_total("frames"), 15);
        assert_eq!(report.counter("frames{camera=\"0\"}"), Some(10));
    }

    #[test]
    fn report_round_trips_through_json() {
        let t = Telemetry::enabled();
        t.counter("c").add(2);
        t.gauge("g").set(1.5);
        t.histogram("h").observe(0.25);
        {
            let _s = t.span("s");
        }
        let report = t.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: super::TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter("c"), Some(2));
        assert_eq!(back.gauge("g"), Some(1.5));
        assert_eq!(back.histogram("h").unwrap().count, 1);
        assert_eq!(back.span("s").unwrap().count, 1);
    }
}
