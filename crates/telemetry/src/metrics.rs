//! The metrics registry: counters, gauges, and log-scale histograms.
//!
//! Instruments are handles (`Arc`s into the registry), resolved once
//! and then updated with plain atomic operations — hot paths never
//! touch the registry lock. Handles from a disabled
//! [`Telemetry`](crate::Telemetry) are no-ops.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of one instrument: a name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_owned(),
            labels,
        }
    }

    /// Renders `name{k="v",...}` (bare name when unlabeled). Label
    /// values are escaped per the Prometheus exposition format
    /// (`\` → `\\`, `"` → `\"`, newline → `\n`), so the rendered form
    /// is unambiguous even for hostile values.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

/// Prometheus exposition escaping for label values: backslash, double
/// quote, and line feed.
pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[derive(Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<HistogramCore>>>,
}

impl Registry {
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let cell = Arc::clone(self.counters.lock().entry(key).or_default());
        Counter(Some(cell))
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let cell = Arc::clone(self.gauges.lock().entry(key).or_default());
        Gauge(Some(cell))
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let core = Arc::clone(
            self.histograms
                .lock()
                .entry(key)
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        );
        Histogram(Some(core))
    }

    pub fn counter_values(&self) -> Vec<(MetricKey, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    pub fn gauge_values(&self) -> Vec<(MetricKey, f64)> {
        self.gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect()
    }

    pub fn histogram_cores(&self) -> Vec<(MetricKey, Arc<HistogramCore>)> {
        self.histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

/// A monotonic counter handle.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    pub(crate) fn noop() -> Self {
        Counter(None)
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 on a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle (an f64 set to the latest value).
///
/// # Concurrency
///
/// All operations are atomic on the gauge's 64-bit cell, so a reader
/// never observes a torn value — but [`set`](Gauge::set) across threads
/// is last-writer-wins, and a snapshot taken while writers are active
/// reflects *some* recent value of each gauge, not a single consistent
/// cut across gauges. Use [`add`](Gauge::add)/[`sub`](Gauge::sub) for
/// occupancy/liveness-style gauges that several threads move
/// concurrently: increments are never lost the way racing `set`s are.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

impl Gauge {
    pub(crate) fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge. Last writer wins across threads.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Atomically adds `delta` (CAS loop; concurrent adds are never
    /// lost, unlike racing [`set`](Gauge::set)s).
    pub fn add(&self, delta: f64) {
        if let Some(cell) = &self.0 {
            atomic_f64_add(cell, delta);
        }
    }

    /// Atomically subtracts `delta`.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// The current value (0 on a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Log-scale histogram resolution: buckets per factor of two. 8 gives
/// ~9% relative quantile error, plenty for latency distributions.
const BUCKETS_PER_OCTAVE: f64 = 8.0;
/// Bucket 0 sits at 2^-30 s ≈ 1 ns; the last at ~2^10 s ≈ 17 min.
const OCTAVE_OFFSET: f64 = 30.0;
const BUCKET_COUNT: usize = 320;

pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn atomic_f64_min(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        let idx = ((v.log2() + OCTAVE_OFFSET) * BUCKETS_PER_OCTAVE).floor();
        idx.clamp(0.0, (BUCKET_COUNT - 1) as f64) as usize
    }

    /// Geometric midpoint of a bucket — the representative value
    /// reported for quantiles landing in it.
    pub(crate) fn bucket_value(idx: usize) -> f64 {
        ((idx as f64 + 0.5) / BUCKETS_PER_OCTAVE - OCTAVE_OFFSET).exp2()
    }

    /// Point-in-time copy of the raw bucket counters. Two copies taken
    /// at different times diff into a *windowed* distribution (the
    /// counters are monotonic), which is how the live sampler computes
    /// per-window quantiles.
    pub(crate) fn bucket_snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_min(&self.min_bits, v);
        atomic_f64_max(&self.max_bits, v);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// The value at quantile `q` in `[0, 1]`, within one log-bucket
    /// (~±4.5% relative) of the true order statistic. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        // The extreme order statistics are tracked exactly; the bucket
        // walk below would only return a midpoint near them.
        if rank == 1 {
            return self.min();
        }
        if rank == total {
            return self.max();
        }
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                // Clamp into the observed range: tightens the first and
                // last buckets to the true extremes.
                return Self::bucket_value(idx).clamp(self.min(), self.max());
            }
        }
        self.max()
    }
}

/// A log-scale histogram handle.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

impl Histogram {
    pub(crate) fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation (typically seconds).
    pub fn observe(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.observe(v);
        }
    }

    /// Records a duration, in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Times `f` and records its wall-clock duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.0 {
            None => f(),
            Some(core) => {
                let start = std::time::Instant::now();
                let out = f();
                core.observe(start.elapsed().as_secs_f64());
                out
            }
        }
    }

    /// Number of observations (0 on a no-op handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count())
    }

    /// Sum of all observations (0 on a no-op handle).
    pub fn sum(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.sum())
    }

    /// Exact smallest observation (0 when empty or no-op).
    pub fn min(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.min())
    }

    /// Exact largest observation (0 when empty or no-op).
    pub fn max(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.max())
    }

    /// Mean observation (0 when empty or no-op).
    pub fn mean(&self) -> f64 {
        match self.count() {
            0 => 0.0,
            n => self.sum() / n as f64,
        }
    }

    /// The value at quantile `q` (0 on a no-op handle).
    pub fn quantile(&self, q: f64) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotonic() {
        let values = [1e-9, 1e-6, 1e-3, 0.5, 1.0, 2.0, 100.0];
        let idxs: Vec<usize> = values
            .iter()
            .map(|&v| HistogramCore::bucket_of(v))
            .collect();
        assert!(idxs.windows(2).all(|w| w[0] < w[1]), "{idxs:?}");
        // Representative values sit inside their bucket's range.
        for &v in &values {
            let idx = HistogramCore::bucket_of(v);
            let rep = HistogramCore::bucket_value(idx);
            assert!(
                (rep / v).log2().abs() <= 1.0 / 8.0 + 1e-9,
                "v={v} rep={rep}"
            );
        }
    }

    #[test]
    fn zero_and_negative_land_in_first_bucket() {
        assert_eq!(HistogramCore::bucket_of(0.0), 0);
        assert_eq!(HistogramCore::bucket_of(-3.0), 0);
        let h = HistogramCore::new();
        h.observe(0.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = HistogramCore::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn quantiles_track_true_percentiles_within_bucket_error() {
        let h = HistogramCore::new();
        // 1 ms .. 1000 ms, uniform. True p50 = 0.5005 s, p95 = 0.9505 s.
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-3);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500.5).abs() < 1e-6);
        assert_eq!(h.min(), 1e-3);
        assert_eq!(h.max(), 1.0);
        // Log-bucket resolution is 2^(1/8) ≈ 9%; allow one bucket.
        for (q, truth) in [(0.50, 0.5005), (0.95, 0.9505), (0.99, 0.9905)] {
            let got = h.quantile(q);
            let rel = (got / truth).log2().abs();
            assert!(rel <= 1.0 / 8.0 + 1e-9, "q={q}: got {got}, true {truth}");
        }
        // Extremes are exact thanks to the min/max clamp.
        assert_eq!(h.quantile(0.0), 1e-3);
        assert_eq!(h.quantile(1.0), 1.0);
    }

    #[test]
    fn counters_are_atomic_under_concurrency() {
        let registry = Registry::default();
        let counter = registry.counter("hits", &[]);
        let histogram = registry.histogram("lat", &[]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let counter = counter.clone();
                let histogram = histogram.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        counter.incr();
                        if i % 100 == 0 {
                            histogram.observe(1e-3);
                        }
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        assert_eq!(histogram.count(), 800);
        assert!((registry.histogram("lat", &[]).quantile(0.5) - 1e-3).abs() / 1e-3 < 0.1);
    }

    #[test]
    fn metric_key_renders_labels_sorted() {
        let key = MetricKey::new("frames", &[("z", "1"), ("a", "2")]);
        assert_eq!(key.render(), "frames{a=\"2\",z=\"1\"}");
        assert_eq!(MetricKey::new("frames", &[]).render(), "frames");
    }

    #[test]
    fn metric_key_escapes_hostile_label_values() {
        let key = MetricKey::new("m", &[("path", "a\\b"), ("msg", "say \"hi\"\nbye")]);
        assert_eq!(
            key.render(),
            "m{msg=\"say \\\"hi\\\"\\nbye\",path=\"a\\\\b\"}"
        );
    }

    #[test]
    fn gauge_add_sub_are_atomic() {
        let registry = Registry::default();
        let gauge = registry.gauge("occupancy", &[]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gauge = gauge.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        gauge.add(1.0);
                    }
                    for _ in 0..9_000 {
                        gauge.sub(1.0);
                    }
                });
            }
        });
        assert_eq!(gauge.get(), 8.0 * 1_000.0);
    }

    #[test]
    fn concurrent_snapshots_never_observe_torn_gauges() {
        // Writers move per-camera gauges by whole increments while a
        // reader snapshots the registry. Atomic bit-level updates mean
        // every observed value must be a whole number inside the
        // writers' range, and every observed key must be one of the
        // writers' fully rendered label sets (never a torn name).
        let registry = Registry::default();
        let stop = AtomicU64::new(0);
        std::thread::scope(|s| {
            for c in 0..4u64 {
                let registry = &registry;
                let stop = &stop;
                s.spawn(move || {
                    let label = c.to_string();
                    let gauge = registry.gauge("depth", &[("camera", label.as_str())]);
                    while stop.load(Ordering::Relaxed) == 0 {
                        gauge.add(1.0);
                        gauge.sub(1.0);
                        gauge.add(2.0);
                        gauge.sub(2.0);
                    }
                });
            }
            for _ in 0..200 {
                for (key, value) in registry.gauge_values() {
                    assert!(
                        (0.0..=3.0).contains(&value) && value.fract() == 0.0,
                        "torn gauge value {value} for {}",
                        key.render()
                    );
                    let rendered = key.render();
                    assert!(
                        rendered.starts_with("depth{camera=\"") && rendered.ends_with("\"}"),
                        "torn label set: {rendered}"
                    );
                }
            }
            stop.store(1, Ordering::Relaxed);
        });
    }
}
