//! The embedded, dependency-free HTTP exporter behind
//! [`LivePlane`](crate::LivePlane).
//!
//! One background accept thread plus a bounded set of short-lived
//! per-connection handler threads, serving:
//!
//! * `GET /metrics` — Prometheus text exposition of the registry;
//! * `GET /healthz` — liveness (200 whenever the server runs);
//! * `GET /readyz` — readiness (503 until the session opens, and
//!   again the moment it starts closing — *before* the socket dies);
//! * `GET /snapshot?window=N` — JSON: the aggregated report plus the
//!   last N rate windows (malformed/zero `window` values are a 400,
//!   not a silent default);
//! * `GET /profile` — collapsed-stack span profile (flamegraph
//!   input);
//! * `GET /lineage` — JSON: the frame-lineage stage-attribution
//!   summary plus the slowest-frame waterfall exemplars (404 until a
//!   tracer is attached);
//! * `GET /tenants` — JSON: the multi-tenant server's per-tenant
//!   state snapshot (404 until a server attaches a provider with
//!   [`LivePlane::attach_tenants`](crate::LivePlane::attach_tenants)).
//!
//! The accept loop polls a nonblocking listener so shutdown is
//! bounded: an idle listener notices shutdown within 5 ms, and each
//! connection runs on its own short-lived thread (capped at
//! [`MAX_CONNECTIONS`], then handled inline) so one slow or stalled
//! client cannot delay `/readyz` for the load balancer — or a
//! Prometheus scrape — queued behind it. Handler threads are bounded
//! by the ~2 s socket timeout on both read and write; any still
//! serving at shutdown are left to finish on their own and outlive
//! the listener by at most that long.

use crate::live::{collapsed_stacks, PlaneShared};
use serde_json::json;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long one request may spend reading or writing.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);
/// Poll cadence of the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Upper bound on the request head we will buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Ceiling on concurrent per-connection handler threads; accepts past
/// the cap are served inline on the accept thread, which applies
/// natural backpressure instead of spawning without bound.
const MAX_CONNECTIONS: usize = 16;

/// Decrements the live-connection count when a handler exits — even
/// by unwind, or when its thread failed to spawn and the closure
/// (owning this guard) was dropped unexecuted.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The server loop: accept until shutdown, then record the readiness
/// verdict *before* the listener drops (and the socket closes), so
/// tests can assert the flip-then-close ordering.
pub(crate) fn serve(listener: TcpListener, shared: Arc<PlaneShared>) {
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if active.load(Ordering::Acquire) >= MAX_CONNECTIONS {
                    handle_request(stream, &shared);
                    continue;
                }
                active.fetch_add(1, Ordering::AcqRel);
                let guard = ConnGuard(Arc::clone(&active));
                let shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("dievent-live-conn".to_owned())
                    .spawn(move || {
                        let _guard = guard;
                        handle_request(stream, &shared);
                    });
                // On spawn failure the closure was dropped unexecuted,
                // rolling back the count and closing the connection.
                drop(spawned);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    *shared.ready_when_closed.lock() = Some(shared.ready.load(Ordering::Acquire));
    drop(listener);
}

/// Parses one request and routes it. Any socket error just drops the
/// connection — the plane must never take the pipeline down.
fn handle_request(mut stream: TcpStream, shared: &PlaneShared) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };

    shared.telemetry.counter("observe.requests").incr();
    let mut span = shared.telemetry.span("observe.request");
    span.set("path", path);
    span.set("method", method);

    if method != "GET" {
        let _ = respond(&mut stream, 405, "Method Not Allowed", TEXT, b"GET only\n");
        return;
    }
    let _ = match path {
        "/metrics" => {
            let body = shared.telemetry.render_prometheus();
            respond(&mut stream, 200, "OK", PROMETHEUS, body.as_bytes())
        }
        "/healthz" => respond(&mut stream, 200, "OK", TEXT, b"ok\n"),
        "/readyz" => {
            if shared.is_ready() {
                respond(&mut stream, 200, "OK", TEXT, b"ready\n")
            } else {
                respond(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    TEXT,
                    b"not ready\n",
                )
            }
        }
        "/snapshot" => match parse_window(query) {
            Err(e) => respond(&mut stream, 400, "Bad Request", TEXT, e.as_bytes()),
            Ok(limit) => match snapshot_body(shared, limit) {
                Ok(body) => respond(&mut stream, 200, "OK", JSON, body.as_bytes()),
                Err(e) => respond(
                    &mut stream,
                    500,
                    "Internal Server Error",
                    TEXT,
                    e.as_bytes(),
                ),
            },
        },
        "/profile" => {
            let body = collapsed_stacks(&shared.telemetry);
            respond(&mut stream, 200, "OK", TEXT, body.as_bytes())
        }
        "/lineage" => match lineage_body(shared) {
            None => respond(
                &mut stream,
                404,
                "Not Found",
                TEXT,
                b"lineage tracing is not enabled for this session\n",
            ),
            Some(Ok(body)) => respond(&mut stream, 200, "OK", JSON, body.as_bytes()),
            Some(Err(e)) => respond(
                &mut stream,
                500,
                "Internal Server Error",
                TEXT,
                e.as_bytes(),
            ),
        },
        "/tenants" => {
            // Clone the provider out so the lock is not held while
            // the (arbitrary) snapshot closure runs.
            let provider = shared.tenants.lock().clone();
            match provider {
                None => respond(
                    &mut stream,
                    404,
                    "Not Found",
                    TEXT,
                    b"no multi-tenant server is attached to this plane\n",
                ),
                Some(provider) => {
                    let body = provider();
                    respond(&mut stream, 200, "OK", JSON, body.as_bytes())
                }
            }
        }
        _ => respond(&mut stream, 404, "Not Found", TEXT, b"not found\n"),
    };
}

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json";
const PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Parses `?window=N` from a query string. Absent → `None` (all
/// windows); present but malformed, zero, or overflowing → `Err` (the
/// caller answers 400 — silently defaulting would hand a scraper the
/// full ring while it believes it asked for a slice).
fn parse_window(query: Option<&str>) -> Result<Option<usize>, String> {
    let mut limit = None;
    for kv in query.into_iter().flat_map(|q| q.split('&')) {
        if let Some(raw) = kv.strip_prefix("window=") {
            match raw.parse::<usize>() {
                Ok(n) if n > 0 => limit = Some(n),
                Ok(_) => return Err("window must be at least 1\n".to_owned()),
                Err(_) => return Err(format!("unparseable window value {raw:?}\n")),
            }
        }
    }
    Ok(limit)
}

/// The `/snapshot` JSON: uptime + readiness + the aggregated report +
/// the retained (or last `?window=N`) rate windows.
fn snapshot_body(shared: &PlaneShared, limit: Option<usize>) -> Result<String, String> {
    let report = shared.telemetry.report();
    let windows = {
        let aggregator = shared.aggregator.lock();
        aggregator.windows(limit)
    };
    let body = json!({
        "uptime_s": shared.started.elapsed().as_secs_f64(),
        "ready": shared.is_ready(),
        "report": serde_json::to_value(&report).map_err(|e| e.to_string())?,
        "windows": serde_json::to_value(&windows).map_err(|e| e.to_string())?,
    });
    serde_json::to_string(&body).map_err(|e| e.to_string())
}

/// The `/lineage` JSON: the per-stage attribution summary plus the
/// slowest-frame exemplars with their full waterfalls. `None` when no
/// tracer is attached (the caller answers 404).
fn lineage_body(shared: &PlaneShared) -> Option<Result<String, String>> {
    let tracer = shared.lineage.lock().clone()?;
    let report = tracer.report()?;
    let render = || -> Result<String, String> {
        let body = json!({
            "enabled": true,
            "summary": serde_json::to_value(&report.summary).map_err(|e| e.to_string())?,
            "exemplars": serde_json::to_value(&report.exemplars).map_err(|e| e.to_string())?,
        });
        serde_json::to_string(&body).map_err(|e| e.to_string())
    };
    Some(render())
}

/// Reads the whole request head (through the blank line ending the
/// headers — leaving it unread would make the close an RST instead of
/// a FIN) and returns the request line. Bounded at
/// [`MAX_REQUEST_BYTES`]; `None` on timeout/EOF/garbage.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(_) => return None,
        }
    }
    let head = String::from_utf8(head).ok()?;
    let line = head.lines().next()?.trim();
    if line.is_empty() {
        return None;
    }
    Some(line.to_owned())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Summary returned by [`validate_exposition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Sample lines seen.
    pub samples: usize,
    /// Distinct `# TYPE`d families.
    pub families: usize,
}

/// A small Prometheus text-exposition checker: every sample line must
/// parse (name, escaped labels, finite-or-`Inf`/`NaN` value) and
/// belong to a `# TYPE`d family; `TYPE` kinds must be legal and
/// unique. Used by the CI scrape smoke test and the examples — it is
/// a format check, not a full client.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(body) = comment.strip_prefix("TYPE ") {
                let mut it = body.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: bad metric name in TYPE: {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
                }
                if typed.insert(name.to_owned(), kind.to_owned()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
            } else if let Some(body) = comment.strip_prefix("HELP ") {
                let name = body.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: bad metric name in HELP: {name:?}"));
                }
            }
            continue;
        }
        validate_sample_line(line, lineno, &typed)?;
        samples += 1;
    }
    Ok(ExpositionStats {
        samples,
        families: typed.len(),
    })
}

fn validate_sample_line(
    line: &str,
    lineno: usize,
    typed: &BTreeMap<String, String>,
) -> Result<(), String> {
    let name_end = line
        .char_indices()
        .find(|&(i, c)| !is_name_char(c, i == 0))
        .map(|(i, _)| i)
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if name.is_empty() {
        return Err(format!(
            "line {lineno}: sample has no metric name: {line:?}"
        ));
    }
    let mut rest = &line[name_end..];
    if rest.starts_with('{') {
        let consumed = validate_labels(rest, lineno)?;
        rest = &rest[consumed..];
    }
    let mut fields = rest.split_whitespace();
    let Some(value) = fields.next() else {
        return Err(format!("line {lineno}: sample {name} has no value"));
    };
    if value.parse::<f64>().is_err() {
        return Err(format!("line {lineno}: unparseable value {value:?}"));
    }
    if let Some(timestamp) = fields.next() {
        if timestamp.parse::<i64>().is_err() {
            return Err(format!(
                "line {lineno}: unparseable timestamp {timestamp:?}"
            ));
        }
    }
    if fields.next().is_some() {
        return Err(format!("line {lineno}: trailing garbage on sample {name}"));
    }
    // Samples must belong to a declared family. Summary/histogram
    // child series drop their suffix to find it; counters carry
    // `_total` in the family name itself.
    let family_known = typed.contains_key(name)
        || ["_sum", "_count", "_bucket"]
            .iter()
            .filter_map(|suffix| name.strip_suffix(suffix))
            .any(|base| typed.contains_key(base));
    if !family_known {
        return Err(format!("line {lineno}: sample {name} has no # TYPE line"));
    }
    Ok(())
}

/// Validates `{k="v",...}` with exposition escaping; returns the byte
/// length consumed including both braces.
fn validate_labels(s: &str, lineno: usize) -> Result<usize, String> {
    let bytes = s.as_bytes();
    let mut i = 1; // past '{'
    loop {
        if i >= bytes.len() {
            return Err(format!("line {lineno}: unterminated label set"));
        }
        if bytes[i] == b'}' {
            return Ok(i + 1);
        }
        // Label name.
        let start = i;
        while i < bytes.len() && is_label_char(bytes[i] as char, i == start) {
            i += 1;
        }
        if i == start {
            return Err(format!("line {lineno}: empty label name"));
        }
        if bytes.get(i) != Some(&b'=') || bytes.get(i + 1) != Some(&b'"') {
            return Err(format!("line {lineno}: label missing =\"...\""));
        }
        i += 2;
        // Escaped value: \\, \", \n are the legal escapes.
        loop {
            match bytes.get(i) {
                None => return Err(format!("line {lineno}: unterminated label value")),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => match bytes.get(i + 1) {
                    Some(b'\\') | Some(b'"') | Some(b'n') => i += 2,
                    _ => return Err(format!("line {lineno}: bad escape in label value")),
                },
                Some(_) => i += 1,
            }
        }
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(i + 1),
            _ => return Err(format!("line {lineno}: expected , or }} after label")),
        }
    }
}

fn is_name_char(c: char, first: bool) -> bool {
    if first {
        c.is_ascii_alphabetic() || c == '_' || c == ':'
    } else {
        c.is_ascii_alphanumeric() || c == '_' || c == ':'
    }
}

fn is_label_char(c: char, first: bool) -> bool {
    if first {
        c.is_ascii_alphabetic() || c == '_'
    } else {
        c.is_ascii_alphanumeric() || c == '_'
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty() && name.char_indices().all(|(i, c)| is_name_char(c, i == 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LiveOptions, LivePlane, Telemetry};
    use std::io::{Read, Write};
    use std::net::{Ipv4Addr, SocketAddr, TcpStream};

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn plane_on_localhost(t: &Telemetry) -> LivePlane {
        LivePlane::start(
            t,
            LiveOptions {
                http_addr: Some(SocketAddr::from((Ipv4Addr::LOCALHOST, 0))),
                sample_interval: std::time::Duration::from_millis(10),
                ring_len: 32,
            },
        )
        .expect("bind localhost:0")
    }

    #[test]
    fn endpoints_serve_metrics_health_snapshot_profile() {
        let t = Telemetry::enabled();
        t.counter_with("frames_processed", &[("camera", "0")])
            .add(12);
        {
            let _run = t.span("run");
            let _stage = t.span("stage.extraction");
        }
        let plane = plane_on_localhost(&t);
        let addr = plane.local_addr().expect("bound");
        plane.set_ready(true);
        plane.sample_now();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let stats = validate_exposition(&body).expect("valid exposition");
        assert!(stats.samples > 0 && stats.families > 0);
        assert!(body.contains("dievent_frames_processed_total{camera=\"0\"} 12"));

        assert_eq!(get(addr, "/healthz").0, 200);
        assert_eq!(get(addr, "/readyz").0, 200);

        let (status, body) = get(addr, "/snapshot");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).expect("json");
        assert_eq!(v["ready"], serde_json::json!(true));
        assert!(v["uptime_s"].as_f64().unwrap_or(-1.0) >= 0.0);

        let (status, body) = get(addr, "/profile");
        assert_eq!(status, 200);
        assert!(body.contains("run;stage.extraction"), "{body}");

        assert_eq!(get(addr, "/nope").0, 404);
    }

    #[test]
    fn readyz_is_503_until_ready_and_after_close() {
        let t = Telemetry::enabled();
        let mut plane = plane_on_localhost(&t);
        let addr = plane.local_addr().expect("bound");
        assert_eq!(get(addr, "/readyz").0, 503, "not ready before open");
        plane.set_ready(true);
        assert_eq!(get(addr, "/readyz").0, 200);
        let probe = plane.probe();
        assert!(plane.shutdown_join(std::time::Duration::from_secs(2)));
        assert_eq!(
            probe.ready_when_closed(),
            Some(false),
            "readiness must drop before the socket closes"
        );
        assert_eq!(probe.threads_alive(), 0);
    }

    #[test]
    fn snapshot_window_query_limits_the_ring() {
        let t = Telemetry::enabled();
        let plane = plane_on_localhost(&t);
        let addr = plane.local_addr().expect("bound");
        for i in 0..5u64 {
            t.counter("ticks").add(i + 1);
            std::thread::sleep(std::time::Duration::from_millis(2));
            plane.sample_now();
        }
        let all: serde_json::Value = serde_json::from_str(&get(addr, "/snapshot").1).expect("json");
        let two: serde_json::Value =
            serde_json::from_str(&get(addr, "/snapshot?window=2").1).expect("json");
        let all_n = all["windows"].as_array().map(|a| a.len()).unwrap_or(0);
        let two_n = two["windows"].as_array().map(|a| a.len()).unwrap_or(0);
        assert!(all_n >= 5, "{all_n}");
        assert_eq!(two_n, 2);
    }

    #[test]
    fn snapshot_rejects_malformed_window_values_with_400() {
        let t = Telemetry::enabled();
        let plane = plane_on_localhost(&t);
        let addr = plane.local_addr().expect("bound");
        plane.sample_now();
        for bad in [
            "/snapshot?window=abc",
            "/snapshot?window=0",
            "/snapshot?window=-3",
            "/snapshot?window=99999999999999999999999999",
            "/snapshot?window=",
        ] {
            let (status, body) = get(addr, bad);
            assert_eq!(status, 400, "{bad} answered {status}: {body}");
        }
        // A well-formed window (and no window at all) still works.
        assert_eq!(get(addr, "/snapshot?window=2").0, 200);
        assert_eq!(get(addr, "/snapshot").0, 200);
        // Unrelated query keys are ignored, not rejected.
        assert_eq!(get(addr, "/snapshot?other=1").0, 200);
    }

    #[test]
    fn lineage_is_404_until_attached_then_serves_the_breakdown() {
        let t = Telemetry::enabled();
        let plane = plane_on_localhost(&t);
        let addr = plane.local_addr().expect("bound");
        assert_eq!(get(addr, "/lineage").0, 404, "no tracer attached yet");

        let tracer = crate::lineage::LineageTracer::enabled(&t, 2, 16);
        plane.attach_lineage(tracer.clone());
        for frame in 0..3u64 {
            for camera in 0..2 {
                tracer.ingest(camera, frame);
                tracer.extract_start(camera, frame);
                tracer.extract_end(camera, frame);
            }
            let start = tracer.now_s();
            tracer.fused(frame, start, tracer.now_s());
        }
        let (status, body) = get(addr, "/lineage");
        assert_eq!(status, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).expect("json");
        assert_eq!(v["enabled"], serde_json::json!(true));
        assert_eq!(v["summary"]["frames_traced"], serde_json::json!(3));
        let stages = v["summary"]["stages"].as_array().expect("stages");
        let names: Vec<&str> = stages.iter().filter_map(|s| s["stage"].as_str()).collect();
        for needle in ["queue_wait", "extract", "reorder_hold", "fuse", "total"] {
            assert!(names.contains(&needle), "missing stage {needle}: {names:?}");
        }
        let exemplars = v["exemplars"].as_array().expect("exemplars");
        assert!(!exemplars.is_empty());
        assert!(exemplars[0]["lanes"]
            .as_array()
            .is_some_and(|l| !l.is_empty()));
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let t = Telemetry::enabled();
        let plane = plane_on_localhost(&t);
        let addr = plane.local_addr().expect("bound");
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn slow_client_does_not_starve_other_probes() {
        let t = Telemetry::enabled();
        let plane = plane_on_localhost(&t);
        let addr = plane.local_addr().expect("bound");
        plane.set_ready(true);
        // A client that connects and sends nothing occupies a handler
        // for the full socket read timeout (~2 s). Requests arriving
        // behind it must still be answered promptly.
        let stalled = TcpStream::connect(addr).expect("connect");
        std::thread::sleep(std::time::Duration::from_millis(50));
        let asked = std::time::Instant::now();
        assert_eq!(get(addr, "/readyz").0, 200);
        assert!(
            asked.elapsed() < std::time::Duration::from_secs(1),
            "readyz stalled behind a slow client: {:?}",
            asked.elapsed()
        );
        drop(stalled);
    }

    #[test]
    fn validator_accepts_own_output_and_rejects_garbage() {
        let t = Telemetry::enabled();
        t.counter_with("frames_processed", &[("camera", "0")])
            .add(3);
        t.gauge("participants").set(4.0);
        t.histogram("fusion_seconds").observe(0.01);
        let stats = validate_exposition(&t.render_prometheus()).expect("own output valid");
        assert!(stats.samples >= 5, "{stats:?}");

        assert!(validate_exposition("no_type_line 1").is_err());
        assert!(validate_exposition("# TYPE m bogus\nm 1").is_err());
        assert!(validate_exposition("# TYPE m counter\nm{unclosed 1").is_err());
        assert!(validate_exposition("# TYPE m counter\nm not_a_number").is_err());
        assert!(
            validate_exposition("# TYPE m counter\n# TYPE m counter\nm 1").is_err(),
            "duplicate TYPE"
        );
        let escaped = "# TYPE m counter\nm{path=\"a\\\\b\\\"c\\nd\"} 1";
        assert!(validate_exposition(escaped).is_ok(), "escapes are legal");
    }
}
