//! Golden-file conformance test for the Prometheus text exposition.
//!
//! The registry sample below is fully deterministic (no spans — their
//! durations are wall-clock), so the rendered exposition must be
//! byte-identical run to run. Regenerate after an intentional format
//! change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p dievent-telemetry --test prometheus_golden
//! ```
//!
//! and review the diff — the golden file is the conformance contract
//! (`_total` suffixes, HELP/TYPE lines, summary quantiles, escaping).

use dievent_telemetry::{validate_exposition, Telemetry};

fn sample() -> Telemetry {
    let t = Telemetry::enabled();
    t.counter_with("frames_processed", &[("camera", "0")])
        .add(40);
    t.counter_with("frames_processed", &[("camera", "1")])
        .add(38);
    t.counter("lookat_tests").add(1200);
    // Hostile label value: backslash, quote, newline.
    t.counter_with("odd", &[("path", "a\\b\"c\nd")]).add(1);
    t.gauge("participants").set(4.0);
    t.gauge_with("session.queue_depth", &[("camera", "0")])
        .set(3.0);
    // 1 ms .. 100 ms uniform: quantiles land on fixed bucket midpoints.
    let h = t.histogram("fusion_seconds");
    for i in 1..=100 {
        h.observe(i as f64 * 1e-3);
    }
    t
}

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");

#[test]
fn exposition_matches_golden_file() {
    let got = sample().render_prometheus();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden file");
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present (UPDATE_GOLDEN=1 regenerates it)");
    assert_eq!(
        got, want,
        "exposition drifted from tests/golden/prometheus.txt; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_file_passes_the_validator() {
    let text = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    let stats = validate_exposition(&text).expect("golden exposition is valid");
    assert!(stats.samples >= 9, "{stats:?}");
    assert!(stats.families >= 5, "{stats:?}");
}
