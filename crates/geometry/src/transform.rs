//! Rigid transforms — the paper's `ᵢTⱼ`.
//!
//! Equation 1 of the paper transforms a vector expressed in frame `Fⱼ`
//! into frame `Fᵢ`: `ᵢV = ᵢTⱼ · ⱼV`. [`Iso3`] is exactly that operator:
//! a proper rotation followed by a translation (an element of SE(3)).

use crate::{Mat3, Quat, Ray, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A rigid (isometric) transform: rotation then translation.
///
/// `Iso3` maps points and directions from a *source* frame into a
/// *destination* frame. In the paper's notation an `ᵢTⱼ` has source `Fⱼ`
/// and destination `Fᵢ`; composing `ᵢTⱼ · ⱼTₖ` yields `ᵢTₖ` (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Iso3 {
    /// Rotation part.
    pub rotation: Mat3,
    /// Translation part (origin of the source frame expressed in the
    /// destination frame).
    pub translation: Vec3,
}

impl Default for Iso3 {
    fn default() -> Self {
        Iso3::IDENTITY
    }
}

impl Iso3 {
    /// The identity transform.
    pub const IDENTITY: Iso3 = Iso3 {
        rotation: Mat3::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a transform from rotation and translation.
    pub const fn new(rotation: Mat3, translation: Vec3) -> Self {
        Iso3 {
            rotation,
            translation,
        }
    }

    /// Pure translation.
    pub const fn from_translation(t: Vec3) -> Self {
        Iso3 {
            rotation: Mat3::IDENTITY,
            translation: t,
        }
    }

    /// Pure rotation.
    pub const fn from_rotation(r: Mat3) -> Self {
        Iso3 {
            rotation: r,
            translation: Vec3::ZERO,
        }
    }

    /// Creates a transform from a unit quaternion and translation.
    pub fn from_quat(q: Quat, t: Vec3) -> Self {
        Iso3 {
            rotation: q.to_mat3(),
            translation: t,
        }
    }

    /// Transforms a *point* (rotates then translates).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Transforms a *direction* (rotates only — Eq. 1 applied to a free
    /// vector such as a gaze direction).
    #[inline]
    pub fn transform_dir(&self, v: Vec3) -> Vec3 {
        self.rotation * v
    }

    /// Transforms a ray: its origin as a point, its direction as a
    /// direction.
    pub fn transform_ray(&self, ray: &Ray) -> Ray {
        Ray::new(
            self.transform_point(ray.origin),
            self.transform_dir(ray.dir),
        )
    }

    /// The inverse transform: if `self` is `ᵢTⱼ` this returns `ⱼTᵢ`.
    pub fn inverse(&self) -> Iso3 {
        let rt = self.rotation.transpose();
        Iso3 {
            rotation: rt,
            translation: -(rt * self.translation),
        }
    }

    /// Approximate equality within `tol` on every matrix and vector entry.
    pub fn approx_eq(&self, other: &Iso3, tol: f64) -> bool {
        self.rotation.approx_eq(&other.rotation, tol)
            && self.translation.approx_eq(other.translation, tol)
    }

    /// Returns `true` when the rotation part is a proper rotation.
    pub fn is_rigid(&self, tol: f64) -> bool {
        self.rotation.is_rotation(tol) && self.translation.is_finite()
    }

    /// Builds the pose of an observer at `eye` looking toward `target`.
    ///
    /// The returned transform maps observer-local coordinates (+X forward,
    /// +Y left, +Z up) into the frame `eye`/`target` are expressed in.
    /// `up_hint` resolves the roll ambiguity (usually world +Z).
    pub fn look_at(eye: Vec3, target: Vec3, up_hint: Vec3) -> Option<Iso3> {
        let forward = (target - eye).try_normalized()?;
        let left = up_hint.cross(forward).try_normalized()?;
        let up = forward.cross(left);
        Some(Iso3 {
            rotation: Mat3::from_cols(forward, left, up),
            translation: eye,
        })
    }
}

impl Mul for Iso3 {
    type Output = Iso3;
    /// Composition: `(a * b).transform_point(p) == a.transform_point(b.transform_point(p))`.
    ///
    /// In frame notation: `ᵢTⱼ * ⱼTₖ = ᵢTₖ` (paper Eq. 2).
    fn mul(self, rhs: Iso3) -> Iso3 {
        Iso3 {
            rotation: self.rotation * rhs.rotation,
            translation: self.rotation * rhs.translation + self.translation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn arbitrary_iso() -> Iso3 {
        Iso3::new(
            Mat3::rotation_axis_angle(Vec3::new(0.3, 1.0, -0.2), 0.9),
            Vec3::new(1.0, -2.0, 0.5),
        )
    }

    #[test]
    fn identity_is_neutral() {
        let p = Vec3::new(3.0, 1.0, -4.0);
        assert!(Iso3::IDENTITY.transform_point(p).approx_eq(p, 1e-12));
        let t = arbitrary_iso();
        assert!((t * Iso3::IDENTITY).approx_eq(&t, 1e-12));
        assert!((Iso3::IDENTITY * t).approx_eq(&t, 1e-12));
    }

    #[test]
    fn inverse_round_trips_points_and_dirs() {
        let t = arbitrary_iso();
        let inv = t.inverse();
        let p = Vec3::new(0.4, 2.0, -1.0);
        assert!(inv.transform_point(t.transform_point(p)).approx_eq(p, 1e-9));
        assert!(inv.transform_dir(t.transform_dir(p)).approx_eq(p, 1e-9));
        assert!((t * inv).approx_eq(&Iso3::IDENTITY, 1e-9));
    }

    #[test]
    fn composition_associates_with_application() {
        // Paper Eq. 2: ¹V = ¹T₂ · ²T₄ · ⁴V — composing transforms must
        // equal sequential application.
        let t12 = arbitrary_iso();
        let t24 = Iso3::new(Mat3::rotation_z(FRAC_PI_2), Vec3::new(0.0, 3.0, 0.0));
        let v = Vec3::new(1.0, 1.0, 1.0);
        let composed = (t12 * t24).transform_point(v);
        let sequential = t12.transform_point(t24.transform_point(v));
        assert!(composed.approx_eq(sequential, 1e-9));
    }

    #[test]
    fn directions_ignore_translation() {
        let t = Iso3::from_translation(Vec3::new(100.0, -50.0, 10.0));
        let v = Vec3::new(0.0, 1.0, 0.0);
        assert!(t.transform_dir(v).approx_eq(v, 1e-12));
        assert!(t
            .transform_point(v)
            .approx_eq(Vec3::new(100.0, -49.0, 10.0), 1e-12));
    }

    #[test]
    fn transform_ray_moves_origin_and_rotates_dir() {
        let t = Iso3::new(Mat3::rotation_z(FRAC_PI_2), Vec3::new(1.0, 0.0, 0.0));
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let tr = t.transform_ray(&r);
        assert!(tr.origin.approx_eq(Vec3::new(1.0, 0.0, 0.0), 1e-12));
        assert!(tr.dir.approx_eq(Vec3::Y, 1e-12));
    }

    #[test]
    fn look_at_faces_target() {
        let eye = Vec3::new(0.0, 0.0, 2.5);
        let target = Vec3::new(3.0, 1.0, 0.8);
        let pose = Iso3::look_at(eye, target, Vec3::Z).unwrap();
        // Local +X (forward) must map onto the eye→target direction.
        let fwd_world = pose.transform_dir(Vec3::X);
        assert!(fwd_world.approx_eq((target - eye).normalized(), 1e-9));
        // Origin maps to eye.
        assert!(pose.transform_point(Vec3::ZERO).approx_eq(eye, 1e-12));
        assert!(pose.is_rigid(1e-9));
    }

    #[test]
    fn look_at_degenerates_gracefully() {
        // Looking straight up with an up hint parallel to the view axis.
        assert!(Iso3::look_at(Vec3::ZERO, Vec3::Z, Vec3::Z).is_none());
        // Zero-length view vector.
        assert!(Iso3::look_at(Vec3::X, Vec3::X, Vec3::Z).is_none());
    }

    #[test]
    fn rigid_transform_preserves_distance() {
        let t = arbitrary_iso();
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 1.0);
        let d0 = a.distance(b);
        let d1 = t.transform_point(a).distance(t.transform_point(b));
        assert!((d0 - d1).abs() < 1e-9);
    }
}
