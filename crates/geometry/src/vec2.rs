//! Two-dimensional vectors (image coordinates and top-view maps).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-component double-precision vector.
///
/// Used for pixel coordinates (`x` right, `y` down, in pixels) and for the
/// plan-view positions that build the paper's look-at top view maps.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// The scalar (z) component of the 2D cross product.
    #[inline]
    pub fn perp_dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in this direction, or `None` for a
    /// (near-)zero vector.
    #[inline]
    pub fn try_normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Angle of the vector from the +X axis, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates the vector counter-clockwise by `theta` radians.
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Returns `true` when `self` and `other` agree component-wise within `tol`.
    #[inline]
    pub fn approx_eq(self, other: Vec2, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol && (self.y - other.y).abs() <= tol
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn rotation_by_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!(v.approx_eq(Vec2::new(0.0, 1.0), 1e-12));
    }

    #[test]
    fn perp_dot_sign_encodes_orientation() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert!(a.perp_dot(b) > 0.0);
        assert!(b.perp_dot(a) < 0.0);
    }

    #[test]
    fn angle_of_axes() {
        assert!(Vec2::new(1.0, 0.0).angle().abs() < 1e-12);
        assert!((Vec2::new(0.0, 1.0).angle() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(4.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn try_normalized_rejects_zero() {
        assert!(Vec2::ZERO.try_normalized().is_none());
        let n = Vec2::new(3.0, 4.0).try_normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }
}
