//! Planes — used for the table surface and image planes.

use crate::{Ray, Vec3};
use serde::{Deserialize, Serialize};

/// A plane `normal · x = offset` with unit normal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plane {
    /// Unit normal vector.
    pub normal: Vec3,
    /// Signed offset from the origin along the normal.
    pub offset: f64,
}

impl Plane {
    /// Creates a plane from a (not necessarily unit) normal and a point on
    /// the plane. Returns `None` for a degenerate normal.
    pub fn from_point_normal(point: Vec3, normal: Vec3) -> Option<Self> {
        let n = normal.try_normalized()?;
        Some(Plane {
            normal: n,
            offset: n.dot(point),
        })
    }

    /// The horizontal plane `z = height` (e.g. the table surface).
    pub fn horizontal(height: f64) -> Self {
        Plane {
            normal: Vec3::Z,
            offset: height,
        }
    }

    /// Signed distance from `p` to the plane (positive on the normal side).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        self.normal.dot(p) - self.offset
    }

    /// Orthogonal projection of `p` onto the plane.
    pub fn project(&self, p: Vec3) -> Vec3 {
        p - self.normal * self.signed_distance(p)
    }

    /// Intersection of a ray with the plane: returns the ray parameter
    /// `d ≥ 0`, or `None` when parallel or behind the origin.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<f64> {
        let denom = self.normal.dot(ray.dir);
        if denom.abs() <= crate::EPS {
            return None;
        }
        let d = (self.offset - self.normal.dot(ray.origin)) / denom;
        (d >= 0.0).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_plane_distances() {
        let table = Plane::horizontal(0.75);
        assert!((table.signed_distance(Vec3::new(0.0, 0.0, 1.75)) - 1.0).abs() < 1e-12);
        assert!((table.signed_distance(Vec3::new(3.0, 2.0, 0.75))).abs() < 1e-12);
    }

    #[test]
    fn projection_lands_on_plane() {
        let p =
            Plane::from_point_normal(Vec3::new(1.0, 1.0, 1.0), Vec3::new(1.0, 2.0, 2.0)).unwrap();
        let q = p.project(Vec3::new(5.0, -3.0, 2.0));
        assert!(p.signed_distance(q).abs() < 1e-9);
    }

    #[test]
    fn ray_hits_plane_in_front_only() {
        let floor = Plane::horizontal(0.0);
        let down = Ray::new(Vec3::new(0.0, 0.0, 2.5), Vec3::new(0.0, 0.0, -1.0));
        assert!((floor.intersect_ray(&down).unwrap() - 2.5).abs() < 1e-12);
        let up = Ray::new(Vec3::new(0.0, 0.0, 2.5), Vec3::Z);
        assert!(floor.intersect_ray(&up).is_none());
        let parallel = Ray::new(Vec3::new(0.0, 0.0, 2.5), Vec3::X);
        assert!(floor.intersect_ray(&parallel).is_none());
    }

    #[test]
    fn degenerate_normal_rejected() {
        assert!(Plane::from_point_normal(Vec3::ZERO, Vec3::ZERO).is_none());
    }
}
