//! Rays — the paper's gaze lines (Equation 4).
//!
//! "Generically, any line can be defined as `x = o + d·l`" — `o` is the
//! origin of the line (a participant's head position), `l` its direction
//! (the gaze vector), and `d` the distance along it.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// A ray (half-line) `x(d) = origin + d · dir`, `d ≥ 0`.
///
/// The direction is stored as given; most consumers normalize on
/// construction via [`Ray::new_normalized`]. A gaze ray's origin is the
/// eye/head center and its direction the estimated gaze vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Starting point `o`.
    pub origin: Vec3,
    /// Direction `l` (not necessarily unit length).
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray from origin and direction.
    pub const fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray { origin, dir }
    }

    /// Creates a ray with a normalized direction, or `None` if the
    /// direction is (near-)zero.
    pub fn new_normalized(origin: Vec3, dir: Vec3) -> Option<Self> {
        Some(Ray {
            origin,
            dir: dir.try_normalized()?,
        })
    }

    /// The point at parameter `d` along the ray (Eq. 4).
    #[inline]
    pub fn at(&self, d: f64) -> Vec3 {
        self.origin + self.dir * d
    }

    /// Parameter of the point on the supporting line closest to `p`
    /// (may be negative: behind the origin).
    pub fn closest_param(&self, p: Vec3) -> f64 {
        let n2 = self.dir.norm_sq();
        if n2 <= crate::EPS {
            return 0.0;
        }
        (p - self.origin).dot(self.dir) / n2
    }

    /// The point on the *ray* (clamped to `d ≥ 0`) closest to `p`.
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        self.at(self.closest_param(p).max(0.0))
    }

    /// Distance from `p` to the ray.
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Angular deviation (radians) between the ray direction and the
    /// direction from the ray origin to `p`.
    ///
    /// Used by tolerance-based gaze checks: a person "looks at" a target
    /// when this deviation is below a visual-cone threshold.
    pub fn angular_deviation_to(&self, p: Vec3) -> f64 {
        self.dir.angle_to(p - self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert!(r.at(0.0).approx_eq(r.origin, 1e-12));
        assert!(r.at(1.5).approx_eq(Vec3::new(1.0, 3.0, 0.0), 1e-12));
    }

    #[test]
    fn new_normalized_rejects_zero_dir() {
        assert!(Ray::new_normalized(Vec3::ZERO, Vec3::ZERO).is_none());
        let r = Ray::new_normalized(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0)).unwrap();
        assert!((r.dir.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closest_point_projects_orthogonally() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let p = Vec3::new(3.0, 4.0, 0.0);
        assert!(r
            .closest_point(p)
            .approx_eq(Vec3::new(3.0, 0.0, 0.0), 1e-12));
        assert!((r.distance_to_point(p) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn closest_point_clamps_behind_origin() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let behind = Vec3::new(-5.0, 1.0, 0.0);
        assert!(r.closest_point(behind).approx_eq(Vec3::ZERO, 1e-12));
    }

    #[test]
    fn angular_deviation_zero_on_axis() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(r.angular_deviation_to(Vec3::new(10.0, 0.0, 0.0)).abs() < 1e-12);
        let dev = r.angular_deviation_to(Vec3::new(1.0, 1.0, 0.0));
        assert!((dev - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn degenerate_direction_param_is_zero() {
        let r = Ray::new(Vec3::new(1.0, 1.0, 1.0), Vec3::ZERO);
        assert_eq!(r.closest_param(Vec3::new(9.0, 9.0, 9.0)), 0.0);
    }
}
