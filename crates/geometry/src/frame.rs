//! Reference-frame graph — resolving the paper's `ᵢTⱼ` between any frames.
//!
//! Section II-D step 1–2 of the paper assigns a reference frame to every
//! camera (`F1`, `F2`, …) and every tracked head (`¹F3`, `²F4`, …), each
//! defined *relative to* some parent frame, then chains transforms
//! (Eq. 2) to express all gaze rays and head positions in one common
//! frame. [`FrameGraph`] is that machinery: frames form a forest where
//! each frame stores its pose w.r.t. its parent, and
//! [`FrameGraph::transform`] computes `ᵢTⱼ` for any two frames in the
//! same tree by walking to their common root.

use crate::{Iso3, Ray, Vec3};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a frame inside a [`FrameGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(usize);

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Errors raised by frame-graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The requested frame id does not exist in this graph.
    UnknownFrame(String),
    /// The two frames live in disconnected trees, so no `ᵢTⱼ` exists.
    Disconnected {
        /// First frame's name.
        from: String,
        /// Second frame's name.
        to: String,
    },
    /// A frame with this name already exists.
    DuplicateName(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::UnknownFrame(n) => write!(f, "unknown frame: {n}"),
            FrameError::Disconnected { from, to } => {
                write!(
                    f,
                    "frames {from} and {to} are not connected by any transform chain"
                )
            }
            FrameError::DuplicateName(n) => write!(f, "frame name already registered: {n}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[derive(Debug, Clone)]
struct FrameNode {
    name: String,
    /// Pose of this frame w.r.t. its parent: maps local → parent.
    pose_in_parent: Iso3,
    parent: Option<FrameId>,
    depth: usize,
}

/// A forest of named reference frames with relative poses.
///
/// ```
/// use dievent_geometry::{FrameGraph, Iso3, Mat3, Vec3};
///
/// let mut g = FrameGraph::new();
/// let world = g.add_root("world");
/// let c1 = g.add_frame("C1", world,
///     Iso3::new(Mat3::rotation_z(std::f64::consts::PI), Vec3::new(4.0, 0.0, 2.5))).unwrap();
/// let head = g.add_frame("P1-head", c1,
///     Iso3::from_translation(Vec3::new(2.0, 0.1, -0.4))).unwrap();
/// // ᵂT_head: where is the head in the world?
/// let t = g.transform(world, head).unwrap();
/// let head_in_world = t.transform_point(Vec3::ZERO);
/// assert!((head_in_world.z - 2.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameGraph {
    nodes: Vec<FrameNode>,
    by_name: HashMap<String, FrameId>,
}

impl FrameGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames registered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when no frames are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a root frame (no parent). Root frames anchor independent
    /// trees; typically there is a single `world` root.
    ///
    /// # Panics
    /// Panics on duplicate names — roots are created during setup where
    /// a duplicate is a programming error.
    pub fn add_root(&mut self, name: &str) -> FrameId {
        self.try_add(name, None, Iso3::IDENTITY)
            // lint:allow(no_panic): documented `# Panics` contract; `try_add` is the fallible form
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds a frame under `parent` with the given pose (local → parent).
    pub fn add_frame(
        &mut self,
        name: &str,
        parent: FrameId,
        pose_in_parent: Iso3,
    ) -> Result<FrameId, FrameError> {
        if parent.0 >= self.nodes.len() {
            return Err(FrameError::UnknownFrame(format!("{parent}")));
        }
        self.try_add(name, Some(parent), pose_in_parent)
    }

    fn try_add(
        &mut self,
        name: &str,
        parent: Option<FrameId>,
        pose: Iso3,
    ) -> Result<FrameId, FrameError> {
        if self.by_name.contains_key(name) {
            return Err(FrameError::DuplicateName(name.to_owned()));
        }
        let depth = parent.map_or(0, |p| self.nodes[p.0].depth + 1);
        let id = FrameId(self.nodes.len());
        self.nodes.push(FrameNode {
            name: name.to_owned(),
            pose_in_parent: pose,
            parent,
            depth,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks up a frame by name.
    pub fn find(&self, name: &str) -> Option<FrameId> {
        self.by_name.get(name).copied()
    }

    /// The name of a frame.
    pub fn name(&self, id: FrameId) -> Option<&str> {
        self.nodes.get(id.0).map(|n| n.name.as_str())
    }

    /// Updates the pose of `frame` relative to its parent (e.g. a tracked
    /// head pose refreshed every video frame).
    pub fn set_pose(&mut self, frame: FrameId, pose_in_parent: Iso3) -> Result<(), FrameError> {
        match self.nodes.get_mut(frame.0) {
            Some(n) => {
                n.pose_in_parent = pose_in_parent;
                Ok(())
            }
            None => Err(FrameError::UnknownFrame(format!("{frame}"))),
        }
    }

    /// The pose of `frame` in its root frame (chain of `pose_in_parent`).
    pub fn pose_in_root(&self, frame: FrameId) -> Result<Iso3, FrameError> {
        let mut node = self
            .nodes
            .get(frame.0)
            .ok_or_else(|| FrameError::UnknownFrame(format!("{frame}")))?;
        let mut acc = node.pose_in_parent;
        while let Some(p) = node.parent {
            node = &self.nodes[p.0];
            acc = node.pose_in_parent * acc;
        }
        Ok(acc)
    }

    fn root_of(&self, frame: FrameId) -> FrameId {
        let mut id = frame;
        while let Some(p) = self.nodes[id.0].parent {
            id = p;
        }
        id
    }

    /// Computes `ᵢTⱼ` — the transform taking coordinates expressed in
    /// frame `j` into frame `i` (paper Eq. 1–2).
    pub fn transform(&self, i: FrameId, j: FrameId) -> Result<Iso3, FrameError> {
        if i.0 >= self.nodes.len() {
            return Err(FrameError::UnknownFrame(format!("{i}")));
        }
        if j.0 >= self.nodes.len() {
            return Err(FrameError::UnknownFrame(format!("{j}")));
        }
        if self.root_of(i) != self.root_of(j) {
            return Err(FrameError::Disconnected {
                from: self.nodes[i.0].name.clone(),
                to: self.nodes[j.0].name.clone(),
            });
        }
        // rootT_i and rootT_j share the root, so iTj = (rootT_i)⁻¹ · rootT_j.
        let root_t_i = self.pose_in_root(i)?;
        let root_t_j = self.pose_in_root(j)?;
        Ok(root_t_i.inverse() * root_t_j)
    }

    /// Transforms a point expressed in `from` into `to` coordinates.
    pub fn transform_point(&self, to: FrameId, from: FrameId, p: Vec3) -> Result<Vec3, FrameError> {
        Ok(self.transform(to, from)?.transform_point(p))
    }

    /// Transforms a free vector (e.g. a gaze direction) from `from` into
    /// `to` coordinates — the paper's Eq. 1 applied to `ⱼV`.
    pub fn transform_dir(&self, to: FrameId, from: FrameId, v: Vec3) -> Result<Vec3, FrameError> {
        Ok(self.transform(to, from)?.transform_dir(v))
    }

    /// Transforms a ray from `from` into `to` coordinates — used to bring
    /// every participant's gaze ray into the common reference frame before
    /// the Eq. 5 intersection test.
    pub fn transform_ray(&self, to: FrameId, from: FrameId, ray: &Ray) -> Result<Ray, FrameError> {
        Ok(self.transform(to, from)?.transform_ray(ray))
    }

    /// Iterates over `(id, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FrameId, &str)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (FrameId(i), n.name.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat3;
    use std::f64::consts::{FRAC_PI_2, PI};

    /// Builds the paper's Fig. 6 setup: two cameras facing each other
    /// across a 6 m room at 2.5 m height, a head in front of each camera.
    fn fig6_graph() -> (FrameGraph, FrameId, FrameId, FrameId, FrameId, FrameId) {
        let mut g = FrameGraph::new();
        let world = g.add_root("world");
        // C1 at origin side, looking +X; C2 opposite, looking −X.
        let f1 = g
            .add_frame(
                "F1",
                world,
                Iso3::from_translation(Vec3::new(0.0, 0.0, 2.5)),
            )
            .unwrap();
        let f2 = g
            .add_frame(
                "F2",
                world,
                Iso3::new(Mat3::rotation_z(PI), Vec3::new(6.0, 0.0, 2.5)),
            )
            .unwrap();
        // P1's head 2 m in front of C1 (camera-local +X), 1.3 m below.
        let f3 = g
            .add_frame("1F3", f1, Iso3::from_translation(Vec3::new(2.0, 0.0, -1.3)))
            .unwrap();
        // P2's head 2 m in front of C2.
        let f4 = g
            .add_frame("2F4", f2, Iso3::from_translation(Vec3::new(2.0, 0.0, -1.3)))
            .unwrap();
        (g, world, f1, f2, f3, f4)
    }

    #[test]
    fn identity_transform_to_self() {
        let (g, world, ..) = fig6_graph();
        let t = g.transform(world, world).unwrap();
        assert!(t.approx_eq(&Iso3::IDENTITY, 1e-12));
    }

    #[test]
    fn eq2_chain_matches_manual_composition() {
        // ¹V = ¹T₂ · ²T₄ · ⁴V (paper Eq. 2)
        let (g, _world, f1, f2, _f3, f4) = fig6_graph();
        let t12 = g.transform(f1, f2).unwrap();
        let t24 = g.transform(f2, f4).unwrap();
        let t14 = g.transform(f1, f4).unwrap();
        assert!((t12 * t24).approx_eq(&t14, 1e-9));
    }

    #[test]
    fn transform_is_inverse_symmetric() {
        let (g, _, f1, f2, ..) = fig6_graph();
        let t12 = g.transform(f1, f2).unwrap();
        let t21 = g.transform(f2, f1).unwrap();
        assert!((t12 * t21).approx_eq(&Iso3::IDENTITY, 1e-9));
    }

    #[test]
    fn head_positions_meet_in_world() {
        let (g, world, _f1, _f2, f3, f4) = fig6_graph();
        let p1 = g.transform_point(world, f3, Vec3::ZERO).unwrap();
        let p2 = g.transform_point(world, f4, Vec3::ZERO).unwrap();
        // C1 at x=0 looking +X puts P1 at x=2; C2 at x=6 looking −X puts P2 at x=4.
        assert!(p1.approx_eq(Vec3::new(2.0, 0.0, 1.2), 1e-9));
        assert!(p2.approx_eq(Vec3::new(4.0, 0.0, 1.2), 1e-9));
    }

    #[test]
    fn gaze_across_cameras_hits_other_head() {
        // End-to-end Fig. 6: P1 gazes forward (toward P2 across the table);
        // transform the gaze into F1, the head of P2 into F1, intersect.
        let (g, _world, f1, _f2, f3, f4) = fig6_graph();
        // P1 head frame oriented like C1 (+X forward), so gaze +X.
        let gaze_local = Ray::new(Vec3::ZERO, Vec3::X);
        let gaze_in_f1 = g.transform_ray(f1, f3, &gaze_local).unwrap();
        let p2_in_f1 = g.transform_point(f1, f4, Vec3::ZERO).unwrap();
        let head = crate::Sphere::new(p2_in_f1, 0.15);
        assert!(head.is_hit_by(&gaze_in_f1));
    }

    #[test]
    fn updating_pose_moves_children() {
        let mut g = FrameGraph::new();
        let world = g.add_root("world");
        let cam = g.add_frame("cam", world, Iso3::IDENTITY).unwrap();
        let head = g
            .add_frame("head", cam, Iso3::from_translation(Vec3::X))
            .unwrap();
        let before = g.transform_point(world, head, Vec3::ZERO).unwrap();
        assert!(before.approx_eq(Vec3::X, 1e-12));
        g.set_pose(cam, Iso3::from_translation(Vec3::new(0.0, 5.0, 0.0)))
            .unwrap();
        let after = g.transform_point(world, head, Vec3::ZERO).unwrap();
        assert!(after.approx_eq(Vec3::new(1.0, 5.0, 0.0), 1e-12));
    }

    #[test]
    fn disconnected_roots_error() {
        let mut g = FrameGraph::new();
        let a = g.add_root("a");
        let b = g.add_root("b");
        match g.transform(a, b) {
            Err(FrameError::Disconnected { .. }) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut g = FrameGraph::new();
        let w = g.add_root("world");
        g.add_frame("cam", w, Iso3::IDENTITY).unwrap();
        assert_eq!(
            g.add_frame("cam", w, Iso3::IDENTITY),
            Err(FrameError::DuplicateName("cam".into()))
        );
    }

    #[test]
    fn find_by_name() {
        let (g, _, f1, ..) = fig6_graph();
        assert_eq!(g.find("F1"), Some(f1));
        assert!(g.find("nope").is_none());
        assert_eq!(g.name(f1), Some("F1"));
    }

    #[test]
    fn deep_chain_resolves() {
        let mut g = FrameGraph::new();
        let mut parent = g.add_root("root");
        for i in 0..50 {
            parent = g
                .add_frame(
                    &format!("link{i}"),
                    parent,
                    Iso3::new(Mat3::rotation_z(FRAC_PI_2), Vec3::X),
                )
                .unwrap();
        }
        // 50 quarter-turns: rotation is 50*90° = 4500° ≡ 180°.
        let t = g.pose_in_root(parent).unwrap();
        assert!(t.rotation.approx_eq(&Mat3::rotation_z(PI), 1e-7));
        assert!(t.is_rigid(1e-7));
    }
}
