//! Pinhole camera model — the acquisition platform's imaging geometry.
//!
//! The paper's acquisition platform (Fig. 2) uses surveillance cameras at
//! 2.5 m height with −15° pitch capturing 640×480 at 25 fps. This module
//! models each camera as a calibrated pinhole: an intrinsic matrix `K`
//! plus an extrinsic pose. The synthetic renderer projects scene geometry
//! through it, and the vision substrate unprojects detections back into
//! rays for the eye-contact math.
//!
//! Conventions: the camera *optical frame* is +Z forward (optical axis),
//! +X right, +Y down — the usual computer-vision convention. The stored
//! [`PinholeCamera::pose`] maps optical-frame coordinates into the world
//! frame (it is the paper's `ʷT_c`).

use crate::{deg_to_rad, Iso3, Mat3, Ray, Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Intrinsic parameters of a pinhole camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraIntrinsics {
    /// Focal length in pixels along x.
    pub fx: f64,
    /// Focal length in pixels along y.
    pub fy: f64,
    /// Principal point x (pixels).
    pub cx: f64,
    /// Principal point y (pixels).
    pub cy: f64,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl CameraIntrinsics {
    /// Builds intrinsics from a horizontal field of view.
    ///
    /// # Panics
    /// Panics when `hfov_deg` is not in `(0, 180)` or the resolution is zero.
    pub fn from_hfov(width: u32, height: u32, hfov_deg: f64) -> Self {
        assert!(width > 0 && height > 0, "resolution must be non-zero");
        assert!(
            hfov_deg > 0.0 && hfov_deg < 180.0,
            "horizontal FoV must be in (0, 180) degrees, got {hfov_deg}"
        );
        let f = width as f64 / (2.0 * (deg_to_rad(hfov_deg) / 2.0).tan());
        CameraIntrinsics {
            fx: f,
            fy: f,
            cx: width as f64 / 2.0,
            cy: height as f64 / 2.0,
            width,
            height,
        }
    }

    /// The paper's surveillance camera: 640×480 with a typical ~62°
    /// horizontal field of view.
    pub fn paper_camera() -> Self {
        Self::from_hfov(640, 480, 62.0)
    }

    /// The intrinsic matrix `K`.
    pub fn k_matrix(&self) -> Mat3 {
        Mat3::from_rows([
            [self.fx, 0.0, self.cx],
            [0.0, self.fy, self.cy],
            [0.0, 0.0, 1.0],
        ])
    }

    /// Returns `true` when pixel `(u, v)` lies inside the image bounds.
    pub fn in_bounds(&self, px: Vec2) -> bool {
        px.x >= 0.0 && px.x < self.width as f64 && px.y >= 0.0 && px.y < self.height as f64
    }
}

/// A calibrated pinhole camera: intrinsics + pose in the world frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PinholeCamera {
    /// Intrinsic parameters.
    pub intrinsics: CameraIntrinsics,
    /// Pose `ʷT_c`: maps optical-frame coordinates into world coordinates.
    pub pose: Iso3,
}

/// A successful projection of a world point into the image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// Pixel coordinates (x right, y down).
    pub pixel: Vec2,
    /// Depth along the optical axis (metres, positive).
    pub depth: f64,
    /// Whether the pixel lies inside the image bounds.
    pub in_image: bool,
}

impl PinholeCamera {
    /// Creates a camera from intrinsics and a world pose.
    pub fn new(intrinsics: CameraIntrinsics, pose: Iso3) -> Self {
        PinholeCamera { intrinsics, pose }
    }

    /// Places the camera at `eye` looking at `target` with world +Z up —
    /// the natural way to express the paper's rig ("fixed in front of each
    /// other at height of 2.5 m with −15° pitch" ≙ look-at a point on the
    /// table).
    ///
    /// Returns `None` when `eye == target` or the view is parallel to +Z.
    pub fn look_at(intrinsics: CameraIntrinsics, eye: Vec3, target: Vec3) -> Option<Self> {
        let fwd = (target - eye).try_normalized()?;
        let right = fwd.cross(Vec3::Z).try_normalized()?;
        let down = fwd.cross(right); // = -up, so +Y is down in the image
        let pose = Iso3::new(Mat3::from_cols(right, down, fwd), eye);
        Some(PinholeCamera { intrinsics, pose })
    }

    /// Camera position in the world frame.
    #[inline]
    pub fn position(&self) -> Vec3 {
        self.pose.translation
    }

    /// The optical axis (unit forward direction) in the world frame.
    #[inline]
    pub fn optical_axis(&self) -> Vec3 {
        self.pose.transform_dir(Vec3::Z)
    }

    /// The extrinsic transform `cT_w` (world → optical frame).
    #[inline]
    pub fn extrinsics(&self) -> Iso3 {
        self.pose.inverse()
    }

    /// Projects a world point into the image.
    ///
    /// Returns `None` when the point is on or behind the image plane
    /// (depth ≤ ~0).
    pub fn project(&self, world: Vec3) -> Option<Projection> {
        let pc = self.extrinsics().transform_point(world);
        if pc.z <= crate::EPS {
            return None;
        }
        let k = &self.intrinsics;
        let pixel = Vec2::new(k.fx * pc.x / pc.z + k.cx, k.fy * pc.y / pc.z + k.cy);
        Some(Projection {
            pixel,
            depth: pc.z,
            in_image: k.in_bounds(pixel),
        })
    }

    /// Unprojects a pixel into a world-frame ray through that pixel.
    ///
    /// The ray origin is the camera center; the direction is unit length.
    pub fn unproject(&self, pixel: Vec2) -> Ray {
        let k = &self.intrinsics;
        let dir_cam = Vec3::new((pixel.x - k.cx) / k.fx, (pixel.y - k.cy) / k.fy, 1.0).normalized();
        Ray::new(self.position(), self.pose.transform_dir(dir_cam))
    }

    /// Returns `true` when the world point is inside the viewing frustum
    /// (in front of the camera and within image bounds).
    pub fn sees(&self, world: Vec3) -> bool {
        self.project(world).is_some_and(|p| p.in_image)
    }

    /// Approximate projected radius (pixels) of a sphere of `radius_m`
    /// at the given world position. Used by the renderer and by the face
    /// detector's scale prior.
    pub fn projected_radius(&self, world: Vec3, radius_m: f64) -> Option<f64> {
        let p = self.project(world)?;
        Some(self.intrinsics.fx * radius_m / p.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cam() -> PinholeCamera {
        // 2.5 m up, looking at the middle of a table 2 m away, 0.75 m high.
        PinholeCamera::look_at(
            CameraIntrinsics::paper_camera(),
            Vec3::new(0.0, 0.0, 2.5),
            Vec3::new(2.0, 0.0, 0.75),
        )
        .unwrap()
    }

    #[test]
    fn intrinsics_from_hfov_centered() {
        let k = CameraIntrinsics::from_hfov(640, 480, 90.0);
        assert!((k.fx - 320.0).abs() < 1e-9, "90° hfov → fx = w/2");
        assert_eq!(k.cx, 320.0);
        assert_eq!(k.cy, 240.0);
    }

    #[test]
    fn target_projects_to_principal_point() {
        let cam = test_cam();
        let p = cam.project(Vec3::new(2.0, 0.0, 0.75)).unwrap();
        assert!((p.pixel.x - 320.0).abs() < 1e-6);
        assert!((p.pixel.y - 240.0).abs() < 1e-6);
        assert!(p.in_image);
        // Depth equals euclidean distance since the target is on-axis.
        let dist = Vec3::new(0.0, 0.0, 2.5).distance(Vec3::new(2.0, 0.0, 0.75));
        assert!((p.depth - dist).abs() < 1e-9);
    }

    #[test]
    fn behind_camera_projects_to_none() {
        let cam = test_cam();
        assert!(cam.project(Vec3::new(-2.0, 0.0, 4.0)).is_none());
    }

    #[test]
    fn left_of_axis_lands_left_in_image() {
        let cam = test_cam();
        // World +Y is to the camera's left (camera looks +X): pixel x decreases.
        let left = cam.project(Vec3::new(2.0, 0.5, 0.75)).unwrap();
        assert!(left.pixel.x < 320.0);
        let right = cam.project(Vec3::new(2.0, -0.5, 0.75)).unwrap();
        assert!(right.pixel.x > 320.0);
    }

    #[test]
    fn above_axis_lands_higher_in_image() {
        let cam = test_cam();
        let high = cam.project(Vec3::new(2.0, 0.0, 1.5)).unwrap();
        let low = cam.project(Vec3::new(2.0, 0.0, 0.3)).unwrap();
        assert!(high.pixel.y < low.pixel.y, "image y grows downward");
    }

    #[test]
    fn unproject_inverts_project() {
        let cam = test_cam();
        let world = Vec3::new(1.8, 0.3, 1.0);
        let proj = cam.project(world).unwrap();
        let ray = cam.unproject(proj.pixel);
        // The world point must lie on the unprojected ray.
        assert!(ray.distance_to_point(world) < 1e-6);
        assert!((ray.dir.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optical_axis_tilts_down() {
        let cam = test_cam();
        let axis = cam.optical_axis();
        assert!(
            axis.z < 0.0,
            "camera at 2.5 m looking at the table looks down"
        );
        assert!(axis.x > 0.0);
    }

    #[test]
    fn sees_respects_bounds() {
        let cam = test_cam();
        assert!(cam.sees(Vec3::new(2.0, 0.0, 0.75)));
        // Far off to the side: projects but out of image.
        assert!(!cam.sees(Vec3::new(2.0, 30.0, 0.75)));
    }

    #[test]
    fn projected_radius_shrinks_with_distance() {
        let cam = test_cam();
        let near = cam
            .projected_radius(Vec3::new(1.0, 0.0, 1.5), 0.12)
            .unwrap();
        let far = cam
            .projected_radius(Vec3::new(4.0, 0.0, 0.9), 0.12)
            .unwrap();
        assert!(near > far);
    }

    #[test]
    fn degenerate_look_at_rejected() {
        let k = CameraIntrinsics::paper_camera();
        assert!(PinholeCamera::look_at(k, Vec3::ZERO, Vec3::ZERO).is_none());
        // Looking straight down: view ∥ Z, right vector degenerates.
        assert!(PinholeCamera::look_at(k, Vec3::new(0.0, 0.0, 2.5), Vec3::ZERO).is_none());
    }

    #[test]
    #[should_panic]
    fn bad_fov_panics() {
        let _ = CameraIntrinsics::from_hfov(640, 480, 0.0);
    }
}
