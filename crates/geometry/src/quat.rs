//! Unit quaternions for smooth rotation interpolation.
//!
//! The scene simulator animates head poses by slerping between scripted
//! orientations; quaternions avoid the gimbal problems Euler angles would
//! introduce at the ±15° camera pitches used by the acquisition platform.

use crate::{Mat3, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`. Rotation quaternions are unit length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// i coefficient.
    pub x: f64,
    /// j coefficient.
    pub y: f64,
    /// k coefficient.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from raw components (not normalized).
    #[inline]
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Quat { w, x, y, z }
    }

    /// Rotation of `theta` radians about the given axis.
    pub fn from_axis_angle(axis: Vec3, theta: f64) -> Quat {
        let a = axis.normalized();
        let (s, c) = (theta * 0.5).sin_cos();
        Quat {
            w: c,
            x: a.x * s,
            y: a.y * s,
            z: a.z * s,
        }
    }

    /// Converts a rotation matrix to a quaternion (Shepperd's method).
    pub fn from_mat3(m: &Mat3) -> Quat {
        let t = m.trace();
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quat {
                w: 0.25 * s,
                x: (m.m[2][1] - m.m[1][2]) / s,
                y: (m.m[0][2] - m.m[2][0]) / s,
                z: (m.m[1][0] - m.m[0][1]) / s,
            }
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Quat {
                w: (m.m[2][1] - m.m[1][2]) / s,
                x: 0.25 * s,
                y: (m.m[0][1] + m.m[1][0]) / s,
                z: (m.m[0][2] + m.m[2][0]) / s,
            }
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Quat {
                w: (m.m[0][2] - m.m[2][0]) / s,
                x: (m.m[0][1] + m.m[1][0]) / s,
                y: 0.25 * s,
                z: (m.m[1][2] + m.m[2][1]) / s,
            }
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Quat {
                w: (m.m[1][0] - m.m[0][1]) / s,
                x: (m.m[0][2] + m.m[2][0]) / s,
                y: (m.m[1][2] + m.m[2][1]) / s,
                z: 0.25 * s,
            }
        };
        q.normalized()
    }

    /// Converts to a rotation matrix.
    pub fn to_mat3(&self) -> Mat3 {
        let Quat { w, x, y, z } = self.normalized();
        Mat3::from_rows([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ])
    }

    /// Quaternion norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the unit quaternion with the same orientation.
    ///
    /// Falls back to identity for a degenerate (near-zero) quaternion.
    pub fn normalized(&self) -> Quat {
        let n = self.norm();
        if n <= crate::EPS {
            Quat::IDENTITY
        } else {
            Quat {
                w: self.w / n,
                x: self.x / n,
                y: self.y / n,
                z: self.z / n,
            }
        }
    }

    /// Conjugate; the inverse for a unit quaternion.
    #[inline]
    pub fn conjugate(&self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotates a vector by this (unit) quaternion.
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        // v' = v + 2 * q_vec × (q_vec × v + w v)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// Dot product of the four components.
    #[inline]
    pub fn dot(&self, rhs: &Quat) -> f64 {
        self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Spherical linear interpolation from `self` (t=0) to `other` (t=1),
    /// always along the shorter arc.
    pub fn slerp(&self, other: &Quat, t: f64) -> Quat {
        let mut b = *other;
        let mut cos_theta = self.dot(other);
        if cos_theta < 0.0 {
            // Take the short way around.
            b = Quat {
                w: -b.w,
                x: -b.x,
                y: -b.y,
                z: -b.z,
            };
            cos_theta = -cos_theta;
        }
        if cos_theta > 1.0 - 1e-10 {
            // Nearly parallel: fall back to nlerp to avoid division by ~0.
            return Quat {
                w: self.w + (b.w - self.w) * t,
                x: self.x + (b.x - self.x) * t,
                y: self.y + (b.y - self.y) * t,
                z: self.z + (b.z - self.z) * t,
            }
            .normalized();
        }
        let theta = cos_theta.clamp(-1.0, 1.0).acos();
        let sin_theta = theta.sin();
        let wa = ((1.0 - t) * theta).sin() / sin_theta;
        let wb = (t * theta).sin() / sin_theta;
        Quat {
            w: self.w * wa + b.w * wb,
            x: self.x * wa + b.x * wb,
            y: self.y * wa + b.y * wb,
            z: self.z * wa + b.z * wb,
        }
        .normalized()
    }

    /// Rotation angle in radians, in `[0, π]`.
    pub fn angle(&self) -> f64 {
        2.0 * self.normalized().w.abs().clamp(-1.0, 1.0).acos()
    }

    /// Geodesic angular distance to `other`, in `[0, π]`.
    pub fn angle_to(&self, other: &Quat) -> f64 {
        (self.conjugate() * *other).angle()
    }
}

impl Mul for Quat {
    type Output = Quat;
    fn mul(self, r: Quat) -> Quat {
        Quat {
            w: self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            x: self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            y: self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            z: self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn axis_angle_rotates_like_matrix() {
        let axis = Vec3::new(0.2, -1.0, 0.5);
        let theta = 1.3;
        let q = Quat::from_axis_angle(axis, theta);
        let m = Mat3::rotation_axis_angle(axis, theta);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(q.rotate(v).approx_eq(m * v, 1e-9));
    }

    #[test]
    fn mat3_round_trip() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, -0.3), 2.4);
        let q2 = Quat::from_mat3(&q.to_mat3());
        // Sign ambiguity: q and -q are the same rotation.
        let same = q.dot(&q2).abs();
        assert!((same - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composition_matches_matrix_product() {
        let qa = Quat::from_axis_angle(Vec3::X, 0.5);
        let qb = Quat::from_axis_angle(Vec3::Z, -1.1);
        let v = Vec3::new(0.3, 0.7, -0.2);
        let composed = (qa * qb).rotate(v);
        let sequential = qa.rotate(qb.rotate(v));
        assert!(composed.approx_eq(sequential, 1e-9));
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::new(0.1, 0.9, 0.4), 0.8);
        let v = Vec3::new(5.0, -2.0, 1.0);
        assert!(q.conjugate().rotate(q.rotate(v)).approx_eq(v, 1e-9));
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(a.slerp(&b, 0.0).dot(&a).abs() > 1.0 - 1e-9);
        assert!(a.slerp(&b, 1.0).dot(&b).abs() > 1.0 - 1e-9);
        let mid = a.slerp(&b, 0.5);
        let expect = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2 / 2.0);
        assert!(mid.dot(&expect).abs() > 1.0 - 1e-9);
    }

    #[test]
    fn slerp_takes_short_arc() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.1);
        let b = Quat::from_axis_angle(Vec3::Z, 0.3);
        // Negate b: same rotation, opposite sign; slerp must still take 0.1→0.3.
        let neg_b = Quat {
            w: -b.w,
            x: -b.x,
            y: -b.y,
            z: -b.z,
        };
        let mid = a.slerp(&neg_b, 0.5);
        let expect = Quat::from_axis_angle(Vec3::Z, 0.2);
        assert!(mid.dot(&expect).abs() > 1.0 - 1e-9);
    }

    #[test]
    fn angle_measures_rotation_magnitude() {
        let q = Quat::from_axis_angle(Vec3::Y, 0.77);
        assert!((q.angle() - 0.77).abs() < 1e-9);
        let full = Quat::from_axis_angle(Vec3::Y, PI);
        assert!((full.angle() - PI).abs() < 1e-9);
    }

    #[test]
    fn angle_to_is_geodesic() {
        let a = Quat::from_axis_angle(Vec3::X, 0.2);
        let b = Quat::from_axis_angle(Vec3::X, 0.9);
        assert!((a.angle_to(&b) - 0.7).abs() < 1e-9);
        assert!((b.angle_to(&a) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn degenerate_normalizes_to_identity() {
        let q = Quat::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(q.normalized(), Quat::IDENTITY);
    }
}
