//! Spheres and ray–sphere intersection — the paper's Equations 3 and 5.
//!
//! DiEvent models a participant's head as a sphere `‖x − c‖² = r²`
//! (Eq. 3) and tests whether another participant's gaze ray pierces it.
//! Substituting the ray `x = o + d·l` (Eq. 4) gives a quadratic in `d`
//! whose discriminant `w` (Eq. 5) decides the outcome:
//!
//! * `w > 0` — two intersection points: the gaze crosses the head sphere,
//!   so the gazer *is looking at* that participant;
//! * `w = 0` — tangent;
//! * `w < 0` — miss.
//!
//! The paper additionally requires the intersection to be *in front of*
//! the gazer (`d > 0`); [`Sphere::intersect_ray`] enforces that.

use crate::{Ray, Vec3};
use serde::{Deserialize, Serialize};

/// A sphere `‖x − center‖² = radius²` (paper Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sphere {
    /// Center `c` — in DiEvent, a participant's head position.
    pub center: Vec3,
    /// Radius `r` — the head-sphere radius (the paper leaves the value
    /// open; ~0.12 m is an adult head, and the `ablation_head_radius`
    /// bench sweeps it).
    pub radius: f64,
}

/// Result of a ray–sphere intersection test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaySphereHit {
    /// Smaller intersection parameter (entry point).
    pub d_near: f64,
    /// Larger intersection parameter (exit point).
    pub d_far: f64,
    /// The discriminant `w` of Eq. 5 (scaled form; positive on a hit).
    pub discriminant: f64,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    /// Panics when `radius` is negative or non-finite.
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "sphere radius must be finite and non-negative, got {radius}"
        );
        Sphere { center, radius }
    }

    /// Returns `true` when `p` lies inside or on the sphere.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.distance_sq(self.center) <= self.radius * self.radius
    }

    /// The discriminant `w` of the paper's Equation 5 for the given ray.
    ///
    /// With `Δ = o − c`:
    /// `w = (l·Δ)² − ‖l‖²·(‖Δ‖² − r²)`.
    /// `w ≥ 0` iff the *supporting line* of the ray meets the sphere.
    pub fn discriminant(&self, ray: &Ray) -> f64 {
        let delta = ray.origin - self.center;
        let b = ray.dir.dot(delta);
        b * b - ray.dir.norm_sq() * (delta.norm_sq() - self.radius * self.radius)
    }

    /// Ray–sphere intersection (Eq. 5), requiring the hit to lie on the
    /// forward half of the ray (`d_far > 0`).
    ///
    /// Returns `None` when the line misses the sphere, is tangent within
    /// numerical tolerance, degenerate (zero direction), or the sphere is
    /// entirely behind the ray origin.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<RaySphereHit> {
        let l2 = ray.dir.norm_sq();
        if l2 <= crate::EPS {
            return None;
        }
        let delta = ray.origin - self.center;
        let b = ray.dir.dot(delta);
        let w = b * b - l2 * (delta.norm_sq() - self.radius * self.radius);
        if w <= 0.0 {
            // Tangent (w = 0) counts as "not looking" per the paper:
            // "otherwise the line is either tangent to the sphere or not
            // passing through the sphere at all".
            return None;
        }
        let sqrt_w = w.sqrt();
        // Eq. 5: d = (−(l·Δ) ± √w) / ‖l‖²
        let d_near = (-b - sqrt_w) / l2;
        let d_far = (-b + sqrt_w) / l2;
        if d_far <= 0.0 {
            // Sphere entirely behind the gazer.
            return None;
        }
        Some(RaySphereHit {
            d_near,
            d_far,
            discriminant: w,
        })
    }

    /// Convenience predicate: does this gaze ray look at the sphere?
    ///
    /// This is the paper's per-cell test for the look-at matrix.
    #[inline]
    pub fn is_hit_by(&self, gaze: &Ray) -> bool {
        self.intersect_ray(gaze).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_sphere_at(x: f64) -> Sphere {
        Sphere::new(Vec3::new(x, 0.0, 0.0), 1.0)
    }

    #[test]
    fn head_on_hit_has_two_roots() {
        let s = unit_sphere_at(5.0);
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let hit = s.intersect_ray(&ray).unwrap();
        assert!((hit.d_near - 4.0).abs() < 1e-12);
        assert!((hit.d_far - 6.0).abs() < 1e-12);
        assert!(hit.discriminant > 0.0);
    }

    #[test]
    fn hit_points_lie_on_sphere() {
        let s = Sphere::new(Vec3::new(2.0, 1.0, -0.5), 0.75);
        let ray = Ray::new(
            Vec3::new(-1.0, 0.5, 0.0),
            (s.center - Vec3::new(-1.0, 0.5, 0.0)).normalized(),
        );
        let hit = s.intersect_ray(&ray).unwrap();
        for d in [hit.d_near, hit.d_far] {
            let p = ray.at(d);
            assert!((p.distance(s.center) - s.radius).abs() < 1e-9);
        }
    }

    #[test]
    fn miss_returns_none() {
        let s = unit_sphere_at(5.0);
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        assert!(s.intersect_ray(&ray).is_none());
        assert!(!s.is_hit_by(&ray));
    }

    #[test]
    fn tangent_counts_as_miss() {
        // Ray along +X at y=1 grazes the unit sphere at (5,0,0).
        let s = unit_sphere_at(5.0);
        let ray = Ray::new(Vec3::new(0.0, 1.0, 0.0), Vec3::X);
        assert!(
            s.intersect_ray(&ray).is_none(),
            "paper treats tangency as not-looking"
        );
    }

    #[test]
    fn sphere_behind_origin_is_rejected() {
        let s = unit_sphere_at(-5.0);
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        // Supporting line intersects, but only at negative d.
        assert!(s.discriminant(&ray) > 0.0);
        assert!(s.intersect_ray(&ray).is_none());
    }

    #[test]
    fn origin_inside_sphere_hits_forward() {
        let s = Sphere::new(Vec3::ZERO, 2.0);
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let hit = s.intersect_ray(&ray).unwrap();
        assert!(hit.d_near < 0.0 && hit.d_far > 0.0);
    }

    #[test]
    fn unnormalized_direction_gives_scaled_params() {
        let s = unit_sphere_at(5.0);
        let ray = Ray::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0));
        let hit = s.intersect_ray(&ray).unwrap();
        // Same geometric points, half the parameter values.
        assert!((hit.d_near - 2.0).abs() < 1e-12);
        assert!((hit.d_far - 3.0).abs() < 1e-12);
        assert!(ray
            .at(hit.d_near)
            .approx_eq(Vec3::new(4.0, 0.0, 0.0), 1e-12));
    }

    #[test]
    fn zero_direction_is_degenerate() {
        let s = unit_sphere_at(0.0);
        let ray = Ray::new(Vec3::new(5.0, 0.0, 0.0), Vec3::ZERO);
        assert!(s.intersect_ray(&ray).is_none());
    }

    #[test]
    fn contains_boundary_and_interior() {
        let s = Sphere::new(Vec3::ZERO, 1.0);
        assert!(s.contains(Vec3::new(1.0, 0.0, 0.0)));
        assert!(s.contains(Vec3::new(0.5, 0.5, 0.0)));
        assert!(!s.contains(Vec3::new(1.0, 1.0, 0.0)));
    }

    #[test]
    #[should_panic]
    fn negative_radius_panics() {
        let _ = Sphere::new(Vec3::ZERO, -1.0);
    }

    #[test]
    fn discriminant_sign_matches_paper_cases() {
        // w ∈ ℝ⁺ → two intersection points → "looking at".
        let s = unit_sphere_at(4.0);
        let hit_ray = Ray::new(Vec3::ZERO, Vec3::X);
        let graze_ray = Ray::new(Vec3::new(0.0, 1.0, 0.0), Vec3::X);
        let miss_ray = Ray::new(Vec3::new(0.0, 2.0, 0.0), Vec3::X);
        assert!(s.discriminant(&hit_ray) > 0.0);
        assert!(s.discriminant(&graze_ray).abs() < 1e-9);
        assert!(s.discriminant(&miss_ray) < 0.0);
    }
}
