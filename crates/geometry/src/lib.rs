//! 3D geometry substrate for the DiEvent framework.
//!
//! The DiEvent paper (Qodseya et al., ICDEW 2018) expresses its core
//! eye-contact detection algorithm in terms of reference frames, rigid
//! transformations between them, gaze rays, and head spheres:
//!
//! * Equation 1: `ᵢV = ᵢTⱼ · ⱼV` — transforming a vector between frames.
//! * Equation 2: chaining transforms across camera frames.
//! * Equation 3: a head modelled as a sphere `‖x − c‖² = r²`.
//! * Equation 4: a gaze ray `x = o + d·l`.
//! * Equation 5: the ray–sphere intersection discriminant.
//!
//! This crate provides each of those primitives as a small, documented,
//! allocation-free type, plus a [`frame::FrameGraph`] that resolves the
//! paper's `ᵢTⱼ` notation between arbitrarily-related frames, and a
//! [`camera::PinholeCamera`] used both by the synthetic renderer and the
//! vision substrate.
//!
//! All angles are radians unless a function name says otherwise; all
//! coordinates are metres in a right-handed coordinate system with +Z up
//! (world) — camera frames follow the usual computer-vision convention of
//! +Z forward, +X right, +Y down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angles;
pub mod camera;
pub mod frame;
pub mod mat3;
pub mod plane;
pub mod quat;
pub mod ray;
pub mod sphere;
pub mod transform;
pub mod vec2;
pub mod vec3;

pub use angles::{deg_to_rad, rad_to_deg, wrap_angle, EulerAngles};
pub use camera::{CameraIntrinsics, PinholeCamera};
pub use frame::{FrameGraph, FrameId};
pub use mat3::Mat3;
pub use plane::Plane;
pub use quat::Quat;
pub use ray::Ray;
pub use sphere::{RaySphereHit, Sphere};
pub use transform::Iso3;
pub use vec2::Vec2;
pub use vec3::Vec3;

/// Numerical tolerance used across the crate for approximate comparisons.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most `tol`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
