//! Three-dimensional vectors.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A 3-component double-precision vector.
///
/// Used for positions (metres, world frame `+Z` up) and directions (gaze
/// vectors, camera axes). Direction vectors are not implicitly normalized;
/// call [`Vec3::normalized`] where unit length is required.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the unit vector in this direction, or `None` for a
    /// (near-)zero vector.
    #[inline]
    pub fn try_normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Returns the unit vector in this direction.
    ///
    /// # Panics
    /// Panics if the vector is (near-)zero; use [`Vec3::try_normalized`]
    /// when the input may degenerate.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        self.try_normalized()
            // lint:allow(no_panic): documented `# Panics` contract; `try_normalized` is the fallible form
            .expect("cannot normalize a zero-length Vec3")
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Angle in radians between this vector and `other`, in `[0, π]`.
    ///
    /// Returns 0 when either vector is (near-)zero.
    pub fn angle_to(self, other: Vec3) -> f64 {
        let d = self.norm() * other.norm();
        if d <= crate::EPS {
            return 0.0;
        }
        (self.dot(other) / d).clamp(-1.0, 1.0).acos()
    }

    /// Projection of this vector onto `onto`.
    ///
    /// Returns the zero vector when `onto` is (near-)zero.
    pub fn project_onto(self, onto: Vec3) -> Vec3 {
        let d = onto.norm_sq();
        if d <= crate::EPS {
            Vec3::ZERO
        } else {
            onto * (self.dot(onto) / d)
        }
    }

    /// Component of this vector orthogonal to `onto`.
    pub fn reject_from(self, onto: Vec3) -> Vec3 {
        self - self.project_onto(onto)
    }

    /// Returns `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns `true` when `self` and `other` agree component-wise within `tol`.
    #[inline]
    pub fn approx_eq(self, other: Vec3, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol
            && (self.y - other.y).abs() <= tol
            && (self.z - other.z).abs() <= tol
    }

    /// Smallest component.
    #[inline]
    pub fn min_element(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Largest component.
    #[inline]
    pub fn max_element(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Drops the Z component, producing a top-view (plan) projection.
    ///
    /// The paper's look-at *top view maps* (Figs. 7–8) are plan projections
    /// of participant positions; this is the primitive behind them.
    #[inline]
    pub fn xy(self) -> crate::Vec2 {
        crate::Vec2::new(self.x, self.y)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // lint:allow(no_panic): `Index` is contractually panicking on out-of-range, mirroring slices
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_are_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        assert!(Vec3::X.cross(Vec3::Y).approx_eq(Vec3::Z, 1e-12));
        assert!(Vec3::Y.cross(Vec3::Z).approx_eq(Vec3::X, 1e-12));
        assert!(Vec3::Z.cross(Vec3::X).approx_eq(Vec3::Y, 1e-12));
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn try_normalized_rejects_zero() {
        assert!(Vec3::ZERO.try_normalized().is_none());
        assert!(Vec3::splat(1e-12).try_normalized().is_none());
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        assert!((Vec3::X.angle_to(Vec3::Y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(Vec3::X.angle_to(Vec3::X).abs() < 1e-12);
        assert!((Vec3::X.angle_to(-Vec3::X) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn projection_and_rejection_decompose() {
        let v = Vec3::new(2.0, 5.0, -1.0);
        let onto = Vec3::new(1.0, 1.0, 0.0);
        let p = v.project_onto(onto);
        let r = v.reject_from(onto);
        assert!((p + r).approx_eq(v, 1e-12));
        assert!(r.dot(onto).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 1.0, 2.0);
        let b = Vec3::new(10.0, -1.0, 4.0);
        assert!(a.lerp(b, 0.0).approx_eq(a, 1e-12));
        assert!(a.lerp(b, 1.0).approx_eq(b, 1e-12));
        assert!(a.lerp(b, 0.5).approx_eq(Vec3::new(5.0, 0.0, 3.0), 1e-12));
    }

    #[test]
    fn index_matches_fields() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn xy_drops_height() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let p = v.xy();
        assert_eq!((p.x, p.y), (1.0, 2.0));
    }
}
