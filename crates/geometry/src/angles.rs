//! Angle utilities and Euler angle conversions.
//!
//! The acquisition platform (paper Fig. 2) specifies camera orientation as
//! a pitch of −15°; head poses reported by the vision substrate use
//! yaw/pitch/roll. This module fixes one convention — intrinsic Z-Y-X
//! (yaw about +Z, then pitch about +Y, then roll about +X) — and converts
//! to/from rotation matrices.

use crate::{Mat3, Vec3};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Converts degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Converts radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Wraps an angle into `(-π, π]`.
pub fn wrap_angle(theta: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut a = theta % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Yaw–pitch–roll Euler angles (radians), intrinsic Z-Y-X order.
///
/// * `yaw` — rotation about the world +Z (up) axis: which way the head or
///   camera is turned in plan view.
/// * `pitch` — elevation: looking up (+) or down (−). Internally a
///   rotation of `−pitch` about the intermediate +Y axis, so the paper's
///   −15° camera pitch tips the optical axis down toward the table.
/// * `roll` — rotation about the final +X (forward) axis: head tilt.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EulerAngles {
    /// Rotation about +Z, radians.
    pub yaw: f64,
    /// Rotation about +Y, radians.
    pub pitch: f64,
    /// Rotation about +X, radians.
    pub roll: f64,
}

impl EulerAngles {
    /// Creates Euler angles from radians.
    pub const fn new(yaw: f64, pitch: f64, roll: f64) -> Self {
        EulerAngles { yaw, pitch, roll }
    }

    /// Creates Euler angles from degrees.
    pub fn from_degrees(yaw: f64, pitch: f64, roll: f64) -> Self {
        EulerAngles {
            yaw: deg_to_rad(yaw),
            pitch: deg_to_rad(pitch),
            roll: deg_to_rad(roll),
        }
    }

    /// Converts to a rotation matrix `R = Rz(yaw) · Ry(−pitch) · Rx(roll)`.
    pub fn to_mat3(&self) -> Mat3 {
        Mat3::rotation_z(self.yaw) * Mat3::rotation_y(-self.pitch) * Mat3::rotation_x(self.roll)
    }

    /// Recovers Euler angles from a rotation matrix.
    ///
    /// At gimbal lock (`|pitch| = π/2`) the yaw/roll split is ambiguous;
    /// this implementation puts all the in-plane rotation into yaw.
    pub fn from_mat3(m: &Mat3) -> Self {
        // R = Rz(y) Ry(−p) Rx(r):
        //   m[2][0] = sin(p)
        //   m[1][0]/m[0][0] = tan(y) (when cos p != 0)
        //   m[2][1]/m[2][2] = tan(r)
        let sp = m.m[2][0].clamp(-1.0, 1.0);
        let pitch = sp.asin();
        let cp = (1.0 - sp * sp).sqrt();
        if cp > 1e-9 {
            EulerAngles {
                yaw: m.m[1][0].atan2(m.m[0][0]),
                pitch,
                roll: m.m[2][1].atan2(m.m[2][2]),
            }
        } else {
            // Gimbal lock: fold everything into yaw.
            EulerAngles {
                yaw: (-m.m[0][1]).atan2(m.m[1][1]),
                pitch,
                roll: 0.0,
            }
        }
    }

    /// The unit "forward" direction (+X rotated by these angles).
    ///
    /// With zero angles this is world +X; yaw turns it in plan view and
    /// pitch tips it up/down. This is the direction a head with this pose
    /// is facing, and the default gaze direction.
    pub fn forward(&self) -> Vec3 {
        self.to_mat3() * Vec3::X
    }

    /// Component-wise approximate equality with angle wrapping.
    pub fn approx_eq(&self, other: &EulerAngles, tol: f64) -> bool {
        wrap_angle(self.yaw - other.yaw).abs() <= tol
            && wrap_angle(self.pitch - other.pitch).abs() <= tol
            && wrap_angle(self.roll - other.roll).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn degree_round_trip() {
        assert!((rad_to_deg(deg_to_rad(123.4)) - 123.4).abs() < 1e-12);
        assert!((deg_to_rad(180.0) - PI).abs() < 1e-12);
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(0.5) - 0.5).abs() < 1e-12);
        for theta in [-10.0, -5.0, 0.0, 2.0, 9.0, 100.0] {
            let w = wrap_angle(theta);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }
    }

    #[test]
    fn euler_round_trip() {
        let cases = [
            EulerAngles::new(0.3, -0.2, 0.1),
            EulerAngles::new(-2.0, 1.0, -1.2),
            EulerAngles::new(0.0, 0.0, 0.0),
            EulerAngles::from_degrees(90.0, -15.0, 0.0),
        ];
        for e in cases {
            let back = EulerAngles::from_mat3(&e.to_mat3());
            assert!(back.approx_eq(&e, 1e-9), "{e:?} != {back:?}");
        }
    }

    #[test]
    fn gimbal_lock_recovers_a_valid_rotation() {
        let e = EulerAngles::new(0.4, FRAC_PI_2, 0.3);
        let m = e.to_mat3();
        let back = EulerAngles::from_mat3(&m);
        // yaw/roll split differs, but the rotation must be identical.
        assert!(back.to_mat3().approx_eq(&m, 1e-9));
    }

    #[test]
    fn forward_with_zero_angles_is_x() {
        assert!(EulerAngles::default().forward().approx_eq(Vec3::X, 1e-12));
    }

    #[test]
    fn yaw_quarter_turn_faces_y() {
        let e = EulerAngles::new(FRAC_PI_2, 0.0, 0.0);
        assert!(e.forward().approx_eq(Vec3::Y, 1e-12));
    }

    #[test]
    fn negative_pitch_looks_down() {
        // The acquisition cameras pitch −15°: forward gains a −Z component
        // (looking down at the table).
        let e = EulerAngles::from_degrees(0.0, -15.0, 0.0);
        let f = e.forward();
        assert!(f.z < 0.0);
        assert!((f.norm() - 1.0).abs() < 1e-12);
    }
}
