//! 3×3 matrices (rotations and camera intrinsics).

// Small fixed-size matrix loops read clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::Vec3;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A 3×3 row-major double-precision matrix.
///
/// Primarily used for rotation matrices (the `R` part of the paper's rigid
/// transforms `ᵢTⱼ`) and for pinhole intrinsic matrices `K`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries: `m[row][col]`.
    pub m: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// Builds a matrix from row-major entries.
    #[inline]
    pub const fn from_rows(m: [[f64; 3]; 3]) -> Self {
        Mat3 { m }
    }

    /// Builds a matrix whose columns are `c0`, `c1`, `c2`.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// A diagonal matrix with the given diagonal entries.
    pub fn diagonal(d0: f64, d1: f64, d2: f64) -> Self {
        Mat3 {
            m: [[d0, 0.0, 0.0], [0.0, d1, 0.0], [0.0, 0.0, d2]],
        }
    }

    /// Row `i` as a vector.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Column `j` as a vector.
    #[inline]
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Matrix transpose. For a rotation matrix this is the inverse.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3 {
            m: [
                [m[0][0], m[1][0], m[2][0]],
                [m[0][1], m[1][1], m[2][1]],
                [m[0][2], m[1][2], m[2][2]],
            ],
        }
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// General inverse via the adjugate, or `None` when singular.
    pub fn try_inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() <= crate::EPS {
            return None;
        }
        let m = &self.m;
        let inv_d = 1.0 / d;
        let adj = [
            [
                m[1][1] * m[2][2] - m[1][2] * m[2][1],
                m[0][2] * m[2][1] - m[0][1] * m[2][2],
                m[0][1] * m[1][2] - m[0][2] * m[1][1],
            ],
            [
                m[1][2] * m[2][0] - m[1][0] * m[2][2],
                m[0][0] * m[2][2] - m[0][2] * m[2][0],
                m[0][2] * m[1][0] - m[0][0] * m[1][2],
            ],
            [
                m[1][0] * m[2][1] - m[1][1] * m[2][0],
                m[0][1] * m[2][0] - m[0][0] * m[2][1],
                m[0][0] * m[1][1] - m[0][1] * m[1][0],
            ],
        ];
        let mut out = [[0.0; 3]; 3];
        for (r, row) in adj.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                out[r][c] = v * inv_d;
            }
        }
        Some(Mat3 { m: out })
    }

    /// Rotation about the +X axis by `theta` radians (right-handed).
    pub fn rotation_x(theta: f64) -> Mat3 {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation about the +Y axis by `theta` radians (right-handed).
    pub fn rotation_y(theta: f64) -> Mat3 {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation about the +Z axis by `theta` radians (right-handed).
    pub fn rotation_z(theta: f64) -> Mat3 {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Rotation about an arbitrary unit `axis` by `theta` radians
    /// (Rodrigues' formula).
    pub fn rotation_axis_angle(axis: Vec3, theta: f64) -> Mat3 {
        let a = axis.normalized();
        let (s, c) = theta.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (a.x, a.y, a.z);
        Mat3::from_rows([
            [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
            [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
            [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
        ])
    }

    /// Returns `true` when the matrix is (numerically) a proper rotation:
    /// orthonormal with determinant +1.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let rtr = self.transpose() * *self;
        rtr.approx_eq(&Mat3::IDENTITY, tol) && (self.det() - 1.0).abs() <= tol
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Mat3, tol: f64) -> bool {
        self.m
            .iter()
            .flatten()
            .zip(other.m.iter().flatten())
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Re-orthonormalizes a near-rotation matrix via Gram–Schmidt on its
    /// columns. Useful after long chains of composed transforms.
    pub fn orthonormalized(&self) -> Mat3 {
        let c0 = self.col(0).normalized();
        let c1 = self.col(1).reject_from(c0).normalized();
        let c2 = c0.cross(c1);
        Mat3::from_cols(c0, c1, c2)
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = self.row(r).dot(rhs.col(c));
            }
        }
        Mat3 { m: out }
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for r in 0..3 {
            for c in 0..3 {
                out[r][c] = self.m[r][c] + rhs.m[r][c];
            }
        }
        Mat3 { m: out }
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for r in 0..3 {
            for c in 0..3 {
                out[r][c] = self.m[r][c] - rhs.m[r][c];
            }
        }
        Mat3 { m: out }
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self.m;
        for row in &mut out {
            for v in row {
                *v *= s;
            }
        }
        Mat3 { m: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_is_neutral() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!((Mat3::IDENTITY * v).approx_eq(v, 1e-12));
        let r = Mat3::rotation_z(0.7);
        assert!((Mat3::IDENTITY * r).approx_eq(&r, 1e-12));
        assert!((r * Mat3::IDENTITY).approx_eq(&r, 1e-12));
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        assert!((r * Vec3::X).approx_eq(Vec3::Y, 1e-12));
        assert!((r * Vec3::Y).approx_eq(-Vec3::X, 1e-12));
        assert!((r * Vec3::Z).approx_eq(Vec3::Z, 1e-12));
    }

    #[test]
    fn rotations_are_proper() {
        for theta in [0.1, 1.0, -2.3, PI] {
            assert!(Mat3::rotation_x(theta).is_rotation(1e-9));
            assert!(Mat3::rotation_y(theta).is_rotation(1e-9));
            assert!(Mat3::rotation_z(theta).is_rotation(1e-9));
        }
    }

    #[test]
    fn axis_angle_matches_canonical_rotations() {
        let t = 0.83;
        assert!(Mat3::rotation_axis_angle(Vec3::X, t).approx_eq(&Mat3::rotation_x(t), 1e-12));
        assert!(Mat3::rotation_axis_angle(Vec3::Y, t).approx_eq(&Mat3::rotation_y(t), 1e-12));
        assert!(Mat3::rotation_axis_angle(Vec3::Z, t).approx_eq(&Mat3::rotation_z(t), 1e-12));
    }

    #[test]
    fn inverse_of_rotation_is_transpose() {
        let r = Mat3::rotation_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.1);
        let inv = r.try_inverse().unwrap();
        assert!(inv.approx_eq(&r.transpose(), 1e-9));
        assert!((r * inv).approx_eq(&Mat3::IDENTITY, 1e-9));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let s = Mat3::from_rows([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]]);
        assert!(s.try_inverse().is_none());
    }

    #[test]
    fn general_inverse_round_trips() {
        let a = Mat3::from_rows([[2.0, 1.0, 0.5], [-1.0, 3.0, 2.0], [0.0, 0.5, 1.5]]);
        let inv = a.try_inverse().unwrap();
        assert!((a * inv).approx_eq(&Mat3::IDENTITY, 1e-9));
        assert!((inv * a).approx_eq(&Mat3::IDENTITY, 1e-9));
    }

    #[test]
    fn det_of_rotation_is_one() {
        let r = Mat3::rotation_axis_angle(Vec3::new(0.3, -0.2, 0.9), 2.0);
        assert!((r.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthonormalize_repairs_drift() {
        let mut r = Mat3::rotation_x(0.4);
        // Inject drift.
        r.m[0][0] += 1e-4;
        r.m[1][2] -= 1e-4;
        let fixed = r.orthonormalized();
        assert!(fixed.is_rotation(1e-9));
    }

    #[test]
    fn from_cols_round_trips() {
        let a = Vec3::new(1.0, 4.0, 7.0);
        let b = Vec3::new(2.0, 5.0, 8.0);
        let c = Vec3::new(3.0, 6.0, 9.0);
        let m = Mat3::from_cols(a, b, c);
        assert!(m.col(0).approx_eq(a, 0.0));
        assert!(m.col(1).approx_eq(b, 0.0));
        assert!(m.col(2).approx_eq(c, 0.0));
        assert!(m.row(0).approx_eq(Vec3::new(1.0, 2.0, 3.0), 0.0));
    }
}
