//! Property-based tests for the geometry substrate.
//!
//! These check the algebraic laws the eye-contact pipeline relies on:
//! rigid transforms form a group, rotations preserve lengths and angles,
//! and the Eq. 5 ray–sphere discriminant agrees with an independent
//! distance-based oracle.

use dievent_geometry::{
    CameraIntrinsics, Iso3, Mat3, PinholeCamera, Quat, Ray, Sphere, Vec2, Vec3,
};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    -10.0..10.0f64
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (small_f64(), small_f64(), small_f64()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_vec3() -> impl Strategy<Value = Vec3> {
    vec3().prop_filter_map("non-degenerate", |v| v.try_normalized())
}

fn rotation() -> impl Strategy<Value = Mat3> {
    (unit_vec3(), -3.1..3.1f64).prop_map(|(axis, theta)| Mat3::rotation_axis_angle(axis, theta))
}

fn iso3() -> impl Strategy<Value = Iso3> {
    (rotation(), vec3()).prop_map(|(r, t)| Iso3::new(r, t))
}

proptest! {
    #[test]
    fn rotations_preserve_norm(r in rotation(), v in vec3()) {
        prop_assert!(((r * v).norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn rotations_preserve_dot(r in rotation(), a in vec3(), b in vec3()) {
        prop_assert!(((r * a).dot(r * b) - a.dot(b)).abs() < 1e-8);
    }

    #[test]
    fn rotation_inverse_is_transpose(r in rotation()) {
        let inv = r.try_inverse().expect("rotations are invertible");
        prop_assert!(inv.approx_eq(&r.transpose(), 1e-9));
    }

    #[test]
    fn iso3_group_inverse(t in iso3(), p in vec3()) {
        let back = t.inverse().transform_point(t.transform_point(p));
        prop_assert!(back.approx_eq(p, 1e-8));
    }

    #[test]
    fn iso3_composition_is_application_order(a in iso3(), b in iso3(), p in vec3()) {
        let composed = (a * b).transform_point(p);
        let sequential = a.transform_point(b.transform_point(p));
        prop_assert!(composed.approx_eq(sequential, 1e-8));
    }

    #[test]
    fn iso3_preserves_distances(t in iso3(), a in vec3(), b in vec3()) {
        let d0 = a.distance(b);
        let d1 = t.transform_point(a).distance(t.transform_point(b));
        prop_assert!((d0 - d1).abs() < 1e-8);
    }

    #[test]
    fn quat_matrix_agree_on_rotation(axis in unit_vec3(), theta in -3.1..3.1f64, v in vec3()) {
        let q = Quat::from_axis_angle(axis, theta);
        let m = Mat3::rotation_axis_angle(axis, theta);
        prop_assert!(q.rotate(v).approx_eq(m * v, 1e-8));
    }

    #[test]
    fn quat_roundtrip_through_matrix(axis in unit_vec3(), theta in -3.0..3.0f64) {
        let q = Quat::from_axis_angle(axis, theta);
        let q2 = Quat::from_mat3(&q.to_mat3());
        // q and −q are the same rotation.
        prop_assert!((q.dot(&q2).abs() - 1.0).abs() < 1e-8);
    }

    /// Eq. 5 oracle: the ray's supporting line intersects the sphere iff
    /// the perpendicular distance from the center to the line ≤ radius.
    #[test]
    fn discriminant_matches_distance_oracle(
        center in vec3(),
        radius in 0.05..3.0f64,
        origin in vec3(),
        dir in unit_vec3(),
    ) {
        let sphere = Sphere::new(center, radius);
        let ray = Ray::new(origin, dir);
        let w = sphere.discriminant(&ray);
        // Perpendicular distance from center to the *line* (unclamped).
        let t = (center - origin).dot(dir);
        let perp = (origin + dir * t).distance(center);
        if (perp - radius).abs() > 1e-6 {
            prop_assert_eq!(w > 0.0, perp < radius,
                "w = {}, perp = {}, r = {}", w, perp, radius);
        }
    }

    /// The intersection points returned by Eq. 5 really lie on the sphere.
    #[test]
    fn intersection_points_on_sphere(
        center in vec3(),
        radius in 0.05..3.0f64,
        origin in vec3(),
        dir in unit_vec3(),
    ) {
        let sphere = Sphere::new(center, radius);
        let ray = Ray::new(origin, dir);
        if let Some(hit) = sphere.intersect_ray(&ray) {
            for d in [hit.d_near, hit.d_far] {
                let p = ray.at(d);
                prop_assert!((p.distance(center) - radius).abs() < 1e-6);
            }
            prop_assert!(hit.d_far > 0.0, "forward-hit contract");
            prop_assert!(hit.d_near <= hit.d_far);
        }
    }

    /// Transforming ray and sphere by the same rigid motion never changes
    /// the intersection verdict — the look-at matrix is frame-invariant,
    /// which is exactly why the paper may pick an arbitrary common frame.
    #[test]
    fn eye_contact_verdict_is_frame_invariant(
        t in iso3(),
        center in vec3(),
        radius in 0.05..3.0f64,
        origin in vec3(),
        dir in unit_vec3(),
    ) {
        let sphere = Sphere::new(center, radius);
        let ray = Ray::new(origin, dir);
        let moved_sphere = Sphere::new(t.transform_point(center), radius);
        let moved_ray = t.transform_ray(&ray);
        // Avoid razor-edge tangency flakes.
        let tparam = (center - origin).dot(dir);
        let perp = (origin + dir * tparam).distance(center);
        prop_assume!((perp - radius).abs() > 1e-6);
        // Origin on the sphere surface makes d_far ≈ 0, another razor edge.
        prop_assume!((origin.distance(center) - radius).abs() > 1e-6);
        let _ = tparam;
        prop_assert_eq!(sphere.is_hit_by(&ray), moved_sphere.is_hit_by(&moved_ray));
    }

    #[test]
    fn slerp_stays_unit(axis in unit_vec3(), t1 in -3.0..3.0f64, t2 in -3.0..3.0f64, u in 0.0..1.0f64) {
        let a = Quat::from_axis_angle(axis, t1);
        let b = Quat::from_axis_angle(axis, t2);
        let s = a.slerp(&b, u);
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    /// Unprojecting any in-image pixel and projecting the ray's points
    /// back recovers the pixel — the camera model is self-consistent.
    #[test]
    fn camera_project_unproject_round_trip(
        px in 0.5..639.5f64,
        py in 0.5..479.5f64,
        depth in 0.5..8.0f64,
        eye_x in -2.0..2.0f64,
        eye_y in -2.0..2.0f64,
    ) {
        let cam = PinholeCamera::look_at(
            CameraIntrinsics::from_hfov(640, 480, 50.0),
            Vec3::new(eye_x, eye_y, 2.5),
            Vec3::new(3.0, 2.0, 1.0),
        ).expect("valid rig geometry");
        let ray = cam.unproject(Vec2::new(px, py));
        let world = ray.at(depth);
        let proj = cam.project(world).expect("point in front of the camera");
        prop_assert!((proj.pixel.x - px).abs() < 1e-6, "{} vs {}", proj.pixel.x, px);
        prop_assert!((proj.pixel.y - py).abs() < 1e-6);
    }

    /// A sphere around any point on a forward ray is always hit.
    #[test]
    fn sphere_on_ray_is_always_hit(
        origin in vec3(),
        dir in unit_vec3(),
        d in 0.5..20.0f64,
        radius in 0.05..1.0f64,
    ) {
        let ray = Ray::new(origin, dir);
        let sphere = Sphere::new(ray.at(d), radius);
        prop_assert!(sphere.is_hit_by(&ray));
    }
}
