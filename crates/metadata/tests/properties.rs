//! Property-based tests for the metadata repository: the indexed query
//! planner must agree with brute-force predicate evaluation, and the
//! durable log must reconstruct the exact store state.

use dievent_metadata::{AttrValue, MetaRecord, MetadataRepository, Query, RecordKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        kind: usize,
        camera: i64,
        score: f64,
        span: Option<(f64, f64)>,
    },
    DeleteNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..6, 0i64..4, 0.0..100.0f64, proptest::option::of((0.0..50.0f64, 0.0..10.0f64)))
            .prop_map(|(kind, camera, score, span)| Op::Insert {
                kind,
                camera,
                score,
                span: span.map(|(s, d)| (s, s + d)),
            }),
        1 => (0usize..32).prop_map(Op::DeleteNth),
    ]
}

fn apply_ops(repo: &MetadataRepository, ops: &[Op]) {
    let mut live_ids = Vec::new();
    for op in ops {
        match op {
            Op::Insert {
                kind,
                camera,
                score,
                span,
            } => {
                let mut r = MetaRecord::new(RecordKind::ALL[*kind])
                    .with_attr("camera", *camera)
                    .with_attr("score", *score);
                if let Some((s, e)) = span {
                    r = r.with_span(*s, *e);
                }
                live_ids.push(repo.insert(r).expect("insert"));
            }
            Op::DeleteNth(n) => {
                if !live_ids.is_empty() {
                    let id = live_ids[n % live_ids.len()];
                    repo.delete(id).expect("delete");
                    live_ids.retain(|&x| x != id);
                }
            }
        }
    }
}

proptest! {
    /// Indexed query results equal brute-force filtering for every
    /// query shape the planner specializes.
    #[test]
    fn planner_agrees_with_brute_force(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        q_kind in 0usize..6,
        q_camera in 0i64..4,
        q_lo in 0.0..40.0f64,
        q_len in 0.0..15.0f64,
    ) {
        let repo = MetadataRepository::in_memory();
        apply_ops(&repo, &ops);
        let everything = repo.query(&Query::new());

        let queries = vec![
            Query::new().kind(RecordKind::ALL[q_kind]),
            Query::new().eq("camera", q_camera),
            Query::new().overlapping(q_lo, q_lo + q_len),
            Query::new()
                .kind(RecordKind::ALL[q_kind])
                .eq("camera", q_camera)
                .ge("score", 25.0),
            Query::new().eq("camera", q_camera).overlapping(q_lo, q_lo + q_len),
            Query::new().ge("score", q_lo).le("score", q_lo + 30.0),
            Query::new().gt("score", q_lo).kind(RecordKind::ALL[q_kind]),
        ];
        for q in queries {
            let via_planner: Vec<u64> = repo.query(&q).iter().map(|r| r.id.0).collect();
            let mut brute: Vec<u64> = everything
                .iter()
                .filter(|r| q.matches(r))
                .map(|r| r.id.0)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(via_planner, brute, "query {:?}", q);
        }
    }

    /// Replaying the durable log reproduces exactly the live state.
    #[test]
    fn durable_replay_reconstructs_state(
        ops in proptest::collection::vec(op_strategy(), 0..30),
        salt in 0u64..1_000_000,
    ) {
        let dir = std::env::temp_dir().join("dievent-metadata-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("prop-{}-{salt}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let reference = MetadataRepository::in_memory();
        apply_ops(&reference, &ops);
        {
            let durable = MetadataRepository::open(&path).unwrap();
            apply_ops(&durable, &ops);
        }
        let reopened = MetadataRepository::open(&path).unwrap();
        prop_assert_eq!(reopened.len(), reference.len());
        let a: Vec<MetaRecord> = reopened.query(&Query::new());
        let b: Vec<MetaRecord> = reference.query(&Query::new());
        prop_assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    /// `limit` is a prefix of the unlimited result.
    #[test]
    fn limit_is_a_prefix(
        ops in proptest::collection::vec(op_strategy(), 0..30),
        limit in 0usize..10,
    ) {
        let repo = MetadataRepository::in_memory();
        apply_ops(&repo, &ops);
        let all = repo.query(&Query::new().has("camera"));
        let limited = repo.query(&Query::new().has("camera").limit(limit));
        prop_assert_eq!(limited.len(), all.len().min(limit));
        prop_assert_eq!(&all[..limited.len()], &limited[..]);
    }

    /// Attribute-value comparisons are antisymmetric where defined.
    #[test]
    fn attr_compare_antisymmetric(a in -100i64..100, b in -100.0..100.0f64) {
        let va = AttrValue::Int(a);
        let vb = AttrValue::Float(b);
        let fwd = va.compare(&vb);
        let rev = vb.compare(&va);
        prop_assert_eq!(fwd.map(|o| o.reverse()), rev);
    }
}
