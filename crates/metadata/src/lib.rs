//! Metadata repository for the DiEvent framework (paper §II-E).
//!
//! "The last step of our framework is storing both the collected
//! external and the extracted metadata integrated with the social
//! dimensions of the participants. This will allow us to build a video
//! indexing and retrieval framework with rich query vocabulary so that
//! the queries will return more semantic results."
//!
//! The repository stores typed [`record::MetaRecord`]s — events,
//! scenes, shots, key frames, and per-frame analysis results — under a
//! concurrent in-memory store with secondary attribute and interval
//! indexes, persists them through an append-only JSON-lines log, and
//! answers conjunctive attribute/time queries through a typed
//! [`query::Query`] builder.
//!
//! * [`value`] — typed attribute values with ordering semantics;
//! * [`record`] — the record model and its kinds;
//! * [`log`] — the append-only persistence log (write + replay);
//! * [`store`] — the indexed, thread-safe repository;
//! * [`query`] — the query language and planner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod query;
pub mod record;
pub mod store;
pub mod value;

pub use log::{LogEntry, MetadataLog};
pub use query::{Predicate, Query};
pub use record::{MetaRecord, RecordId, RecordKind};
pub use store::MetadataRepository;
pub use value::AttrValue;
