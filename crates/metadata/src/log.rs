//! Append-only persistence log.
//!
//! Every mutation of the repository is appended as one JSON line; a
//! repository is recovered by replaying the log in order. JSON-lines
//! keeps the on-disk format inspectable with standard tools, which
//! suits a research repository better than a binary format. Writes are
//! buffered through a [`bytes::BytesMut`] builder and flushed per
//! append, so a crash loses at most the entry being written.

use crate::record::{MetaRecord, RecordId};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogEntry {
    /// A record was inserted (with its assigned id).
    Insert(MetaRecord),
    /// A record was deleted.
    Delete(RecordId),
}

/// An append-only JSON-lines log file.
#[derive(Debug)]
pub struct MetadataLog {
    path: PathBuf,
    file: File,
    buf: BytesMut,
}

impl MetadataLog {
    /// Opens (creating if necessary) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_owned();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(MetadataLog {
            path,
            file,
            buf: BytesMut::with_capacity(4096),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry and flushes it.
    pub fn append(&mut self, entry: &LogEntry) -> io::Result<()> {
        let json =
            serde_json::to_vec(entry).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.buf.clear();
        self.buf.reserve(json.len() + 1);
        self.buf.put_slice(&json);
        self.buf.put_u8(b'\n');
        self.file.write_all(&self.buf)?;
        self.file.flush()
    }

    /// Atomically replaces the log at `path` with exactly `entries`
    /// (write to a temporary sibling, fsync, rename). Used by store
    /// compaction to drop superseded insert/delete pairs.
    pub fn rewrite(path: impl AsRef<Path>, entries: &[LogEntry]) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("compact-tmp");
        {
            let mut f = File::create(&tmp)?;
            let mut buf = BytesMut::with_capacity(64 * 1024);
            for e in entries {
                let json = serde_json::to_vec(e)
                    .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
                buf.put_slice(&json);
                buf.put_u8(b'\n');
                if buf.len() >= 60 * 1024 {
                    f.write_all(&buf)?;
                    buf.clear();
                }
            }
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Replays every entry of the log at `path` in order. Returns an
    /// empty list when the file does not exist. A trailing partial line
    /// (torn write) is ignored; a corrupt line in the middle is an
    /// error.
    pub fn replay(path: impl AsRef<Path>) -> io::Result<Vec<LogEntry>> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let reader = BufReader::new(file);
        let mut entries = Vec::new();
        let mut lines = reader.lines().peekable();
        while let Some(line) = lines.next() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<LogEntry>(&line) {
                Ok(e) => entries.push(e),
                Err(err) => {
                    if lines.peek().is_none() {
                        // Torn final write: tolerate and stop.
                        break;
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt log entry: {err}"),
                    ));
                }
            }
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dievent-metadata-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn record(kind: RecordKind, id: u64) -> MetaRecord {
        let mut r = MetaRecord::new(kind).with_attr("n", id as i64);
        r.id = RecordId(id);
        r
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("round-trip");
        let mut log = MetadataLog::open(&path).unwrap();
        let entries = vec![
            LogEntry::Insert(record(RecordKind::Event, 1)),
            LogEntry::Insert(record(RecordKind::Shot, 2)),
            LogEntry::Delete(RecordId(1)),
        ];
        for e in &entries {
            log.append(e).unwrap();
        }
        drop(log);
        let replayed = MetadataLog::replay(&path).unwrap();
        assert_eq!(replayed, entries);
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = tmp("missing");
        std::fs::remove_file(&path).ok();
        assert!(MetadataLog::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn reopening_appends_not_truncates() {
        let path = tmp("reopen");
        {
            let mut log = MetadataLog::open(&path).unwrap();
            log.append(&LogEntry::Insert(record(RecordKind::Event, 1)))
                .unwrap();
        }
        {
            let mut log = MetadataLog::open(&path).unwrap();
            log.append(&LogEntry::Delete(RecordId(1))).unwrap();
        }
        let replayed = MetadataLog::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2);
    }

    #[test]
    fn torn_final_line_tolerated() {
        let path = tmp("torn");
        {
            let mut log = MetadataLog::open(&path).unwrap();
            log.append(&LogEntry::Insert(record(RecordKind::Scene, 7)))
                .unwrap();
        }
        // Simulate a crash mid-write.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"Insert\":{\"id\":9,\"ki").unwrap();
        drop(f);
        let replayed = MetadataLog::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1, "torn tail dropped, good prefix kept");
    }

    #[test]
    fn corrupt_middle_line_is_an_error() {
        let path = tmp("corrupt");
        {
            let mut log = MetadataLog::open(&path).unwrap();
            log.append(&LogEntry::Insert(record(RecordKind::Scene, 1)))
                .unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"garbage\n").unwrap();
        }
        {
            let mut log = MetadataLog::open(&path).unwrap();
            log.append(&LogEntry::Delete(RecordId(1))).unwrap();
        }
        assert!(MetadataLog::replay(&path).is_err());
    }
}
