//! The indexed, thread-safe metadata repository.
//!
//! An in-memory primary store guarded by a [`parking_lot::RwLock`],
//! with three secondary indexes maintained on every mutation:
//!
//! * **kind index** — record ids per [`RecordKind`];
//! * **attribute index** — `attribute → value-key → ids` for exact
//!   matches on indexable values;
//! * **interval index** — spans sorted by start time for overlap
//!   queries (binary search on start, bounded scan).
//!
//! Optional durability: attach a [`MetadataLog`] and every mutation is
//! appended before the in-memory state changes (write-ahead); a
//! repository is recovered with [`MetadataRepository::open`].

use crate::log::{LogEntry, MetadataLog};
use crate::query::Query;
use crate::record::{MetaRecord, RecordId, RecordKind};
use dievent_telemetry::{Counter, Histogram, Telemetry};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::path::Path;

/// Maps an f64 to a u64 whose unsigned order equals the float's total
/// order over finite values (sign-magnitude flip; the classic sortable
/// key encoding for IEEE-754 doubles).
fn f64_order_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & (1 << 63) == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

#[derive(Default)]
struct Inner {
    records: BTreeMap<RecordId, MetaRecord>,
    by_kind: HashMap<RecordKind, HashSet<RecordId>>,
    by_attr: HashMap<String, HashMap<String, HashSet<RecordId>>>,
    /// Numeric range index: attribute → sortable-f64-key → ids.
    by_num: HashMap<String, BTreeMap<u64, Vec<RecordId>>>,
    /// `(start, id)` sorted — rebuilt lazily after deletions.
    spans: Vec<(f64, f64, RecordId)>,
    spans_dirty: bool,
    next_id: u64,
}

impl Inner {
    fn index(&mut self, r: &MetaRecord) {
        self.by_kind.entry(r.kind).or_default().insert(r.id);
        for (k, v) in &r.attrs {
            if let Some(ik) = v.index_key() {
                self.by_attr
                    .entry(k.clone())
                    .or_default()
                    .entry(ik)
                    .or_default()
                    .insert(r.id);
            }
            if let Some(num) = v.range_key() {
                self.by_num
                    .entry(k.clone())
                    .or_default()
                    .entry(f64_order_key(num))
                    .or_default()
                    .push(r.id);
            }
        }
        if let Some((s, e)) = r.span {
            self.spans.push((s, e, r.id));
            self.spans_dirty = true;
        }
    }

    fn unindex(&mut self, r: &MetaRecord) {
        if let Some(set) = self.by_kind.get_mut(&r.kind) {
            set.remove(&r.id);
        }
        for (k, v) in &r.attrs {
            if let Some(ik) = v.index_key() {
                if let Some(m) = self.by_attr.get_mut(k) {
                    if let Some(set) = m.get_mut(&ik) {
                        set.remove(&r.id);
                    }
                }
            }
            if let Some(num) = v.range_key() {
                if let Some(m) = self.by_num.get_mut(k) {
                    if let Some(ids) = m.get_mut(&f64_order_key(num)) {
                        ids.retain(|&id| id != r.id);
                    }
                }
            }
        }
        if r.span.is_some() {
            self.spans.retain(|&(_, _, id)| id != r.id);
        }
    }

    fn sorted_spans(&mut self) -> &[(f64, f64, RecordId)] {
        if self.spans_dirty {
            self.spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            self.spans_dirty = false;
        }
        &self.spans
    }
}

/// Pre-resolved instrument handles (no-ops until
/// [`MetadataRepository::attach_telemetry`]). Handles are `Arc`s into
/// the registry, so mutations update them without any registry lock.
#[derive(Default)]
struct RepoInstruments {
    /// `metadata_inserts` — records inserted.
    inserts: Counter,
    /// `metadata_deletes` — records deleted.
    deletes: Counter,
    /// `metadata_queries` — queries executed.
    queries: Counter,
    /// `metadata_flush_seconds` — wall time of write-ahead appends
    /// (insert + delete), including the fsync-equivalent flush.
    flush_seconds: Histogram,
}

/// The metadata repository (paper §II-E).
pub struct MetadataRepository {
    inner: RwLock<Inner>,
    log: Option<RwLock<MetadataLog>>,
    instruments: RepoInstruments,
}

impl Default for MetadataRepository {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl MetadataRepository {
    /// A purely in-memory repository (no durability).
    pub fn in_memory() -> Self {
        MetadataRepository {
            inner: RwLock::new(Inner::default()),
            log: None,
            instruments: RepoInstruments::default(),
        }
    }

    /// Opens a durable repository backed by the log at `path`,
    /// replaying any existing entries.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_telemetry(path, &Telemetry::disabled())
    }

    /// [`MetadataRepository::open`] recording into a telemetry domain:
    /// the recovery runs under a `metadata.replay` span, the number of
    /// replayed entries lands in `metadata_replayed_entries`, and the
    /// repository comes back already attached (see
    /// [`MetadataRepository::attach_telemetry`]).
    pub fn open_with_telemetry(path: impl AsRef<Path>, telemetry: &Telemetry) -> io::Result<Self> {
        let entries = {
            let _span = telemetry.span("metadata.replay");
            MetadataLog::replay(path.as_ref())?
        };
        telemetry
            .counter("metadata_replayed_entries")
            .add(entries.len() as u64);
        let mut repo = MetadataRepository::in_memory();
        repo.attach_telemetry(telemetry);
        {
            let mut inner = repo.inner.write();
            for entry in entries {
                match entry {
                    LogEntry::Insert(r) => {
                        inner.next_id = inner.next_id.max(r.id.0 + 1);
                        inner.index(&r);
                        inner.records.insert(r.id, r);
                    }
                    LogEntry::Delete(id) => {
                        if let Some(r) = inner.records.remove(&id) {
                            inner.unindex(&r);
                        }
                    }
                }
            }
        }
        let log = MetadataLog::open(path)?;
        repo.log = Some(RwLock::new(log));
        Ok(repo)
    }

    /// Attaches this repository to a telemetry domain: mutations and
    /// queries maintain `metadata_inserts` / `metadata_deletes` /
    /// `metadata_queries` counters, and write-ahead appends record
    /// their flush latency into `metadata_flush_seconds`.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.instruments = RepoInstruments {
            inserts: telemetry.counter("metadata_inserts"),
            deletes: telemetry.counter("metadata_deletes"),
            queries: telemetry.counter("metadata_queries"),
            flush_seconds: telemetry.histogram("metadata_flush_seconds"),
        };
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// Returns `true` when the repository holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a record, assigning and returning its id.
    ///
    /// With a log attached this is write-ahead: the entry is durable
    /// before the in-memory state changes.
    pub fn insert(&self, mut record: MetaRecord) -> io::Result<RecordId> {
        let mut inner = self.inner.write();
        let id = RecordId(inner.next_id);
        inner.next_id += 1;
        record.id = id;
        if let Some(log) = &self.log {
            let started = std::time::Instant::now();
            log.write().append(&LogEntry::Insert(record.clone()))?;
            self.instruments
                .flush_seconds
                .observe(started.elapsed().as_secs_f64());
        }
        inner.index(&record);
        inner.records.insert(id, record);
        self.instruments.inserts.incr();
        Ok(id)
    }

    /// Fetches a record by id.
    pub fn get(&self, id: RecordId) -> Option<MetaRecord> {
        self.inner.read().records.get(&id).cloned()
    }

    /// Deletes a record; returns whether it existed.
    pub fn delete(&self, id: RecordId) -> io::Result<bool> {
        let mut inner = self.inner.write();
        if !inner.records.contains_key(&id) {
            return Ok(false);
        }
        if let Some(log) = &self.log {
            let started = std::time::Instant::now();
            log.write().append(&LogEntry::Delete(id))?;
            self.instruments
                .flush_seconds
                .observe(started.elapsed().as_secs_f64());
        }
        if let Some(r) = inner.records.remove(&id) {
            inner.unindex(&r);
        }
        self.instruments.deletes.incr();
        Ok(true)
    }

    /// Runs a query, returning matching records ordered by id.
    ///
    /// The planner narrows the candidate set with the most selective
    /// available index (attribute equality, then kind, then span
    /// overlap) and verifies every candidate against the full
    /// predicate list.
    pub fn query(&self, q: &Query) -> Vec<MetaRecord> {
        self.instruments.queries.incr();
        let mut inner = self.inner.write();

        // Candidate ids from the best available index.
        let candidates: Vec<RecordId> = if let Some((attr, ik)) = q.indexable_eq() {
            inner
                .by_attr
                .get(attr)
                .and_then(|m| m.get(&ik))
                .map(|s| {
                    let mut v: Vec<_> = s.iter().copied().collect();
                    v.sort();
                    v
                })
                .unwrap_or_default()
        } else if let Some((attr, lo, hi)) = q.numeric_range().filter(|(_, lo, hi)| {
            // Only use the range index when at least one bound is real;
            // an unbounded "range" would be a full scan anyway.
            lo.is_finite() || hi.is_finite()
        }) {
            let mut v: Vec<RecordId> = inner
                .by_num
                .get(attr)
                .map(|m| {
                    m.range(f64_order_key(lo)..=f64_order_key(hi))
                        .flat_map(|(_, ids)| ids.iter().copied())
                        .collect()
                })
                .unwrap_or_default();
            v.sort();
            v.dedup();
            v
        } else if let Some(kind) = q.kind_filter() {
            inner
                .by_kind
                .get(&kind)
                .map(|s| {
                    let mut v: Vec<_> = s.iter().copied().collect();
                    v.sort();
                    v
                })
                .unwrap_or_default()
        } else if let Some((s, e)) = q.span_filter() {
            let spans = inner.sorted_spans();
            // All spans with start < e are candidates; verify overlap below.
            let cut = spans.partition_point(|&(start, _, _)| start < e);
            let mut v: Vec<_> = spans[..cut]
                .iter()
                .filter(|&&(_, end, _)| end > s)
                .map(|&(_, _, id)| id)
                .collect();
            v.sort();
            v
        } else {
            inner.records.keys().copied().collect()
        };

        let mut out = Vec::new();
        for id in candidates {
            if q.limit.is_some_and(|l| out.len() >= l) {
                break;
            }
            if let Some(r) = inner.records.get(&id) {
                if q.matches(r) {
                    out.push(r.clone());
                }
            }
        }
        out
    }

    /// Convenience: number of records matching a query.
    pub fn count(&self, q: &Query) -> usize {
        self.query(q).len()
    }

    /// Compacts the durable log: rewrites it to contain exactly one
    /// `Insert` per live record, dropping superseded insert/delete
    /// pairs. A no-op (returning 0) for in-memory repositories.
    ///
    /// Returns the number of log entries after compaction.
    pub fn compact(&self) -> io::Result<usize> {
        let Some(log) = &self.log else {
            return Ok(0);
        };
        // Hold both locks for the duration: no mutation may interleave
        // between snapshotting the records and swapping the file.
        let inner = self.inner.write();
        let mut log = log.write();
        let entries: Vec<LogEntry> = inner
            .records
            .values()
            .map(|r| LogEntry::Insert(r.clone()))
            .collect();
        MetadataLog::rewrite(log.path(), &entries)?;
        // Reopen the handle so subsequent appends go to the new file.
        let path = log.path().to_owned();
        *log = MetadataLog::open(path)?;
        Ok(entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrValue;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dievent-metadata-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("store-{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn populate(repo: &MetadataRepository) {
        for cam in 0..2i64 {
            for shot in 0..5i64 {
                let start = shot as f64 * 4.0;
                repo.insert(
                    MetaRecord::new(RecordKind::Shot)
                        .with_span(start, start + 4.0)
                        .with_attr("camera", cam)
                        .with_attr("shot", shot),
                )
                .unwrap();
            }
        }
        repo.insert(
            MetaRecord::new(RecordKind::Event)
                .with_attr("location", "IRIT")
                .with_attr("menu", AttrValue::List(vec!["salad".into()])),
        )
        .unwrap();
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let repo = MetadataRepository::in_memory();
        let a = repo.insert(MetaRecord::new(RecordKind::Event)).unwrap();
        let b = repo.insert(MetaRecord::new(RecordKind::Event)).unwrap();
        assert!(b > a);
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.get(a).unwrap().id, a);
        assert!(repo.get(RecordId(999)).is_none());
    }

    #[test]
    fn delete_removes_from_queries() {
        let repo = MetadataRepository::in_memory();
        populate(&repo);
        let q = Query::new().kind(RecordKind::Shot);
        assert_eq!(repo.count(&q), 10);
        let victim = repo.query(&q)[0].id;
        assert!(repo.delete(victim).unwrap());
        assert!(!repo.delete(victim).unwrap(), "double delete is false");
        assert_eq!(repo.count(&q), 9);
        assert!(repo.get(victim).is_none());
    }

    #[test]
    fn attribute_index_query() {
        let repo = MetadataRepository::in_memory();
        populate(&repo);
        let q = Query::new().eq("camera", 1i64);
        let res = repo.query(&q);
        assert_eq!(res.len(), 5);
        assert!(res
            .iter()
            .all(|r| r.attr("camera") == Some(&AttrValue::Int(1))));
        // Ordered by id.
        assert!(res.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn span_overlap_query() {
        let repo = MetadataRepository::in_memory();
        populate(&repo);
        // Shots overlapping [6, 9): shot 1 ([4,8)) and shot 2 ([8,12)).
        let q = Query::new().overlapping(6.0, 9.0).kind(RecordKind::Shot);
        let res = repo.query(&q);
        let shots: Vec<i64> = res
            .iter()
            .filter_map(|r| r.attr("shot").and_then(|v| v.as_f64()).map(|f| f as i64))
            .collect();
        assert_eq!(res.len(), 4, "two shots × two cameras");
        assert!(shots.iter().all(|&s| s == 1 || s == 2));
    }

    #[test]
    fn conjunctive_query_uses_index_then_verifies() {
        let repo = MetadataRepository::in_memory();
        populate(&repo);
        let q = Query::new()
            .eq("camera", 0i64)
            .overlapping(0.0, 4.0)
            .kind(RecordKind::Shot);
        let res = repo.query(&q);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].attr("shot"), Some(&AttrValue::Int(0)));
    }

    #[test]
    fn limit_caps_results() {
        let repo = MetadataRepository::in_memory();
        populate(&repo);
        let q = Query::new().kind(RecordKind::Shot).limit(3);
        assert_eq!(repo.query(&q).len(), 3);
    }

    #[test]
    fn durable_round_trip() {
        let path = tmp("durable");
        let id;
        {
            let repo = MetadataRepository::open(&path).unwrap();
            populate(&repo);
            id = repo
                .insert(MetaRecord::new(RecordKind::Highlight).with_attr("kind", "ec-episode"))
                .unwrap();
            repo.delete(RecordId(0)).unwrap();
        }
        let reopened = MetadataRepository::open(&path).unwrap();
        assert_eq!(reopened.len(), 11, "10 shots + event + highlight − deleted");
        assert!(reopened.get(RecordId(0)).is_none());
        assert_eq!(
            reopened.get(id).unwrap().attr("kind"),
            Some(&AttrValue::Str("ec-episode".into()))
        );
        // Ids continue after the replayed maximum.
        let new_id = reopened.insert(MetaRecord::new(RecordKind::Event)).unwrap();
        assert!(new_id > id);
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_state() {
        let path = tmp("compact");
        let kept;
        {
            let repo = MetadataRepository::open(&path).unwrap();
            populate(&repo); // 11 inserts
                             // Churn: 20 inserts + 20 deletes = 40 more log entries.
            for i in 0..20i64 {
                let id = repo
                    .insert(MetaRecord::new(RecordKind::Highlight).with_attr("n", i))
                    .unwrap();
                repo.delete(id).unwrap();
            }
            let before = std::fs::metadata(&path).unwrap().len();
            let entries = repo.compact().unwrap();
            assert_eq!(entries, 11, "one insert per live record");
            let after = std::fs::metadata(&path).unwrap().len();
            assert!(after < before, "log must shrink: {before} → {after}");
            kept = repo.len();
            // The repository keeps working after compaction.
            repo.insert(MetaRecord::new(RecordKind::Event).with_attr("post", true))
                .unwrap();
        }
        let reopened = MetadataRepository::open(&path).unwrap();
        assert_eq!(reopened.len(), kept + 1);
        assert_eq!(reopened.count(&Query::new().eq("post", true)), 1);
        assert_eq!(reopened.count(&Query::new().kind(RecordKind::Shot)), 10);
    }

    #[test]
    fn compaction_is_a_noop_in_memory() {
        let repo = MetadataRepository::in_memory();
        populate(&repo);
        assert_eq!(repo.compact().unwrap(), 0);
        assert_eq!(repo.len(), 11);
    }

    #[test]
    fn concurrent_inserts_and_queries() {
        use std::sync::Arc;
        let repo = Arc::new(MetadataRepository::in_memory());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let repo = Arc::clone(&repo);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        repo.insert(
                            MetaRecord::new(RecordKind::FrameAnalysis)
                                .with_attr("thread", t as i64)
                                .with_attr("i", i as i64),
                        )
                        .unwrap();
                        if i % 10 == 0 {
                            let _ = repo.query(&Query::new().eq("thread", t as i64));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(repo.len(), 200);
        for t in 0..4i64 {
            assert_eq!(repo.count(&Query::new().eq("thread", t)), 50);
        }
    }

    #[test]
    fn numeric_range_index_query() {
        let repo = MetadataRepository::in_memory();
        // Scores spanning negatives, zero, and positives.
        for score in [-12.5f64, -1.0, 0.0, 3.25, 7.0, 42.0] {
            repo.insert(MetaRecord::new(RecordKind::FrameAnalysis).with_attr("valence", score))
                .unwrap();
        }
        let ge = repo.query(&Query::new().ge("valence", 0.0));
        assert_eq!(ge.len(), 4);
        let window = repo.query(&Query::new().ge("valence", -2.0).le("valence", 5.0));
        assert_eq!(window.len(), 3, "−1, 0, 3.25");
        let lt = repo.query(&Query::new().lt("valence", -1.0));
        assert_eq!(lt.len(), 1, "strict bound verified on candidates");
        // Deleting removes from the range index.
        let victim = ge[0].id;
        repo.delete(victim).unwrap();
        assert_eq!(repo.query(&Query::new().ge("valence", 0.0)).len(), 3);
    }

    #[test]
    fn telemetry_tracks_mutations_flushes_and_replay() {
        let path = tmp("telemetry");
        let telemetry = Telemetry::enabled();
        {
            let repo = MetadataRepository::open_with_telemetry(&path, &telemetry).unwrap();
            populate(&repo); // 11 inserts
            let victim = repo.query(&Query::new().kind(RecordKind::Shot))[0].id;
            repo.delete(victim).unwrap();
        }
        let report = telemetry.report();
        assert_eq!(report.counter("metadata_inserts"), Some(11));
        assert_eq!(report.counter("metadata_deletes"), Some(1));
        assert_eq!(report.counter("metadata_queries"), Some(1));
        // Every durable mutation flushed: 11 inserts + 1 delete.
        assert_eq!(
            report.histogram("metadata_flush_seconds").unwrap().count,
            12
        );
        assert_eq!(report.counter("metadata_replayed_entries"), Some(0));

        // Reopening replays the surviving entries.
        let reopen_t = Telemetry::enabled();
        let reopened = MetadataRepository::open_with_telemetry(&path, &reopen_t).unwrap();
        assert_eq!(reopened.len(), 10);
        let replay_report = reopen_t.report();
        assert_eq!(replay_report.counter("metadata_replayed_entries"), Some(12));
        assert_eq!(replay_report.span("metadata.replay").unwrap().count, 1);
    }

    #[test]
    fn full_scan_when_no_index_applies() {
        let repo = MetadataRepository::in_memory();
        populate(&repo);
        // `Has` alone offers nothing to any index.
        let q = Query::new().has("shot").ge("shot", 3.0);
        assert_eq!(repo.query(&q).len(), 4); // shots 3,4 × 2 cameras
    }
}
