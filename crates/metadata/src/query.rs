//! The typed query language over metadata records.
//!
//! Queries are conjunctions of predicates over a record's kind,
//! attributes, and time span — the "rich query vocabulary" the paper
//! wants for semantic retrieval ("find the scenes where everyone was
//! happy", "shots from camera 2 overlapping the dessert course").

use crate::record::{MetaRecord, RecordKind};
use crate::value::AttrValue;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A single predicate over one record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Record kind equals.
    KindIs(RecordKind),
    /// Attribute exists.
    Has(String),
    /// Attribute equals value.
    Eq(String, AttrValue),
    /// Attribute differs from value (missing attributes do not match).
    Ne(String, AttrValue),
    /// Attribute strictly less than value.
    Lt(String, AttrValue),
    /// Attribute less than or equal to value.
    Le(String, AttrValue),
    /// Attribute strictly greater than value.
    Gt(String, AttrValue),
    /// Attribute greater than or equal to value.
    Ge(String, AttrValue),
    /// Attribute (list or string) contains value.
    Contains(String, AttrValue),
    /// Record time span overlaps `[start, end)`.
    Overlaps(f64, f64),
}

impl Predicate {
    /// Evaluates the predicate on a record.
    pub fn matches(&self, r: &MetaRecord) -> bool {
        let cmp = |key: &str, value: &AttrValue, accept: fn(Ordering) -> bool| -> bool {
            r.attr(key)
                .and_then(|a| a.compare(value))
                .is_some_and(accept)
        };
        match self {
            Predicate::KindIs(k) => r.kind == *k,
            Predicate::Has(key) => r.attr(key).is_some(),
            Predicate::Eq(key, v) => cmp(key, v, |o| o == Ordering::Equal),
            Predicate::Ne(key, v) => cmp(key, v, |o| o != Ordering::Equal),
            Predicate::Lt(key, v) => cmp(key, v, |o| o == Ordering::Less),
            Predicate::Le(key, v) => cmp(key, v, |o| o != Ordering::Greater),
            Predicate::Gt(key, v) => cmp(key, v, |o| o == Ordering::Greater),
            Predicate::Ge(key, v) => cmp(key, v, |o| o != Ordering::Less),
            Predicate::Contains(key, v) => r.attr(key).is_some_and(|a| a.contains(v)),
            Predicate::Overlaps(s, e) => r.overlaps(*s, *e),
        }
    }
}

/// A conjunctive query (all predicates must match).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The conjunction of predicates.
    pub predicates: Vec<Predicate>,
    /// Optional result cap.
    pub limit: Option<usize>,
}

impl Query {
    /// An empty query matching everything.
    pub fn new() -> Self {
        Query::default()
    }

    /// Restricts to a record kind.
    pub fn kind(mut self, k: RecordKind) -> Self {
        self.predicates.push(Predicate::KindIs(k));
        self
    }

    /// Attribute equality.
    pub fn eq(mut self, key: &str, v: impl Into<AttrValue>) -> Self {
        self.predicates
            .push(Predicate::Eq(key.to_owned(), v.into()));
        self
    }

    /// Attribute ≥.
    pub fn ge(mut self, key: &str, v: impl Into<AttrValue>) -> Self {
        self.predicates
            .push(Predicate::Ge(key.to_owned(), v.into()));
        self
    }

    /// Attribute ≤.
    pub fn le(mut self, key: &str, v: impl Into<AttrValue>) -> Self {
        self.predicates
            .push(Predicate::Le(key.to_owned(), v.into()));
        self
    }

    /// Attribute strictly greater.
    pub fn gt(mut self, key: &str, v: impl Into<AttrValue>) -> Self {
        self.predicates
            .push(Predicate::Gt(key.to_owned(), v.into()));
        self
    }

    /// Attribute strictly less.
    pub fn lt(mut self, key: &str, v: impl Into<AttrValue>) -> Self {
        self.predicates
            .push(Predicate::Lt(key.to_owned(), v.into()));
        self
    }

    /// List/substring containment.
    pub fn contains(mut self, key: &str, v: impl Into<AttrValue>) -> Self {
        self.predicates
            .push(Predicate::Contains(key.to_owned(), v.into()));
        self
    }

    /// Attribute existence.
    pub fn has(mut self, key: &str) -> Self {
        self.predicates.push(Predicate::Has(key.to_owned()));
        self
    }

    /// Time-span overlap with `[start, end)`.
    pub fn overlapping(mut self, start: f64, end: f64) -> Self {
        self.predicates.push(Predicate::Overlaps(start, end));
        self
    }

    /// Caps the number of results.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Evaluates all predicates on one record.
    pub fn matches(&self, r: &MetaRecord) -> bool {
        self.predicates.iter().all(|p| p.matches(r))
    }

    /// The first `Eq` predicate with an indexable value, if any —
    /// the store uses it to probe the attribute index instead of
    /// scanning.
    pub(crate) fn indexable_eq(&self) -> Option<(&str, String)> {
        self.predicates.iter().find_map(|p| match p {
            Predicate::Eq(k, v) => v.index_key().map(|ik| (k.as_str(), ik)),
            _ => None,
        })
    }

    /// The first numeric range constraint, as
    /// `(attribute, lower_bound, upper_bound)` with inclusive finite
    /// bounds — used by the store's range index. Strict bounds are
    /// widened here (the candidate set may over-approximate; the full
    /// predicate check still runs on every candidate).
    pub(crate) fn numeric_range(&self) -> Option<(&str, f64, f64)> {
        // Pick the first attribute with any numeric bound, then gather
        // all bounds on that attribute.
        let attr = self.predicates.iter().find_map(|p| match p {
            Predicate::Ge(k, v)
            | Predicate::Gt(k, v)
            | Predicate::Le(k, v)
            | Predicate::Lt(k, v) => v.range_key().map(|_| k.as_str()),
            _ => None,
        })?;
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for p in &self.predicates {
            match p {
                Predicate::Ge(k, v) | Predicate::Gt(k, v) if k == attr => {
                    if let Some(x) = v.range_key() {
                        lo = lo.max(x);
                    }
                }
                Predicate::Le(k, v) | Predicate::Lt(k, v) if k == attr => {
                    if let Some(x) = v.range_key() {
                        hi = hi.min(x);
                    }
                }
                _ => {}
            }
        }
        Some((attr, lo, hi))
    }

    /// The kind restriction, if present.
    pub(crate) fn kind_filter(&self) -> Option<RecordKind> {
        self.predicates.iter().find_map(|p| match p {
            Predicate::KindIs(k) => Some(*k),
            _ => None,
        })
    }

    /// The first `Overlaps` predicate, if present.
    pub(crate) fn span_filter(&self) -> Option<(f64, f64)> {
        self.predicates.iter().find_map(|p| match p {
            Predicate::Overlaps(s, e) => Some((*s, *e)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shot() -> MetaRecord {
        MetaRecord::new(RecordKind::Shot)
            .with_span(10.0, 14.0)
            .with_attr("camera", 2i64)
            .with_attr("mean_oh", 62.5)
            .with_attr(
                "menu",
                AttrValue::List(vec!["salad".into(), "pasta".into()]),
            )
            .with_attr("location", "IRIT")
    }

    #[test]
    fn kind_and_eq() {
        let r = shot();
        assert!(Query::new().kind(RecordKind::Shot).matches(&r));
        assert!(!Query::new().kind(RecordKind::Scene).matches(&r));
        assert!(Query::new().eq("camera", 2i64).matches(&r));
        assert!(!Query::new().eq("camera", 3i64).matches(&r));
        assert!(!Query::new().eq("nonexistent", 1i64).matches(&r));
    }

    #[test]
    fn numeric_ranges() {
        let r = shot();
        assert!(Query::new().ge("mean_oh", 60.0).matches(&r));
        assert!(Query::new().le("mean_oh", 62.5).matches(&r));
        assert!(!Query::new().gt("mean_oh", 62.5).matches(&r));
        assert!(
            Query::new().lt("mean_oh", 100i64).matches(&r),
            "int vs float compares"
        );
    }

    #[test]
    fn type_mismatch_never_matches() {
        let r = shot();
        assert!(!Query::new().ge("location", 5i64).matches(&r));
        assert!(!Query::new().eq("location", 5i64).matches(&r));
        // Ne on missing attribute also fails (absence ≠ difference).
        assert!(!Query::new().predicates_ne("ghost", 5i64).matches(&r));
    }

    #[test]
    fn containment() {
        let r = shot();
        assert!(Query::new().contains("menu", "pasta").matches(&r));
        assert!(!Query::new().contains("menu", "soup").matches(&r));
        assert!(Query::new().contains("location", "RI").matches(&r));
    }

    #[test]
    fn overlap_and_conjunction() {
        let r = shot();
        let q = Query::new()
            .kind(RecordKind::Shot)
            .eq("camera", 2i64)
            .overlapping(13.9, 20.0);
        assert!(q.matches(&r));
        let q2 = Query::new().overlapping(14.0, 20.0);
        assert!(!q2.matches(&r));
    }

    #[test]
    fn has_and_planner_hooks() {
        let r = shot();
        assert!(Query::new().has("camera").matches(&r));
        assert!(!Query::new().has("ghost").matches(&r));
        let q = Query::new()
            .kind(RecordKind::Shot)
            .eq("camera", 2i64)
            .overlapping(0.0, 1.0);
        assert_eq!(q.kind_filter(), Some(RecordKind::Shot));
        assert_eq!(q.indexable_eq().unwrap().0, "camera");
        assert_eq!(q.span_filter(), Some((0.0, 1.0)));
        // Float equality is not indexable.
        let qf = Query::new().eq("mean_oh", 62.5);
        assert!(qf.indexable_eq().is_none());
    }

    impl Query {
        /// Test helper for the `Ne` variant (not part of the builder to
        /// keep its surface minimal).
        fn predicates_ne(mut self, key: &str, v: impl Into<AttrValue>) -> Self {
            self.predicates
                .push(Predicate::Ne(key.to_owned(), v.into()));
            self
        }
    }
}
