//! The metadata record model.

use crate::value::AttrValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Unique identifier of a record within a repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u64);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What a record describes — the levels of the Fig. 3 hierarchy plus
/// event-level context and frame-level analysis output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecordKind {
    /// A whole dining event (time-invariant context lives here).
    Event,
    /// A scene (group of shots).
    Scene,
    /// A shot (contiguous camera take).
    Shot,
    /// A key frame.
    Keyframe,
    /// Per-frame analysis output (look-at matrix, overall emotion).
    FrameAnalysis,
    /// A detected highlight (EC episode, emotion change, …).
    Highlight,
}

impl RecordKind {
    /// All kinds, in a stable order.
    pub const ALL: [RecordKind; 6] = [
        RecordKind::Event,
        RecordKind::Scene,
        RecordKind::Shot,
        RecordKind::Keyframe,
        RecordKind::FrameAnalysis,
        RecordKind::Highlight,
    ];
}

/// A metadata record: typed kind, optional time span, free-form typed
/// attributes, and an optional structured payload (e.g. a serialized
/// look-at matrix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaRecord {
    /// Record identity (assigned by the repository on insert).
    pub id: RecordId,
    /// What this record describes.
    pub kind: RecordKind,
    /// Time span `[start, end)` in seconds within the event's video,
    /// when applicable.
    pub span: Option<(f64, f64)>,
    /// Typed attributes.
    pub attrs: BTreeMap<String, AttrValue>,
    /// Structured payload (JSON), e.g. a serialized matrix.
    pub payload: Option<serde_json::Value>,
}

impl MetaRecord {
    /// Creates a record with no id (the repository assigns one).
    pub fn new(kind: RecordKind) -> Self {
        MetaRecord {
            id: RecordId(0),
            kind,
            span: None,
            attrs: BTreeMap::new(),
            payload: None,
        }
    }

    /// Builder: sets the time span.
    ///
    /// # Panics
    /// Panics when `start > end` or either bound is not finite.
    pub fn with_span(mut self, start: f64, end: f64) -> Self {
        assert!(
            start.is_finite() && end.is_finite() && start <= end,
            "invalid span {start}..{end}"
        );
        self.span = Some((start, end));
        self
    }

    /// Builder: sets one attribute.
    pub fn with_attr(mut self, key: &str, value: impl Into<AttrValue>) -> Self {
        self.attrs.insert(key.to_owned(), value.into());
        self
    }

    /// Builder: sets the payload.
    pub fn with_payload(mut self, payload: serde_json::Value) -> Self {
        self.payload = Some(payload);
        self
    }

    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.get(key)
    }

    /// Whether this record's span overlaps `[start, end)`.
    ///
    /// Records without a span never overlap anything.
    pub fn overlaps(&self, start: f64, end: f64) -> bool {
        match self.span {
            Some((s, e)) => s < end && start < e,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let r = MetaRecord::new(RecordKind::Shot)
            .with_span(1.0, 3.5)
            .with_attr("camera", 2i64)
            .with_attr("location", "IRIT")
            .with_payload(serde_json::json!({"keyframes": [12, 40]}));
        assert_eq!(r.kind, RecordKind::Shot);
        assert_eq!(r.span, Some((1.0, 3.5)));
        assert_eq!(r.attr("camera"), Some(&AttrValue::Int(2)));
        assert_eq!(r.attr("missing"), None);
        assert!(r.payload.is_some());
    }

    #[test]
    fn overlap_semantics_half_open() {
        let r = MetaRecord::new(RecordKind::Scene).with_span(10.0, 20.0);
        assert!(r.overlaps(15.0, 16.0));
        assert!(r.overlaps(5.0, 10.1));
        assert!(r.overlaps(19.9, 30.0));
        assert!(!r.overlaps(20.0, 25.0), "half-open end");
        assert!(!r.overlaps(5.0, 10.0), "half-open start");
        let unspanned = MetaRecord::new(RecordKind::Event);
        assert!(!unspanned.overlaps(0.0, 100.0));
    }

    #[test]
    #[should_panic]
    fn inverted_span_panics() {
        let _ = MetaRecord::new(RecordKind::Shot).with_span(5.0, 1.0);
    }

    #[test]
    fn kinds_are_complete_and_ordered() {
        assert_eq!(RecordKind::ALL.len(), 6);
        let mut sorted = RecordKind::ALL;
        sorted.sort();
        assert_eq!(sorted, RecordKind::ALL);
    }
}
