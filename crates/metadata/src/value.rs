//! Typed attribute values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A typed attribute value stored on a metadata record.
///
/// Comparisons only succeed between values of the same type family
/// (`Int` and `Float` compare numerically with each other); comparing
/// incompatible types yields `None`, which query predicates treat as
/// "no match" rather than an error — a heterogeneous repository must
/// tolerate schema drift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// UTF-8 string.
    Str(String),
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Ordered list of values.
    List(Vec<AttrValue>),
}

impl AttrValue {
    /// Numeric view of `Int`/`Float` values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Typed partial comparison (see type docs).
    pub fn compare(&self, other: &AttrValue) -> Option<Ordering> {
        match (self, other) {
            (AttrValue::Str(a), AttrValue::Str(b)) => Some(a.cmp(b)),
            (AttrValue::Bool(a), AttrValue::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Whether a `List` contains `item`, or a `Str` contains the given
    /// substring; `false` for other types.
    pub fn contains(&self, item: &AttrValue) -> bool {
        match (self, item) {
            (AttrValue::List(xs), it) => xs.iter().any(|x| x == it),
            (AttrValue::Str(s), AttrValue::Str(sub)) => s.contains(sub.as_str()),
            _ => false,
        }
    }

    /// A finite numeric key for range indexing, or `None` for
    /// non-numeric or non-finite values.
    pub fn range_key(&self) -> Option<f64> {
        self.as_f64().filter(|v| v.is_finite())
    }

    /// A stable string key for exact-match indexing, or `None` for
    /// values that are not indexable (floats, lists).
    pub fn index_key(&self) -> Option<String> {
        match self {
            AttrValue::Str(s) => Some(format!("s:{s}")),
            AttrValue::Int(i) => Some(format!("i:{i}")),
            AttrValue::Bool(b) => Some(format!("b:{b}")),
            AttrValue::Float(_) | AttrValue::List(_) => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::List(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<usize> for AttrValue {
    fn from(i: usize) -> Self {
        AttrValue::Int(i as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(f: f64) -> Self {
        AttrValue::Float(f)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            AttrValue::Int(2).compare(&AttrValue::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            AttrValue::Float(3.0).compare(&AttrValue::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incompatible_types_do_not_compare() {
        assert_eq!(AttrValue::from("x").compare(&AttrValue::Int(1)), None);
        assert_eq!(AttrValue::Bool(true).compare(&AttrValue::Float(1.0)), None);
    }

    #[test]
    fn string_ordering() {
        assert_eq!(
            AttrValue::from("apple").compare(&AttrValue::from("banana")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn contains_semantics() {
        let list = AttrValue::List(vec![1i64.into(), 2i64.into()]);
        assert!(list.contains(&AttrValue::Int(2)));
        assert!(!list.contains(&AttrValue::Int(5)));
        assert!(AttrValue::from("pasta carbonara").contains(&"carbo".into()));
        assert!(!AttrValue::Int(5).contains(&AttrValue::Int(5)));
    }

    #[test]
    fn index_keys_distinguish_types() {
        assert_eq!(AttrValue::from("1").index_key().unwrap(), "s:1");
        assert_eq!(AttrValue::Int(1).index_key().unwrap(), "i:1");
        assert_ne!(
            AttrValue::from("1").index_key(),
            AttrValue::Int(1).index_key()
        );
        assert!(AttrValue::Float(1.0).index_key().is_none());
    }

    #[test]
    fn display_round_trip_is_readable() {
        let v = AttrValue::List(vec!["a".into(), 1i64.into(), true.into()]);
        assert_eq!(v.to_string(), "[a, 1, true]");
    }
}
