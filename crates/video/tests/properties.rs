//! Property-based tests for the video substrate.

use dievent_video::{
    detect_shots, frame_distance, histogram_chi_square, histogram_intersection, GrayFrame,
    ShotDetectorConfig,
};
use proptest::prelude::*;

/// Arbitrary small frames with structured content (mix of rectangles),
/// plus free parameters for jitter.
fn frame_strategy() -> impl Strategy<Value = GrayFrame> {
    (
        4u32..24,
        4u32..24,
        0u8..=255,
        proptest::collection::vec((0i64..24, 0i64..24, 1u32..12, 1u32..12, 0u8..=255), 0..4),
    )
        .prop_map(|(w, h, bg, rects)| {
            let mut f = GrayFrame::new(w, h, bg);
            for (x, y, rw, rh, v) in rects {
                f.fill_rect(x, y, rw, rh, v);
            }
            f
        })
}

proptest! {
    #[test]
    fn histogram_is_a_distribution(f in frame_strategy()) {
        let h = f.histogram();
        prop_assert!((h.total() - 1.0).abs() < 1e-9);
        prop_assert!(h.bins.iter().all(|&b| (0.0..=1.0).contains(&b)));
    }

    #[test]
    fn histogram_metrics_agree_on_identity(f in frame_strategy()) {
        let h = f.histogram();
        prop_assert!(histogram_chi_square(&h, &h).abs() < 1e-12);
        prop_assert!((histogram_intersection(&h, &h) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chi_square_is_symmetric_and_bounded(a in frame_strategy(), b in frame_strategy()) {
        let (ha, hb) = (a.histogram(), b.histogram());
        let d1 = histogram_chi_square(&ha, &hb);
        let d2 = histogram_chi_square(&hb, &ha);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=2.0 + 1e-9).contains(&d1));
    }

    #[test]
    fn frame_distance_is_a_premetric(a in frame_strategy()) {
        // Same dimensions needed: compare a frame against itself and a
        // re-filled variant.
        prop_assert!(frame_distance(&a, &a).abs() < 1e-9);
        let mut b = a.clone();
        b.fill(128);
        let d = frame_distance(&a, &b);
        let d2 = frame_distance(&b, &a);
        prop_assert!((d - d2).abs() < 1e-12, "symmetric");
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn resize_stays_in_range_and_preserves_flatness(
        f in frame_strategy(),
        w in 1u32..40,
        h in 1u32..40,
    ) {
        let r = f.resize(w, h);
        prop_assert_eq!((r.width(), r.height()), (w, h));
        // Bilinear interpolation never exceeds the input range.
        let (min_in, max_in) = f
            .data()
            .iter()
            .fold((255u8, 0u8), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        prop_assert!(r.data().iter().all(|&v| v >= min_in && v <= max_in));
    }

    #[test]
    fn downsample_halves_and_preserves_mean(f in frame_strategy()) {
        let d = f.downsample2();
        prop_assert_eq!(d.width(), (f.width() / 2).max(1));
        prop_assert_eq!(d.height(), (f.height() / 2).max(1));
        // Box filtering keeps the mean close — but only claim it for
        // even dimensions, where no row/column is dropped.
        if f.width() % 2 == 0 && f.height() % 2 == 0 {
            prop_assert!((d.mean() - f.mean()).abs() < 8.0);
        }
        // Range containment always holds.
        let (lo, hi) = f
            .data()
            .iter()
            .fold((255u8, 0u8), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        prop_assert!(d.data().iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn shots_always_partition_the_video(
        frames in proptest::collection::vec(frame_strategy(), 0..30),
    ) {
        // Frames may differ in size here — shot detection requires a
        // uniform stream, so normalize first.
        let normalized: Vec<GrayFrame> = frames.iter().map(|f| f.resize(16, 16)).collect();
        let (shots, boundaries) = detect_shots(&normalized, &ShotDetectorConfig::default());
        if normalized.is_empty() {
            prop_assert!(shots.is_empty());
        } else {
            prop_assert_eq!(shots.first().unwrap().start, 0);
            prop_assert_eq!(shots.last().unwrap().end, normalized.len());
            for w in shots.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            for b in &boundaries {
                prop_assert!(b.frame < normalized.len());
                prop_assert!(shots.iter().any(|s| s.start == b.frame));
            }
        }
    }

    #[test]
    fn patch_never_reads_out_of_bounds(
        f in frame_strategy(),
        x0 in -30i64..30,
        y0 in -30i64..30,
        w in 1u32..20,
        h in 1u32..20,
    ) {
        let p = f.patch(x0, y0, w, h);
        prop_assert_eq!((p.width(), p.height()), (w, h));
        // Clamp semantics: every value exists in the source frame.
        for &v in p.data() {
            prop_assert!(f.data().contains(&v));
        }
    }
}
