//! Shot boundary detection (paper §II-B, step 1 of video parsing).
//!
//! A *shot* is an unbroken run of frames from a single camera take.
//! Two boundary types are detected, following the twin-comparison
//! approach standard in the video-indexing literature the paper cites:
//!
//! * **hard cuts** — a single inter-frame distance spike above an
//!   adaptive threshold (local mean + `k`·std over a sliding window);
//! * **gradual transitions** (fades/dissolves) — a run of moderate
//!   distances whose *accumulated* change exceeds the cut threshold.

use crate::diff::frame_distance;
use crate::frame::{GrayFrame, Timestamp};
use crate::stream::FrameIndex;
use serde::{Deserialize, Serialize};

/// How a shot boundary was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionKind {
    /// Abrupt cut between consecutive frames.
    Cut,
    /// Gradual transition (fade/dissolve) spanning several frames.
    Gradual,
}

/// A detected boundary: the first frame of the *new* shot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShotBoundary {
    /// Index of the first frame after the transition.
    pub frame: FrameIndex,
    /// Inter-frame (or accumulated) distance that triggered detection.
    pub score: f64,
    /// Cut or gradual.
    pub kind: TransitionKind,
}

/// A contiguous run of frames `[start, end)` belonging to one take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shot {
    /// First frame (inclusive).
    pub start: FrameIndex,
    /// One past the last frame (exclusive).
    pub end: FrameIndex,
}

impl Shot {
    /// Number of frames in the shot.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Returns `true` for a degenerate empty shot.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Returns `true` when `frame` belongs to this shot.
    pub fn contains(&self, frame: FrameIndex) -> bool {
        (self.start..self.end).contains(&frame)
    }

    /// The middle frame index of the shot.
    pub fn middle(&self) -> FrameIndex {
        self.start + self.len() / 2
    }

    /// Start/end timestamps given the stream fps.
    pub fn time_span(&self, fps: f64) -> (Timestamp, Timestamp) {
        (
            Timestamp::from_secs(self.start as f64 / fps),
            Timestamp::from_secs(self.end as f64 / fps),
        )
    }
}

/// Tuning parameters for the shot detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShotDetectorConfig {
    /// Absolute floor for the cut threshold: a distance must exceed this
    /// to ever be a boundary, whatever the local statistics say.
    pub min_cut_distance: f64,
    /// Multiplier `k` on the local standard deviation in the adaptive
    /// threshold `μ + k·σ`.
    pub sigma_factor: f64,
    /// Sliding-window length (frames) for local statistics.
    pub window: usize,
    /// Low threshold that starts a candidate gradual transition.
    pub gradual_low: f64,
    /// Accumulated distance needed to confirm a gradual transition.
    pub gradual_accum: f64,
    /// Minimum shot length in frames; boundaries closer than this to the
    /// previous boundary are suppressed (flash/noise rejection).
    pub min_shot_len: usize,
}

impl Default for ShotDetectorConfig {
    fn default() -> Self {
        ShotDetectorConfig {
            min_cut_distance: 0.18,
            sigma_factor: 4.0,
            window: 24,
            gradual_low: 0.06,
            gradual_accum: 0.35,
            min_shot_len: 5,
        }
    }
}

/// Detects shot boundaries and returns `(shots, boundaries)` covering
/// `frames` completely and in order.
///
/// An empty input yields no shots; a single frame yields one one-frame
/// shot.
pub fn detect_shots(
    frames: &[GrayFrame],
    config: &ShotDetectorConfig,
) -> (Vec<Shot>, Vec<ShotBoundary>) {
    if frames.is_empty() {
        return (Vec::new(), Vec::new());
    }
    if frames.len() == 1 {
        return (vec![Shot { start: 0, end: 1 }], Vec::new());
    }

    // Distances between consecutive frames: d[i] = dist(frame[i], frame[i+1]).
    let d: Vec<f64> = frames
        .windows(2)
        .map(|w| frame_distance(&w[0], &w[1]))
        .collect();

    let mut boundaries = Vec::new();
    let mut last_boundary: FrameIndex = 0;

    let mut i = 0;
    while i < d.len() {
        let dist = d[i];
        let boundary_frame = i + 1;
        let local = local_stats(&d, i, config.window);
        let cut_threshold =
            (local.mean + config.sigma_factor * local.std).max(config.min_cut_distance);

        if dist > cut_threshold {
            if boundary_frame - last_boundary >= config.min_shot_len {
                boundaries.push(ShotBoundary {
                    frame: boundary_frame,
                    score: dist,
                    kind: TransitionKind::Cut,
                });
                last_boundary = boundary_frame;
            }
            i += 1;
            continue;
        }

        // Twin comparison: moderate distance starts a gradual candidate.
        if dist > config.gradual_low {
            let start = i;
            let mut accum = 0.0;
            let mut j = i;
            while j < d.len() && d[j] > config.gradual_low {
                accum += d[j];
                j += 1;
            }
            let end_frame = j; // first frame after the transition run is j (0-based distance j spans frames j..j+1)
            if accum > config.gradual_accum
                && end_frame.saturating_sub(start) >= 2
                && end_frame + 1 > last_boundary
                && (end_frame + 1) - last_boundary >= config.min_shot_len
            {
                boundaries.push(ShotBoundary {
                    frame: end_frame + 1,
                    score: accum,
                    kind: TransitionKind::Gradual,
                });
                last_boundary = end_frame + 1;
            }
            i = j.max(i + 1);
            continue;
        }

        i += 1;
    }

    // Drop any boundary that would create an empty trailing shot.
    boundaries.retain(|b| b.frame < frames.len());

    let mut shots = Vec::with_capacity(boundaries.len() + 1);
    let mut start = 0;
    for b in &boundaries {
        shots.push(Shot {
            start,
            end: b.frame,
        });
        start = b.frame;
    }
    shots.push(Shot {
        start,
        end: frames.len(),
    });

    (shots, boundaries)
}

struct LocalStats {
    mean: f64,
    std: f64,
}

/// Mean/std of distances in a window *before* position `i` (causal), so a
/// cut spike does not inflate its own threshold.
fn local_stats(d: &[f64], i: usize, window: usize) -> LocalStats {
    let lo = i.saturating_sub(window);
    let slice = &d[lo..i];
    if slice.is_empty() {
        return LocalStats {
            mean: 0.0,
            std: 0.0,
        };
    }
    let mean = slice.iter().sum::<f64>() / slice.len() as f64;
    let var = slice.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / slice.len() as f64;
    LocalStats {
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A frame with deterministic texture derived from `content`, plus a
    /// little per-frame jitter to mimic sensor noise. Different `content`
    /// values shift the whole luminance band, so takes differ in both
    /// pixels and histogram — as real camera cuts do.
    fn frame(content: u32, jitter: u32) -> GrayFrame {
        let mut f = GrayFrame::new(32, 32, 0);
        f.mutate(|d| {
            let offset = (content * 37) % 180;
            for (i, px) in d.iter_mut().enumerate() {
                let base = offset + (i as u32 * 29) % 40;
                let n = (i as u32 * 13 + jitter * 7) % 9;
                *px = (base + n).min(255) as u8;
            }
        });
        f
    }

    fn take(content: u32, n: usize, offset: u32) -> Vec<GrayFrame> {
        (0..n).map(|j| frame(content, offset + j as u32)).collect()
    }

    #[test]
    fn empty_and_single_frame() {
        let cfg = ShotDetectorConfig::default();
        let (shots, bounds) = detect_shots(&[], &cfg);
        assert!(shots.is_empty() && bounds.is_empty());
        let (shots, bounds) = detect_shots(&[frame(1, 0)], &cfg);
        assert_eq!(shots, vec![Shot { start: 0, end: 1 }]);
        assert!(bounds.is_empty());
    }

    #[test]
    fn single_take_is_one_shot() {
        let frames = take(5, 40, 0);
        let (shots, bounds) = detect_shots(&frames, &ShotDetectorConfig::default());
        assert_eq!(shots.len(), 1, "boundaries: {bounds:?}");
        assert_eq!(shots[0], Shot { start: 0, end: 40 });
    }

    #[test]
    fn hard_cut_detected_at_exact_frame() {
        let mut frames = take(1, 20, 0);
        frames.extend(take(9, 20, 100));
        let (shots, bounds) = detect_shots(&frames, &ShotDetectorConfig::default());
        assert_eq!(shots.len(), 2, "bounds: {bounds:?}");
        assert_eq!(bounds.len(), 1);
        assert_eq!(bounds[0].frame, 20);
        assert_eq!(bounds[0].kind, TransitionKind::Cut);
        assert_eq!(shots[0], Shot { start: 0, end: 20 });
        assert_eq!(shots[1], Shot { start: 20, end: 40 });
    }

    #[test]
    fn multiple_cuts() {
        let mut frames = take(1, 15, 0);
        frames.extend(take(7, 15, 50));
        frames.extend(take(13, 15, 200));
        let (shots, bounds) = detect_shots(&frames, &ShotDetectorConfig::default());
        assert_eq!(shots.len(), 3, "bounds: {bounds:?}");
        assert_eq!(bounds[0].frame, 15);
        assert_eq!(bounds[1].frame, 30);
    }

    #[test]
    fn shots_partition_the_video() {
        let mut frames = take(1, 12, 0);
        frames.extend(take(3, 18, 40));
        frames.extend(take(5, 9, 90));
        let (shots, _) = detect_shots(&frames, &ShotDetectorConfig::default());
        assert_eq!(shots[0].start, 0);
        assert_eq!(shots.last().unwrap().end, frames.len());
        for w in shots.windows(2) {
            assert_eq!(w[0].end, w[1].start, "shots must tile without gaps");
        }
        let total: usize = shots.iter().map(Shot::len).sum();
        assert_eq!(total, frames.len());
    }

    #[test]
    fn gradual_fade_detected_as_gradual() {
        // Linear dissolve over 8 frames between two very different takes.
        let a = frame(1, 0);
        let b = frame(9, 0);
        let mut frames = take(1, 20, 0);
        for k in 1..8 {
            let t = k as f64 / 8.0;
            let mut mix = GrayFrame::new(32, 32, 0);
            let (da, db) = (a.clone(), b.clone());
            mix.mutate(|d| {
                for (i, px) in d.iter_mut().enumerate() {
                    let v = da.data()[i] as f64 * (1.0 - t) + db.data()[i] as f64 * t;
                    *px = v as u8;
                }
            });
            frames.push(mix);
        }
        frames.extend(take(9, 20, 300));
        let cfg = ShotDetectorConfig::default();
        let (shots, bounds) = detect_shots(&frames, &cfg);
        assert!(
            bounds.iter().any(|b| b.kind == TransitionKind::Gradual),
            "expected a gradual boundary, got {bounds:?}"
        );
        assert!(shots.len() >= 2);
    }

    #[test]
    fn min_shot_len_suppresses_flash() {
        // One-frame white flash inside a steady take must not split it
        // into a 1-frame shot.
        let mut frames = take(2, 15, 0);
        frames.push(GrayFrame::new(32, 32, 255));
        frames.extend(take(2, 15, 15));
        let cfg = ShotDetectorConfig::default();
        let (shots, _) = detect_shots(&frames, &cfg);
        for s in &shots {
            assert!(
                s.len() >= cfg.min_shot_len || shots.len() == 1,
                "short shot {s:?}"
            );
        }
    }

    #[test]
    fn shot_helpers() {
        let s = Shot { start: 10, end: 20 };
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert!(s.contains(10) && s.contains(19) && !s.contains(20));
        assert_eq!(s.middle(), 15);
        let (t0, t1) = s.time_span(25.0);
        assert!((t0.as_secs() - 0.4).abs() < 1e-12);
        assert!((t1.as_secs() - 0.8).abs() < 1e-12);
    }
}
