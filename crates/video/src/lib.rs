//! Video substrate for the DiEvent framework.
//!
//! Stage 2 of the DiEvent pipeline is *video composition analysis*
//! (paper §II-B, Fig. 3): a recorded video is parsed into a hierarchy of
//! **scenes → shots → key frames** so that later stages (feature
//! extraction, multilayer analysis) and end users (sociologists locating
//! relevant scenes) can address structured units instead of raw frames.
//!
//! This crate provides:
//!
//! * [`frame`] — grayscale/RGB pixel frames with timestamps, basic
//!   raster operations, and luminance histograms;
//! * [`stream`] — video stream abstractions and an in-memory video;
//! * [`diff`] — inter-frame dissimilarity metrics (histogram distance,
//!   pixel difference, edge change ratio) used by the parser;
//! * [`shots`] — shot boundary detection (hard cuts via adaptive
//!   thresholding and gradual transitions via twin comparison);
//! * [`keyframes`] — key-frame extraction within each shot;
//! * [`scenes`] — grouping shots into scenes by visual coherence;
//! * [`parse`] — the end-to-end [`parse::VideoParser`] producing the
//!   Fig. 3 [`parse::VideoStructure`].
//!
//! The crate is camera-agnostic: the synthetic renderer in
//! `dievent-scene` produces the same [`frame::GrayFrame`]s a capture
//! device would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod frame;
pub mod io;
pub mod keyframes;
pub mod parse;
pub mod scenes;
pub mod shots;
pub mod stream;

pub use diff::{
    edge_change_ratio, frame_distance, histogram_chi_square, histogram_intersection, pixel_mad,
};
pub use frame::{GrayFrame, Histogram, RgbFrame, Timestamp, HISTOGRAM_BINS};
pub use io::{load_pgm, read_pgm, save_pgm, save_ppm, write_pgm, write_ppm};
pub use keyframes::{extract_keyframes, KeyframeConfig};
pub use parse::{VideoParser, VideoParserConfig, VideoStructure};
pub use scenes::{segment_scenes, Scene, SceneConfig};
pub use shots::{detect_shots, Shot, ShotBoundary, ShotDetectorConfig, TransitionKind};
pub use stream::{FrameIndex, InMemoryVideo, VideoSpec, VideoStream};
