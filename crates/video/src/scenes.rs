//! Scene segmentation (paper §II-B, step 3 of video parsing).
//!
//! A *scene* is a group of temporally adjacent shots that share visual
//! content — e.g. repeated alternation between the two facing cameras of
//! the acquisition rig while the same dinner continues. Shots are merged
//! into scenes with an overlapping-links rule: shots whose signatures
//! match within a lookback window create links, and a scene boundary is
//! placed only where no link crosses.

use crate::diff::histogram_chi_square;
use crate::frame::{GrayFrame, Histogram};
use crate::shots::Shot;
use serde::{Deserialize, Serialize};

/// A scene: a contiguous range of shot indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scene {
    /// Index of the first shot (inclusive).
    pub first_shot: usize,
    /// One past the last shot (exclusive).
    pub last_shot: usize,
}

impl Scene {
    /// Number of shots in the scene.
    pub fn shot_count(&self) -> usize {
        self.last_shot.saturating_sub(self.first_shot)
    }

    /// Frame range `[start, end)` covered by the scene, given the shot list.
    pub fn frame_span(&self, shots: &[Shot]) -> (usize, usize) {
        if self.shot_count() == 0 {
            return (0, 0);
        }
        (shots[self.first_shot].start, shots[self.last_shot - 1].end)
    }
}

/// Tuning for scene segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Maximum χ² distance for two shots to be considered visually
    /// coherent (same scene).
    pub coherence_threshold: f64,
    /// How many previous shots of the current scene each new shot is
    /// compared against.
    pub lookback: usize,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            coherence_threshold: 0.35,
            lookback: 3,
        }
    }
}

/// Representative histogram of a shot: its middle frame's histogram.
fn shot_signature(frames: &[GrayFrame], shot: &Shot) -> Histogram {
    frames
        .get(shot.middle())
        .map(|f| f.histogram())
        .unwrap_or_else(Histogram::zeroed)
}

/// Groups consecutive `shots` into scenes with overlapping links.
///
/// Shot `j` *links to* shot `k` (`j < k ≤ j + lookback`) when their
/// signatures are within [`SceneConfig::coherence_threshold`]. A scene
/// boundary falls between shots `m` and `m+1` exactly when no link spans
/// it — so an A-B-A-B camera alternation stays one scene as long as the
/// A shots (and B shots) resemble each other within the lookback window.
///
/// Every shot belongs to exactly one scene; scenes are contiguous and
/// ordered. Empty input produces no scenes.
pub fn segment_scenes(frames: &[GrayFrame], shots: &[Shot], config: &SceneConfig) -> Vec<Scene> {
    if shots.is_empty() {
        return Vec::new();
    }
    let signatures: Vec<Histogram> = shots.iter().map(|s| shot_signature(frames, s)).collect();

    // covered[m] == true ⇒ some link spans the boundary between m and m+1.
    let n = shots.len();
    let mut covered = vec![false; n.saturating_sub(1)];
    for j in 0..n {
        let hi = (j + config.lookback).min(n - 1);
        for k in j + 1..=hi {
            if histogram_chi_square(&signatures[j], &signatures[k]) <= config.coherence_threshold {
                for c in &mut covered[j..k] {
                    *c = true;
                }
            }
        }
    }

    let mut scenes = Vec::new();
    let mut scene_start = 0usize;
    for (m, &cov) in covered.iter().enumerate() {
        if !cov {
            scenes.push(Scene {
                first_shot: scene_start,
                last_shot: m + 1,
            });
            scene_start = m + 1;
        }
    }
    scenes.push(Scene {
        first_shot: scene_start,
        last_shot: n,
    });
    scenes
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A frame whose luminance spreads ±30 around `v`, so takes with
    /// nearby `v` have overlapping histograms and distant ones do not.
    fn grad(v: u8) -> GrayFrame {
        let mut f = GrayFrame::new(16, 16, 0);
        f.mutate(|d| {
            for (i, px) in d.iter_mut().enumerate() {
                *px = (v as i32 - 30 + (i as i32 % 61)).clamp(0, 255) as u8;
            }
        });
        f
    }

    /// Builds frames for a sequence of (luminance, length) takes and the
    /// corresponding shot list.
    fn build(takes: &[(u8, usize)]) -> (Vec<GrayFrame>, Vec<Shot>) {
        let mut frames = Vec::new();
        let mut shots = Vec::new();
        for &(v, n) in takes {
            let start = frames.len();
            frames.extend((0..n).map(|_| grad(v)));
            shots.push(Shot {
                start,
                end: frames.len(),
            });
        }
        (frames, shots)
    }

    #[test]
    fn empty_input() {
        assert!(segment_scenes(&[], &[], &SceneConfig::default()).is_empty());
    }

    #[test]
    fn alternating_cameras_form_one_scene() {
        // A-B-A-B with identical content per camera: the lookback window
        // links each A-shot to the previous A-shot.
        let (frames, shots) = build(&[(40, 10), (200, 10), (40, 10), (200, 10)]);
        let scenes = segment_scenes(&frames, &shots, &SceneConfig::default());
        assert_eq!(scenes.len(), 1, "scenes = {scenes:?}");
        assert_eq!(
            scenes[0],
            Scene {
                first_shot: 0,
                last_shot: 4
            }
        );
    }

    #[test]
    fn content_change_splits_scenes() {
        // Two dissimilar blocks of shots.
        let (frames, shots) = build(&[(40, 10), (44, 10), (200, 10), (204, 10)]);
        let cfg = SceneConfig {
            coherence_threshold: 0.3,
            lookback: 1,
        };
        let scenes = segment_scenes(&frames, &shots, &cfg);
        assert_eq!(scenes.len(), 2, "scenes = {scenes:?}");
        assert_eq!(scenes[0].shot_count(), 2);
        assert_eq!(scenes[1].shot_count(), 2);
    }

    #[test]
    fn scenes_tile_all_shots() {
        let (frames, shots) = build(&[(40, 5), (130, 5), (40, 5), (220, 5), (40, 5)]);
        let scenes = segment_scenes(&frames, &shots, &SceneConfig::default());
        assert_eq!(scenes[0].first_shot, 0);
        assert_eq!(scenes.last().unwrap().last_shot, shots.len());
        for w in scenes.windows(2) {
            assert_eq!(w[0].last_shot, w[1].first_shot);
        }
    }

    #[test]
    fn frame_span_covers_scene() {
        let (frames, shots) = build(&[(40, 5), (42, 7)]);
        let scenes = segment_scenes(&frames, &shots, &SceneConfig::default());
        assert_eq!(scenes.len(), 1);
        assert_eq!(scenes[0].frame_span(&shots), (0, 12));
    }

    #[test]
    fn single_shot_single_scene() {
        let (frames, shots) = build(&[(50, 8)]);
        let scenes = segment_scenes(&frames, &shots, &SceneConfig::default());
        assert_eq!(
            scenes,
            vec![Scene {
                first_shot: 0,
                last_shot: 1
            }]
        );
        assert_eq!(scenes[0].shot_count(), 1);
    }
}
