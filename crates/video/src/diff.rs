//! Inter-frame dissimilarity metrics.
//!
//! Shot boundary detection (paper §II-B step 1) needs a scalar measure of
//! how different two consecutive frames are. Following the classic video
//! indexing literature the paper cites (its reference 19), this module
//! provides three complementary metrics and a blended [`frame_distance`]:
//!
//! * **histogram distance** — robust to small motion, catches global
//!   content changes (cuts);
//! * **pixel MAD** — mean absolute difference, sensitive to all change;
//! * **edge change ratio** — fraction of edge pixels that appear or
//!   disappear, robust to illumination shifts.

use crate::frame::{GrayFrame, Histogram};

/// Histogram intersection similarity in `[0, 1]` (1 = identical).
pub fn histogram_intersection(a: &Histogram, b: &Histogram) -> f64 {
    a.bins
        .iter()
        .zip(b.bins.iter())
        .map(|(&x, &y)| x.min(y))
        .sum()
}

/// χ² distance between histograms (0 = identical, larger = more
/// different). Symmetric form: `Σ (a−b)² / (a+b)`.
pub fn histogram_chi_square(a: &Histogram, b: &Histogram) -> f64 {
    a.bins
        .iter()
        .zip(b.bins.iter())
        .map(|(&x, &y)| {
            let s = x + y;
            if s <= 0.0 {
                0.0
            } else {
                (x - y) * (x - y) / s
            }
        })
        .sum()
}

/// Mean absolute pixel difference, normalized to `[0, 1]`.
///
/// # Panics
/// Panics when the frames have different dimensions.
pub fn pixel_mad(a: &GrayFrame, b: &GrayFrame) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "frames must share dimensions"
    );
    if a.data().is_empty() {
        return 0.0;
    }
    let sum: u64 = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| (x as i16 - y as i16).unsigned_abs() as u64)
        .sum();
    sum as f64 / (a.data().len() as f64 * 255.0)
}

/// Edge change ratio in `[0, 1]`: the larger of the fractions of edges
/// entering and exiting between the two frames.
///
/// # Panics
/// Panics when the frames have different dimensions.
pub fn edge_change_ratio(a: &GrayFrame, b: &GrayFrame, edge_threshold: u16) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "frames must share dimensions"
    );
    let ea = a.edge_map(edge_threshold);
    let eb = b.edge_map(edge_threshold);
    let count_a = ea.iter().filter(|&&e| e).count();
    let count_b = eb.iter().filter(|&&e| e).count();
    if count_a == 0 && count_b == 0 {
        return 0.0;
    }
    let exiting = ea.iter().zip(eb.iter()).filter(|&(&x, &y)| x && !y).count();
    let entering = ea.iter().zip(eb.iter()).filter(|&(&x, &y)| !x && y).count();
    let out_ratio = if count_a > 0 {
        exiting as f64 / count_a as f64
    } else {
        1.0
    };
    let in_ratio = if count_b > 0 {
        entering as f64 / count_b as f64
    } else {
        1.0
    };
    out_ratio.max(in_ratio)
}

/// Blended frame dissimilarity in `[0, 1]` used by the shot detector:
/// `0.5·χ²/2 + 0.3·MAD + 0.2·ECR` (χ² is bounded by 2 for normalized
/// histograms, so the blend stays in the unit interval).
pub fn frame_distance(a: &GrayFrame, b: &GrayFrame) -> f64 {
    let chi = histogram_chi_square(&a.histogram(), &b.histogram()) / 2.0;
    let mad = pixel_mad(a, b);
    let ecr = edge_change_ratio(a, b, 150);
    0.5 * chi + 0.3 * mad + 0.2 * ecr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: u8) -> GrayFrame {
        GrayFrame::new(32, 32, v)
    }

    fn textured(seed: u8) -> GrayFrame {
        let mut f = GrayFrame::new(32, 32, 0);
        f.mutate(|d| {
            for (i, px) in d.iter_mut().enumerate() {
                *px = ((i as u32 * 37 + seed as u32 * 101) % 256) as u8;
            }
        });
        f
    }

    #[test]
    fn identical_frames_have_zero_distance() {
        let f = textured(1);
        assert!(pixel_mad(&f, &f).abs() < 1e-12);
        assert!(edge_change_ratio(&f, &f, 150).abs() < 1e-12);
        let h = f.histogram();
        assert!(histogram_chi_square(&h, &h).abs() < 1e-12);
        assert!((histogram_intersection(&h, &h) - 1.0).abs() < 1e-9);
        assert!(frame_distance(&f, &f).abs() < 1e-9);
    }

    #[test]
    fn opposite_frames_have_max_mad() {
        let a = flat(0);
        let b = flat(255);
        assert!((pixel_mad(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_bounded_by_two() {
        let a = flat(0).histogram();
        let b = flat(255).histogram();
        let chi = histogram_chi_square(&a, &b);
        assert!(chi > 1.9 && chi <= 2.0 + 1e-12);
        assert!(histogram_intersection(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = textured(1);
        let b = textured(9);
        assert!((frame_distance(&a, &b) - frame_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn small_change_scores_below_cut() {
        let a = textured(1);
        // Shift one pixel — tiny change.
        let mut b = a.clone();
        b.set(3, 3, 255);
        let small = frame_distance(&a, &b);
        // Complete content replacement — large change.
        let c = flat(240);
        let big = frame_distance(&a, &c);
        assert!(small < 0.05, "small = {small}");
        assert!(big > 0.3, "big = {big}");
        assert!(big > 5.0 * small);
    }

    #[test]
    fn ecr_detects_appearing_edges() {
        let blank = flat(0);
        let mut edged = flat(0);
        edged.fill_rect(10, 0, 10, 32, 255);
        let ecr = edge_change_ratio(&blank, &edged, 150);
        assert!((ecr - 1.0).abs() < 1e-12, "all edges are new");
        // Symmetric: disappearing edges count too.
        assert!((edge_change_ratio(&edged, &blank, 150) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecr_zero_for_two_blank_frames() {
        assert_eq!(edge_change_ratio(&flat(0), &flat(0), 150), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_dims_panic() {
        let a = GrayFrame::new(4, 4, 0);
        let b = GrayFrame::new(5, 4, 0);
        let _ = pixel_mad(&a, &b);
    }

    #[test]
    fn distance_in_unit_interval() {
        for (a, b) in [
            (flat(0), flat(255)),
            (textured(3), textured(200)),
            (flat(128), textured(5)),
        ] {
            let d = frame_distance(&a, &b);
            assert!((0.0..=1.0).contains(&d), "d = {d}");
        }
    }
}
