//! Image file I/O: PGM (grayscale) and PPM (color), binary variants.
//!
//! The netpbm formats are the simplest widely-readable image container;
//! they let the examples dump rendered camera frames to disk where any
//! viewer (or test) can open them, without an image-codec dependency.

use crate::frame::{GrayFrame, RgbFrame};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes a grayscale frame as binary PGM (P5).
pub fn write_pgm(frame: &GrayFrame, w: &mut impl Write) -> io::Result<()> {
    write!(w, "P5\n{} {}\n255\n", frame.width(), frame.height())?;
    w.write_all(frame.data())
}

/// Writes a grayscale frame to a PGM file.
pub fn save_pgm(frame: &GrayFrame, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write_pgm(frame, &mut f)
}

/// Writes an RGB frame as binary PPM (P6).
pub fn write_ppm(frame: &RgbFrame, w: &mut impl Write) -> io::Result<()> {
    write!(w, "P6\n{} {}\n255\n", frame.width(), frame.height())?;
    for y in 0..frame.height() {
        for x in 0..frame.width() {
            w.write_all(&frame.get(x, y))?;
        }
    }
    Ok(())
}

/// Writes an RGB frame to a PPM file.
pub fn save_ppm(frame: &RgbFrame, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_ppm(frame, &mut f)
}

/// Reads a binary PGM (P5) frame.
pub fn read_pgm(r: &mut impl Read) -> io::Result<GrayFrame> {
    let mut reader = BufReader::new(r);
    let magic = read_token(&mut reader)?;
    if magic != "P5" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected P5, got {magic}"),
        ));
    }
    let width: u32 = parse_token(&mut reader)?;
    let height: u32 = parse_token(&mut reader)?;
    let maxval: u32 = parse_token(&mut reader)?;
    if maxval != 255 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("only maxval 255 supported, got {maxval}"),
        ));
    }
    let mut data = vec![0u8; (width * height) as usize];
    reader.read_exact(&mut data)?;
    Ok(GrayFrame::from_data(width, height, data))
}

/// Loads a PGM file.
pub fn load_pgm(path: impl AsRef<Path>) -> io::Result<GrayFrame> {
    let mut f = std::fs::File::open(path)?;
    read_pgm(&mut f)
}

/// Reads one whitespace-delimited header token, skipping `#` comments.
fn read_token(r: &mut impl BufRead) -> io::Result<String> {
    let mut token = String::new();
    let mut byte = [0u8; 1];
    // Skip whitespace and comments.
    loop {
        r.read_exact(&mut byte)?;
        match byte[0] {
            b'#' => {
                let mut line = String::new();
                r.read_line(&mut line)?;
            }
            c if c.is_ascii_whitespace() => {}
            c => {
                token.push(c as char);
                break;
            }
        }
    }
    loop {
        match r.read_exact(&mut byte) {
            Ok(()) => {
                if byte[0].is_ascii_whitespace() {
                    break;
                }
                token.push(byte[0] as char);
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
    }
    Ok(token)
}

fn parse_token<T: std::str::FromStr>(r: &mut impl BufRead) -> io::Result<T> {
    read_token(r)?
        .parse::<T>()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad numeric header token"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_round_trip() {
        let mut f = GrayFrame::new(13, 7, 40);
        f.fill_disk(6.0, 3.0, 2.5, 200);
        let mut buf = Vec::new();
        write_pgm(&f, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n13 7\n255\n"));
        let back = read_pgm(&mut buf.as_slice()).unwrap();
        assert_eq!(back.data(), f.data());
        assert_eq!((back.width(), back.height()), (13, 7));
    }

    #[test]
    fn pgm_file_round_trip() {
        let dir = std::env::temp_dir().join("dievent-video-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt-{}.pgm", std::process::id()));
        let mut f = GrayFrame::new(8, 8, 0);
        f.fill_rect(2, 2, 4, 4, 255);
        save_pgm(&f, &path).unwrap();
        let back = load_pgm(&path).unwrap();
        assert_eq!(back.data(), f.data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pgm_comments_in_header_skipped() {
        let src = b"P5\n# a comment line\n2 2\n255\n\x01\x02\x03\x04";
        let f = read_pgm(&mut src.as_slice()).unwrap();
        assert_eq!(f.data(), &[1, 2, 3, 4]);
    }

    #[test]
    fn bad_magic_rejected() {
        let src = b"P2\n2 2\n255\n....";
        assert!(read_pgm(&mut src.as_slice()).is_err());
    }

    #[test]
    fn truncated_pixels_rejected() {
        let src = b"P5\n4 4\n255\n\x01\x02";
        assert!(read_pgm(&mut src.as_slice()).is_err());
    }

    #[test]
    fn ppm_header_and_size() {
        let mut f = RgbFrame::new(3, 2, [10, 20, 30]);
        f.set(0, 0, [255, 0, 0]);
        let mut buf = Vec::new();
        write_ppm(&f, &mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(buf.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
        // First pixel red.
        let px = &buf[b"P6\n3 2\n255\n".len()..];
        assert_eq!(&px[..3], &[255, 0, 0]);
    }
}
