//! Key-frame extraction (paper §II-B, step 2 of video parsing).
//!
//! Each shot is summarized by one or more representative frames. The
//! extractor walks a shot and emits a new key frame whenever the content
//! has drifted far enough (histogram χ²) from the last key frame —
//! a static shot yields a single key frame, a busy one several.

// The frame index is part of the output, not just a cursor.
#![allow(clippy::needless_range_loop)]

use crate::diff::histogram_chi_square;
use crate::frame::GrayFrame;
use crate::shots::Shot;
use crate::stream::FrameIndex;
use serde::{Deserialize, Serialize};

/// Tuning for key-frame extraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyframeConfig {
    /// χ² histogram drift from the previous key frame that triggers a new
    /// key frame.
    pub drift_threshold: f64,
    /// Hard cap on key frames per shot (the earliest are kept).
    pub max_per_shot: usize,
}

impl Default for KeyframeConfig {
    fn default() -> Self {
        KeyframeConfig {
            drift_threshold: 0.08,
            max_per_shot: 8,
        }
    }
}

/// Selects key-frame indices for one `shot` of `frames`.
///
/// The first frame of a non-empty shot is always a key frame. Returned
/// indices are global frame indices in ascending order.
///
/// # Panics
/// Panics when the shot range exceeds `frames.len()`.
pub fn extract_keyframes(
    frames: &[GrayFrame],
    shot: &Shot,
    config: &KeyframeConfig,
) -> Vec<FrameIndex> {
    assert!(shot.end <= frames.len(), "shot {shot:?} out of range");
    if shot.is_empty() || config.max_per_shot == 0 {
        return Vec::new();
    }
    let mut keys = vec![shot.start];
    let mut last_hist = frames[shot.start].histogram();
    for idx in shot.start + 1..shot.end {
        if keys.len() >= config.max_per_shot {
            break;
        }
        let h = frames[idx].histogram();
        if histogram_chi_square(&last_hist, &h) > config.drift_threshold {
            keys.push(idx);
            last_hist = h;
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: u8) -> GrayFrame {
        GrayFrame::new(16, 16, v)
    }

    #[test]
    fn empty_shot_yields_nothing() {
        let frames = vec![flat(1), flat(2)];
        let shot = Shot { start: 1, end: 1 };
        assert!(extract_keyframes(&frames, &shot, &KeyframeConfig::default()).is_empty());
    }

    #[test]
    fn static_shot_yields_single_keyframe() {
        let frames: Vec<_> = (0..30).map(|_| flat(100)).collect();
        let shot = Shot { start: 0, end: 30 };
        let keys = extract_keyframes(&frames, &shot, &KeyframeConfig::default());
        assert_eq!(keys, vec![0]);
    }

    #[test]
    fn drifting_shot_yields_multiple_keyframes() {
        // Luminance ramps across histogram bins within one shot.
        let frames: Vec<_> = (0..32u8).map(|i| flat(i * 8)).collect();
        let shot = Shot { start: 0, end: 32 };
        let keys = extract_keyframes(&frames, &shot, &KeyframeConfig::default());
        assert!(keys.len() > 1, "keys = {keys:?}");
        assert_eq!(keys[0], 0, "first frame always a key frame");
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn max_per_shot_caps_output() {
        let frames: Vec<_> = (0..64u8).map(|i| flat(i.wrapping_mul(16))).collect();
        let shot = Shot { start: 0, end: 64 };
        let cfg = KeyframeConfig {
            drift_threshold: 0.01,
            max_per_shot: 3,
        };
        let keys = extract_keyframes(&frames, &shot, &cfg);
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn keyframes_stay_inside_shot() {
        let frames: Vec<_> = (0..40u8).map(|i| flat(i * 6)).collect();
        let shot = Shot { start: 10, end: 25 };
        let keys = extract_keyframes(&frames, &shot, &KeyframeConfig::default());
        assert!(keys.iter().all(|&k| shot.contains(k)), "keys = {keys:?}");
        assert_eq!(keys[0], 10);
    }

    #[test]
    #[should_panic]
    fn out_of_range_shot_panics() {
        let frames = vec![flat(0)];
        let shot = Shot { start: 0, end: 5 };
        let _ = extract_keyframes(&frames, &shot, &KeyframeConfig::default());
    }
}
