//! Pixel frames and luminance histograms.
//!
//! Frames are the unit of exchange between the acquisition platform, the
//! renderer, and every analysis stage. Grayscale is the working format
//! (LBP, histograms, and the face detector all operate on luminance);
//! [`RgbFrame`] exists for rendering color-coded participants and is
//! convertible via [`RgbFrame::to_gray`].

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bins used by luminance histograms throughout the crate.
pub const HISTOGRAM_BINS: usize = 64;

/// A video timestamp: seconds since the start of the recording.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Timestamp(pub f64);

impl Timestamp {
    /// Creates a timestamp from seconds.
    pub const fn from_secs(s: f64) -> Self {
        Timestamp(s)
    }

    /// Seconds since the start of the recording.
    pub const fn as_secs(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

/// An 8-bit grayscale frame.
///
/// Pixel data is stored row-major in a cheaply-clonable [`Bytes`] buffer:
/// frames flow through several pipeline stages (parsing, detection,
/// feature extraction) and sharing the underlying allocation keeps that
/// free of copies. Mutation happens through the builder-style raster
/// methods, which take `&mut self` and copy-on-write only when shared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrayFrame {
    width: u32,
    height: u32,
    /// Capture time.
    pub timestamp: Timestamp,
    data: Bytes,
}

impl GrayFrame {
    /// Creates a frame filled with `fill`.
    pub fn new(width: u32, height: u32, fill: u8) -> Self {
        GrayFrame {
            width,
            height,
            timestamp: Timestamp::default(),
            data: Bytes::from(vec![fill; (width * height) as usize]),
        }
    }

    /// Creates a frame from raw row-major pixel data.
    ///
    /// # Panics
    /// Panics when `data.len() != width * height`.
    pub fn from_data(width: u32, height: u32, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            (width * height) as usize,
            "pixel buffer size must match {width}x{height}"
        );
        GrayFrame {
            width,
            height,
            timestamp: Timestamp::default(),
            data: Bytes::from(data),
        }
    }

    /// Sets the timestamp (builder style).
    pub fn with_timestamp(mut self, t: Timestamp) -> Self {
        self.timestamp = t;
        self
    }

    /// Frame width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw row-major pixel data.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Pixel value at `(x, y)`; panics out of bounds in debug builds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y * self.width + x) as usize]
    }

    /// Pixel value at `(x, y)`, or `None` out of bounds.
    #[inline]
    pub fn try_get(&self, x: i64, y: i64) -> Option<u8> {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            None
        } else {
            Some(self.data[(y as u32 * self.width + x as u32) as usize])
        }
    }

    /// Pixel value with clamp-to-edge semantics for out-of-bounds reads
    /// (used by convolution kernels at the border).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Sets the pixel at `(x, y)`; ignores out-of-bounds writes.
    pub fn set(&mut self, x: i64, y: i64, value: u8) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        let idx = (y as u32 * self.width + x as u32) as usize;
        self.mutate(|data| data[idx] = value);
    }

    /// Applies a closure to a uniquely-owned copy of the pixel buffer.
    pub fn mutate(&mut self, f: impl FnOnce(&mut [u8])) {
        let mut vec = std::mem::take(&mut self.data).to_vec();
        f(&mut vec);
        self.data = Bytes::from(vec);
    }

    /// Fills the whole frame with `value`.
    pub fn fill(&mut self, value: u8) {
        self.mutate(|d| d.fill(value));
    }

    /// Fills an axis-aligned rectangle (clipped to the frame).
    pub fn fill_rect(&mut self, x0: i64, y0: i64, w: u32, h: u32, value: u8) {
        let width = self.width as i64;
        let height = self.height as i64;
        let x_start = x0.max(0);
        let y_start = y0.max(0);
        let x_end = (x0 + w as i64).min(width);
        let y_end = (y0 + h as i64).min(height);
        if x_start >= x_end || y_start >= y_end {
            return;
        }
        let fw = self.width as usize;
        self.mutate(|d| {
            for y in y_start..y_end {
                let row = y as usize * fw;
                d[row + x_start as usize..row + x_end as usize].fill(value);
            }
        });
    }

    /// Draws a filled disk (clipped to the frame). Used by the renderer
    /// for head blobs.
    pub fn fill_disk(&mut self, cx: f64, cy: f64, radius: f64, value: u8) {
        if radius <= 0.0 {
            return;
        }
        let x0 = (cx - radius).floor().max(0.0) as i64;
        let x1 = (cx + radius).ceil().min(self.width as f64 - 1.0) as i64;
        let y0 = (cy - radius).floor().max(0.0) as i64;
        let y1 = (cy + radius).ceil().min(self.height as f64 - 1.0) as i64;
        if x0 > x1 || y0 > y1 {
            return;
        }
        let r2 = radius * radius;
        let fw = self.width as usize;
        self.mutate(|d| {
            for y in y0..=y1 {
                let dy = y as f64 - cy;
                for x in x0..=x1 {
                    let dx = x as f64 - cx;
                    if dx * dx + dy * dy <= r2 {
                        d[y as usize * fw + x as usize] = value;
                    }
                }
            }
        });
    }

    /// Mean luminance of the frame.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.data.iter().map(|&v| v as u64).sum();
        sum as f64 / self.data.len() as f64
    }

    /// Normalized luminance [`Histogram`] of the frame.
    pub fn histogram(&self) -> Histogram {
        let mut bins = [0.0f64; HISTOGRAM_BINS];
        let scale = HISTOGRAM_BINS as f64 / 256.0;
        for &v in self.data.iter() {
            bins[(v as f64 * scale) as usize % HISTOGRAM_BINS] += 1.0;
        }
        let total = self.data.len().max(1) as f64;
        for b in &mut bins {
            *b /= total;
        }
        Histogram { bins }
    }

    /// 2× box-filter downsample (dimensions halved, rounding down).
    pub fn downsample2(&self) -> GrayFrame {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut out = vec![0u8; (w * h) as usize];
        for y in 0..h {
            for x in 0..w {
                let sx = (x * 2).min(self.width - 1);
                let sy = (y * 2).min(self.height - 1);
                let a = self.get(sx, sy) as u16;
                let b = self.get((sx + 1).min(self.width - 1), sy) as u16;
                let c = self.get(sx, (sy + 1).min(self.height - 1)) as u16;
                let d2 =
                    self.get((sx + 1).min(self.width - 1), (sy + 1).min(self.height - 1)) as u16;
                out[(y * w + x) as usize] = ((a + b + c + d2) / 4) as u8;
            }
        }
        GrayFrame::from_data(w, h, out).with_timestamp(self.timestamp)
    }

    /// Extracts a rectangular patch with clamp-to-edge semantics for
    /// out-of-bounds regions.
    pub fn patch(&self, x0: i64, y0: i64, w: u32, h: u32) -> GrayFrame {
        let mut out = vec![0u8; (w * h) as usize];
        for y in 0..h {
            for x in 0..w {
                out[(y * w + x) as usize] = self.get_clamped(x0 + x as i64, y0 + y as i64);
            }
        }
        GrayFrame::from_data(w, h, out).with_timestamp(self.timestamp)
    }

    /// Bilinear resize to `(w, h)`.
    ///
    /// # Panics
    /// Panics when either target dimension is zero.
    pub fn resize(&self, w: u32, h: u32) -> GrayFrame {
        assert!(w > 0 && h > 0, "target dimensions must be non-zero");
        let sx = self.width as f64 / w as f64;
        let sy = self.height as f64 / h as f64;
        let mut out = Vec::with_capacity((w * h) as usize);
        for y in 0..h {
            let fy = (y as f64 + 0.5) * sy - 0.5;
            let y0 = fy.floor();
            let ty = fy - y0;
            for x in 0..w {
                let fx = (x as f64 + 0.5) * sx - 0.5;
                let x0 = fx.floor();
                let tx = fx - x0;
                let p = |dx: i64, dy: i64| self.get_clamped(x0 as i64 + dx, y0 as i64 + dy) as f64;
                let top = p(0, 0) * (1.0 - tx) + p(1, 0) * tx;
                let bot = p(0, 1) * (1.0 - tx) + p(1, 1) * tx;
                out.push((top * (1.0 - ty) + bot * ty).round().clamp(0.0, 255.0) as u8);
            }
        }
        GrayFrame::from_data(w, h, out).with_timestamp(self.timestamp)
    }

    /// Sobel gradient magnitude, thresholded to a binary edge map
    /// (`true` = edge). Used by the edge-change-ratio dissimilarity.
    pub fn edge_map(&self, threshold: u16) -> Vec<bool> {
        let w = self.width as i64;
        let h = self.height as i64;
        let mut out = vec![false; (self.width * self.height) as usize];
        for y in 0..h {
            for x in 0..w {
                let p = |dx: i64, dy: i64| self.get_clamped(x + dx, y + dy) as i32;
                let gx = -p(-1, -1) - 2 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2 * p(1, 0) + p(1, 1);
                let gy = -p(-1, -1) - 2 * p(0, -1) - p(1, -1) + p(-1, 1) + 2 * p(0, 1) + p(1, 1);
                let mag = (gx.unsigned_abs() + gy.unsigned_abs()) as u16;
                out[(y * w + x) as usize] = mag > threshold;
            }
        }
        out
    }
}

/// An 8-bit RGB frame (interleaved `r,g,b` row-major).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RgbFrame {
    width: u32,
    height: u32,
    /// Capture time.
    pub timestamp: Timestamp,
    data: Vec<u8>,
}

impl RgbFrame {
    /// Creates a frame filled with the given color.
    pub fn new(width: u32, height: u32, fill: [u8; 3]) -> Self {
        let mut data = Vec::with_capacity((width * height * 3) as usize);
        for _ in 0..width * height {
            data.extend_from_slice(&fill);
        }
        RgbFrame {
            width,
            height,
            timestamp: Timestamp::default(),
            data,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel at `(x, y)`.
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        let i = ((y * self.width + x) * 3) as usize;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Sets the pixel at `(x, y)`; ignores out-of-bounds writes.
    pub fn set(&mut self, x: i64, y: i64, rgb: [u8; 3]) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        let i = ((y as u32 * self.width + x as u32) * 3) as usize;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Draws a filled disk (clipped to the frame).
    pub fn fill_disk(&mut self, cx: f64, cy: f64, radius: f64, rgb: [u8; 3]) {
        let x0 = (cx - radius).floor() as i64;
        let x1 = (cx + radius).ceil() as i64;
        let y0 = (cy - radius).floor() as i64;
        let y1 = (cy + radius).ceil() as i64;
        let r2 = radius * radius;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                if dx * dx + dy * dy <= r2 {
                    self.set(x, y, rgb);
                }
            }
        }
    }

    /// Converts to grayscale using the Rec. 601 luma weights.
    pub fn to_gray(&self) -> GrayFrame {
        let mut out = Vec::with_capacity((self.width * self.height) as usize);
        for px in self.data.chunks_exact(3) {
            let y = 0.299 * px[0] as f64 + 0.587 * px[1] as f64 + 0.114 * px[2] as f64;
            out.push(y.round().clamp(0.0, 255.0) as u8);
        }
        GrayFrame::from_data(self.width, self.height, out).with_timestamp(self.timestamp)
    }
}

/// A normalized luminance histogram (sums to 1 for non-empty frames).
///
/// Not serializable by design: histograms are derived data, recomputed
/// from frames on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Normalized bin weights.
    pub bins: [f64; HISTOGRAM_BINS],
}

impl Histogram {
    /// A histogram with all mass in bin 0 (an all-black frame).
    pub fn zeroed() -> Self {
        let mut bins = [0.0; HISTOGRAM_BINS];
        bins[0] = 1.0;
        Histogram { bins }
    }

    /// Sum of all bins (≈1 for a normalized histogram).
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frame_is_uniform() {
        let f = GrayFrame::new(8, 4, 77);
        assert_eq!(f.width(), 8);
        assert_eq!(f.height(), 4);
        assert!(f.data().iter().all(|&v| v == 77));
        assert!((f.mean() - 77.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn from_data_size_mismatch_panics() {
        let _ = GrayFrame::from_data(4, 4, vec![0; 15]);
    }

    #[test]
    fn set_get_round_trip() {
        let mut f = GrayFrame::new(10, 10, 0);
        f.set(3, 4, 200);
        assert_eq!(f.get(3, 4), 200);
        assert_eq!(f.try_get(3, 4), Some(200));
        assert_eq!(f.try_get(-1, 0), None);
        assert_eq!(f.try_get(10, 0), None);
    }

    #[test]
    fn out_of_bounds_writes_ignored() {
        let mut f = GrayFrame::new(4, 4, 0);
        f.set(-1, 0, 255);
        f.set(0, 99, 255);
        assert!(f.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn clone_shares_then_diverges_on_write() {
        let mut a = GrayFrame::new(6, 6, 10);
        let b = a.clone();
        a.set(0, 0, 99);
        assert_eq!(a.get(0, 0), 99);
        assert_eq!(b.get(0, 0), 10, "clone must not observe the write");
    }

    #[test]
    fn fill_rect_clips() {
        let mut f = GrayFrame::new(8, 8, 0);
        f.fill_rect(6, 6, 10, 10, 50);
        assert_eq!(f.get(7, 7), 50);
        assert_eq!(f.get(5, 5), 0);
        // Entirely outside: no-op.
        f.fill_rect(-20, -20, 5, 5, 99);
        assert_eq!(f.get(0, 0), 0);
    }

    #[test]
    fn disk_is_round() {
        let mut f = GrayFrame::new(21, 21, 0);
        f.fill_disk(10.0, 10.0, 5.0, 255);
        assert_eq!(f.get(10, 10), 255);
        assert_eq!(f.get(10, 14), 255);
        assert_eq!(f.get(10, 16), 0);
        // Corners of the bounding box stay empty.
        assert_eq!(f.get(6, 6), 0);
    }

    #[test]
    fn histogram_is_normalized() {
        let mut f = GrayFrame::new(16, 16, 0);
        f.fill_rect(0, 0, 8, 16, 255);
        let h = f.histogram();
        assert!((h.total() - 1.0).abs() < 1e-9);
        assert!((h.bins[0] - 0.5).abs() < 1e-9);
        assert!((h.bins[HISTOGRAM_BINS - 1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn downsample_halves_dimensions() {
        let f = GrayFrame::new(640, 480, 128);
        let d = f.downsample2();
        assert_eq!(d.width(), 320);
        assert_eq!(d.height(), 240);
        assert!((d.mean() - 128.0).abs() < 1.0);
    }

    #[test]
    fn patch_clamps_at_border() {
        let mut f = GrayFrame::new(4, 4, 7);
        f.set(0, 0, 100);
        let p = f.patch(-2, -2, 3, 3);
        // Everything clamps to (0,0).
        assert!(p.data().iter().all(|&v| v == 100));
    }

    #[test]
    fn resize_preserves_uniform_frames() {
        let f = GrayFrame::new(17, 13, 99);
        let r = f.resize(48, 48);
        assert_eq!((r.width(), r.height()), (48, 48));
        assert!(r.data().iter().all(|&v| v == 99));
    }

    #[test]
    fn resize_identity_is_lossless() {
        let mut f = GrayFrame::new(9, 9, 0);
        f.fill_disk(4.0, 4.0, 3.0, 200);
        let r = f.resize(9, 9);
        assert_eq!(r.data(), f.data());
    }

    #[test]
    fn resize_upscales_structure() {
        let mut f = GrayFrame::new(8, 8, 0);
        f.fill_rect(0, 0, 4, 8, 200);
        let r = f.resize(16, 16);
        assert!(r.get(1, 8) > 150, "left half stays bright");
        assert!(r.get(14, 8) < 50, "right half stays dark");
    }

    #[test]
    #[should_panic]
    fn resize_to_zero_panics() {
        let _ = GrayFrame::new(4, 4, 0).resize(0, 4);
    }

    #[test]
    fn edge_map_finds_step_edge() {
        let mut f = GrayFrame::new(16, 16, 0);
        f.fill_rect(8, 0, 8, 16, 255);
        let edges = f.edge_map(100);
        // Edge pixels concentrate around column 8.
        let edge_count_near = (0..16)
            .filter(|&y| edges[y * 16 + 7] || edges[y * 16 + 8])
            .count();
        assert!(edge_count_near >= 14);
        assert!(!edges[5 * 16 + 2], "flat region has no edges");
    }

    #[test]
    fn rgb_to_gray_weights() {
        let mut f = RgbFrame::new(2, 1, [0, 0, 0]);
        f.set(0, 0, [255, 0, 0]);
        f.set(1, 0, [0, 255, 0]);
        let g = f.to_gray();
        assert_eq!(g.get(0, 0), 76); // 0.299*255
        assert_eq!(g.get(1, 0), 150); // 0.587*255
    }

    #[test]
    fn rgb_disk_clips() {
        let mut f = RgbFrame::new(8, 8, [0, 0, 0]);
        f.fill_disk(0.0, 0.0, 3.0, [10, 20, 30]);
        assert_eq!(f.get(0, 0), [10, 20, 30]);
        assert_eq!(f.get(7, 7), [0, 0, 0]);
    }

    #[test]
    fn timestamp_formatting() {
        assert_eq!(Timestamp::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(Timestamp::from_secs(1.5).as_secs(), 1.5);
    }
}
