//! End-to-end video parsing — the Fig. 3 hierarchy.
//!
//! Combines shot boundary detection, key-frame extraction and scene
//! segmentation into a single [`VideoParser`] producing a
//! [`VideoStructure`]: `video → scenes → shots → key frames`.

use crate::frame::GrayFrame;
use crate::keyframes::{extract_keyframes, KeyframeConfig};
use crate::scenes::{segment_scenes, Scene, SceneConfig};
use crate::shots::{detect_shots, Shot, ShotBoundary, ShotDetectorConfig};
use crate::stream::{FrameIndex, VideoSpec, VideoStream};
use dievent_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Configuration for the full parsing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VideoParserConfig {
    /// Shot boundary detection parameters.
    pub shots: ShotDetectorConfig,
    /// Key-frame extraction parameters.
    pub keyframes: KeyframeConfig,
    /// Scene segmentation parameters.
    pub scenes: SceneConfig,
}

/// The parsed structure of a video (paper Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoStructure {
    /// Stream properties of the parsed video.
    pub spec: VideoSpec,
    /// Total number of frames parsed.
    pub frame_count: usize,
    /// Detected scenes (ranges of shot indices).
    pub scenes: Vec<Scene>,
    /// Detected shots (ranges of frame indices).
    pub shots: Vec<Shot>,
    /// Detected boundaries between shots.
    pub boundaries: Vec<ShotBoundary>,
    /// Key frames per shot: `keyframes[s]` are global frame indices for
    /// shot `s`.
    pub keyframes: Vec<Vec<FrameIndex>>,
}

impl VideoStructure {
    /// All key-frame indices across the video, ascending.
    pub fn all_keyframes(&self) -> Vec<FrameIndex> {
        let mut all: Vec<FrameIndex> = self.keyframes.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    /// Index of the shot containing `frame`, if any.
    pub fn shot_of_frame(&self, frame: FrameIndex) -> Option<usize> {
        // Shots are sorted and tile the video: binary search on start.
        let idx = self.shots.partition_point(|s| s.start <= frame);
        idx.checked_sub(1)
            .filter(|&i| self.shots[i].contains(frame))
    }

    /// Index of the scene containing `frame`, if any.
    pub fn scene_of_frame(&self, frame: FrameIndex) -> Option<usize> {
        let shot = self.shot_of_frame(frame)?;
        self.scenes
            .iter()
            .position(|sc| (sc.first_shot..sc.last_shot).contains(&shot))
    }

    /// Human-readable outline of the hierarchy, one line per node.
    pub fn outline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "video: {} frames @ {:.2} fps ({:.1}s)",
            self.frame_count,
            self.spec.fps,
            self.frame_count as f64 / self.spec.fps
        );
        for (si, scene) in self.scenes.iter().enumerate() {
            let (f0, f1) = scene.frame_span(&self.shots);
            let _ = writeln!(
                out,
                "  scene {si}: shots {}..{} (frames {f0}..{f1})",
                scene.first_shot, scene.last_shot
            );
            for s in scene.first_shot..scene.last_shot {
                let shot = &self.shots[s];
                let _ = writeln!(
                    out,
                    "    shot {s}: frames {}..{} keyframes {:?}",
                    shot.start, shot.end, self.keyframes[s]
                );
            }
        }
        out
    }
}

/// Parses videos into the Fig. 3 hierarchy.
#[derive(Debug, Clone, Default)]
pub struct VideoParser {
    config: VideoParserConfig,
    telemetry: Telemetry,
}

impl VideoParser {
    /// Creates a parser with the given configuration.
    pub fn new(config: VideoParserConfig) -> Self {
        VideoParser {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches the parser to a telemetry domain: parse calls record a
    /// `video.parse` span plus `shots_detected` / `keyframes_extracted`
    /// / `scenes_segmented` counters.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Parses frames that are already in memory.
    pub fn parse_frames(&self, spec: VideoSpec, frames: &[GrayFrame]) -> VideoStructure {
        let mut span = self.telemetry.span("video.parse");
        span.set("frames", frames.len());
        let (shots, boundaries) = detect_shots(frames, &self.config.shots);
        let keyframes: Vec<Vec<FrameIndex>> = shots
            .iter()
            .map(|s| extract_keyframes(frames, s, &self.config.keyframes))
            .collect();
        let scenes = segment_scenes(frames, &shots, &self.config.scenes);
        self.telemetry
            .counter("shots_detected")
            .add(shots.len() as u64);
        self.telemetry
            .counter("keyframes_extracted")
            .add(keyframes.iter().map(Vec::len).sum::<usize>() as u64);
        self.telemetry
            .counter("scenes_segmented")
            .add(scenes.len() as u64);
        VideoStructure {
            spec,
            frame_count: frames.len(),
            scenes,
            shots,
            boundaries,
            keyframes,
        }
    }

    /// Drains a [`VideoStream`] and parses it.
    pub fn parse_stream<S: VideoStream>(&self, stream: &mut S) -> VideoStructure {
        let spec = stream.spec();
        let frames = stream.collect_frames();
        self.parse_frames(spec, &frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::InMemoryVideo;

    fn textured(content: u32, jitter: u32) -> GrayFrame {
        let mut f = GrayFrame::new(32, 32, 0);
        f.mutate(|d| {
            let offset = (content * 37) % 180;
            for (i, px) in d.iter_mut().enumerate() {
                let base = offset + (i as u32 * 29) % 40;
                *px = (base + (i as u32 * 13 + jitter) % 9).min(255) as u8;
            }
        });
        f
    }

    fn three_take_video() -> (VideoSpec, Vec<GrayFrame>) {
        let spec = VideoSpec {
            width: 32,
            height: 32,
            fps: 25.0,
        };
        let mut frames = Vec::new();
        for (content, n) in [(1u32, 20usize), (9, 20), (17, 20)] {
            for j in 0..n {
                frames.push(textured(content, j as u32));
            }
        }
        (spec, frames)
    }

    #[test]
    fn hierarchy_is_consistent() {
        let (spec, frames) = three_take_video();
        let s = VideoParser::default().parse_frames(spec, &frames);
        assert_eq!(s.frame_count, 60);
        assert_eq!(s.shots.len(), 3);
        assert_eq!(s.keyframes.len(), s.shots.len());
        // Every shot has at least one key frame inside it.
        for (i, keys) in s.keyframes.iter().enumerate() {
            assert!(!keys.is_empty());
            assert!(keys.iter().all(|&k| s.shots[i].contains(k)));
        }
        // Scenes cover all shots.
        assert_eq!(s.scenes.first().unwrap().first_shot, 0);
        assert_eq!(s.scenes.last().unwrap().last_shot, s.shots.len());
    }

    #[test]
    fn frame_lookup() {
        let (spec, frames) = three_take_video();
        let s = VideoParser::default().parse_frames(spec, &frames);
        assert_eq!(s.shot_of_frame(0), Some(0));
        assert_eq!(s.shot_of_frame(20), Some(1));
        assert_eq!(s.shot_of_frame(59), Some(2));
        assert_eq!(s.shot_of_frame(60), None);
        assert!(s.scene_of_frame(0).is_some());
        assert!(s.scene_of_frame(999).is_none());
    }

    #[test]
    fn parse_stream_equals_parse_frames() {
        let (spec, frames) = three_take_video();
        let direct = VideoParser::default().parse_frames(spec, &frames);
        let mut stream = InMemoryVideo::new(spec, frames);
        let via_stream = VideoParser::default().parse_stream(&mut stream);
        assert_eq!(direct.shots, via_stream.shots);
        assert_eq!(direct.scenes, via_stream.scenes);
    }

    #[test]
    fn all_keyframes_sorted_unique_enough() {
        let (spec, frames) = three_take_video();
        let s = VideoParser::default().parse_frames(spec, &frames);
        let all = s.all_keyframes();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert!(all.len() >= s.shots.len());
    }

    #[test]
    fn outline_mentions_every_level() {
        let (spec, frames) = three_take_video();
        let s = VideoParser::default().parse_frames(spec, &frames);
        let text = s.outline();
        assert!(text.contains("video:"));
        assert!(text.contains("scene 0"));
        assert!(text.contains("shot 0"));
        assert!(text.contains("keyframes"));
    }

    #[test]
    fn telemetry_records_parse_span_and_counters() {
        let (spec, frames) = three_take_video();
        let telemetry = Telemetry::enabled();
        let parser = VideoParser::default().with_telemetry(telemetry.clone());
        let s = parser.parse_frames(spec, &frames);
        let report = telemetry.report();
        assert_eq!(report.counter("shots_detected"), Some(s.shots.len() as u64));
        assert_eq!(
            report.counter("keyframes_extracted"),
            Some(s.all_keyframes().len() as u64)
        );
        assert_eq!(
            report.counter("scenes_segmented"),
            Some(s.scenes.len() as u64)
        );
        assert_eq!(report.span("video.parse").unwrap().count, 1);
    }

    #[test]
    fn empty_video_parses_to_empty_structure() {
        let spec = VideoSpec {
            width: 8,
            height: 8,
            fps: 25.0,
        };
        let s = VideoParser::default().parse_frames(spec, &[]);
        assert_eq!(s.frame_count, 0);
        assert!(s.shots.is_empty());
        assert!(s.scenes.is_empty());
        assert!(s.shot_of_frame(0).is_none());
    }
}
