//! Video streams — sequences of timestamped frames.

use crate::frame::{GrayFrame, Timestamp};
use serde::{Deserialize, Serialize};

/// Index of a frame within a video (0-based).
pub type FrameIndex = usize;

/// Static properties of a video stream.
///
/// The paper's acquisition platform records 640×480 at 25 fps (Fig. 2);
/// the §III prototype video has 610 frames over 40 s (≈15.25 fps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoSpec {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames per second.
    pub fps: f64,
}

impl VideoSpec {
    /// The acquisition-platform spec from paper Fig. 2.
    pub fn paper_acquisition() -> Self {
        VideoSpec {
            width: 640,
            height: 480,
            fps: 25.0,
        }
    }

    /// The §III prototype video: 610 frames over 40 seconds.
    pub fn paper_prototype() -> Self {
        VideoSpec {
            width: 640,
            height: 480,
            fps: 610.0 / 40.0,
        }
    }

    /// Timestamp of frame `index`.
    pub fn timestamp_of(&self, index: FrameIndex) -> Timestamp {
        Timestamp::from_secs(index as f64 / self.fps)
    }

    /// Index of the frame covering time `t` (clamped below at 0).
    pub fn frame_at(&self, t: f64) -> FrameIndex {
        (t.max(0.0) * self.fps).floor() as FrameIndex
    }
}

/// A source of sequential video frames.
///
/// Implemented by [`InMemoryVideo`] here and by the synthetic camera
/// streams in `dievent-scene`; consumers (the parser, the feature
/// extractor) are generic over this trait so they run identically on
/// recorded and simulated footage.
pub trait VideoStream {
    /// Stream properties.
    fn spec(&self) -> VideoSpec;

    /// Total number of frames, if known in advance.
    fn len_hint(&self) -> Option<usize>;

    /// Produces the next frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<GrayFrame>;

    /// Collects every remaining frame into memory.
    fn collect_frames(&mut self) -> Vec<GrayFrame> {
        let mut out = Vec::with_capacity(self.len_hint().unwrap_or(0));
        while let Some(f) = self.next_frame() {
            out.push(f);
        }
        out
    }
}

/// A video held entirely in memory — the working representation for the
/// 40-second prototype recordings and for all tests.
#[derive(Debug, Clone)]
pub struct InMemoryVideo {
    spec: VideoSpec,
    frames: Vec<GrayFrame>,
    cursor: usize,
}

impl InMemoryVideo {
    /// Wraps frames into a video. Timestamps are (re)assigned from the
    /// spec so that frame `i` is at `i / fps`.
    pub fn new(spec: VideoSpec, mut frames: Vec<GrayFrame>) -> Self {
        for (i, f) in frames.iter_mut().enumerate() {
            f.timestamp = spec.timestamp_of(i);
        }
        InMemoryVideo {
            spec,
            frames,
            cursor: 0,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` when the video has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Random access to a frame.
    pub fn frame(&self, index: FrameIndex) -> Option<&GrayFrame> {
        self.frames.get(index)
    }

    /// All frames.
    pub fn frames(&self) -> &[GrayFrame] {
        &self.frames
    }

    /// Duration in seconds (frame count / fps).
    pub fn duration(&self) -> f64 {
        self.frames.len() as f64 / self.spec.fps
    }

    /// Resets the stream cursor to the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

impl VideoStream for InMemoryVideo {
    fn spec(&self) -> VideoSpec {
        self.spec
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.frames.len().saturating_sub(self.cursor))
    }

    fn next_frame(&mut self) -> Option<GrayFrame> {
        let f = self.frames.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gray(v: u8) -> GrayFrame {
        GrayFrame::new(4, 4, v)
    }

    #[test]
    fn spec_timestamp_round_trip() {
        let spec = VideoSpec::paper_acquisition();
        assert_eq!(spec.fps, 25.0);
        assert!((spec.timestamp_of(25).as_secs() - 1.0).abs() < 1e-12);
        assert_eq!(spec.frame_at(1.0), 25);
        assert_eq!(spec.frame_at(-5.0), 0);
    }

    #[test]
    fn prototype_spec_matches_paper() {
        let spec = VideoSpec::paper_prototype();
        // 610 frames over 40 s.
        assert_eq!(spec.frame_at(40.0 - 1e-9), 609);
        assert!((spec.timestamp_of(610).as_secs() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn in_memory_video_streams_in_order() {
        let spec = VideoSpec {
            width: 4,
            height: 4,
            fps: 10.0,
        };
        let mut v = InMemoryVideo::new(spec, vec![gray(1), gray(2), gray(3)]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.len_hint(), Some(3));
        assert!((v.duration() - 0.3).abs() < 1e-12);
        let a = v.next_frame().unwrap();
        assert_eq!(a.data()[0], 1);
        assert!((a.timestamp.as_secs() - 0.0).abs() < 1e-12);
        let b = v.next_frame().unwrap();
        assert!((b.timestamp.as_secs() - 0.1).abs() < 1e-12);
        assert_eq!(v.len_hint(), Some(1));
        assert!(v.next_frame().is_some());
        assert!(v.next_frame().is_none());
        v.rewind();
        assert_eq!(v.collect_frames().len(), 3);
    }

    #[test]
    fn random_access() {
        let spec = VideoSpec {
            width: 4,
            height: 4,
            fps: 1.0,
        };
        let v = InMemoryVideo::new(spec, vec![gray(9), gray(8)]);
        assert_eq!(v.frame(1).unwrap().data()[0], 8);
        assert!(v.frame(2).is_none());
        assert!(!v.is_empty());
    }
}
