//! Property-based tests for the vision substrate.

use dievent_video::GrayFrame;
use dievent_vision::hungarian::assignment_cost;
use dievent_vision::{detect_faces, hungarian_min_assignment, DetectorConfig};
use proptest::prelude::*;

fn cost_matrix(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..100.0f64, n * n)
}

fn brute_force_best(costs: &[f64], n: usize) -> f64 {
    fn rec(costs: &[f64], n: usize, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
        if row == n {
            *best = best.min(acc);
            return;
        }
        for c in 0..n {
            if !used[c] {
                used[c] = true;
                rec(costs, n, row + 1, used, acc + costs[row * n + c], best);
                used[c] = false;
            }
        }
    }
    let mut best = f64::INFINITY;
    rec(costs, n, 0, &mut vec![false; n], 0.0, &mut best);
    best
}

proptest! {
    /// Hungarian result is a valid matching and globally optimal
    /// (checked against exhaustive search for n ≤ 5).
    #[test]
    fn hungarian_is_optimal_and_valid(n in 1usize..6, costs in cost_matrix(5)) {
        let costs = &costs[..n * n];
        let a = hungarian_min_assignment(costs, n, n);
        // Validity: all rows matched, columns unique.
        let cols: Vec<usize> = a.iter().map(|c| c.expect("square: all matched")).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n, "columns must be unique");
        // Optimality.
        let got = assignment_cost(costs, n, &a);
        let best = brute_force_best(costs, n);
        prop_assert!((got - best).abs() < 1e-9, "hungarian {} vs optimal {}", got, best);
    }

    /// Rectangular problems: exactly min(rows, cols) matches, columns
    /// unique, never out of range.
    #[test]
    fn hungarian_rectangular_validity(
        rows in 1usize..5,
        cols in 1usize..5,
        values in proptest::collection::vec(0.0..50.0f64, 16),
    ) {
        let costs = &values[..rows * cols];
        let a = hungarian_min_assignment(costs, rows, cols);
        prop_assert_eq!(a.len(), rows);
        let matched: Vec<usize> = a.iter().flatten().copied().collect();
        prop_assert_eq!(matched.len(), rows.min(cols));
        let mut sorted = matched.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), matched.len());
        prop_assert!(matched.iter().all(|&c| c < cols));
    }

    /// Every detection reported by the face detector is internally
    /// consistent: centroid inside bbox, radius consistent with the
    /// bbox, area within the bbox area, mean luminance above threshold.
    #[test]
    fn detections_are_internally_consistent(
        disks in proptest::collection::vec((10.0..150.0f64, 10.0..110.0f64, 3.0..20.0f64), 0..4),
    ) {
        let mut f = GrayFrame::new(160, 120, 40);
        for &(x, y, r) in &disks {
            f.fill_disk(x, y, r, 220);
        }
        let cfg = DetectorConfig::default();
        for d in detect_faces(&f, &cfg) {
            let (x0, y0, x1, y1) = d.bbox;
            prop_assert!(d.cx >= x0 as f64 && d.cx <= x1 as f64);
            prop_assert!(d.cy >= y0 as f64 && d.cy <= y1 as f64);
            prop_assert!((d.radius - (d.width() + d.height()) as f64 / 4.0).abs() < 1e-9);
            prop_assert!(d.area <= (d.width() * d.height()) as usize);
            prop_assert!(d.area >= cfg.min_area);
            prop_assert!(d.mean_luminance >= cfg.threshold as f64);
        }
    }
}
