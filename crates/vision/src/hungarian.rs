//! Hungarian algorithm (Kuhn–Munkres) for minimum-cost assignment.
//!
//! Used by the face tracker to associate detections with existing
//! tracks optimally, and by evaluation code to match detected
//! participants against ground truth. This is the O(n³) shortest
//! augmenting path formulation over a rectangular cost matrix.

// The classical 1-indexed formulation is clearest with raw indices.
#![allow(clippy::needless_range_loop)]

/// Solves the minimum-cost assignment for a `rows × cols` cost matrix
/// given in row-major order.
///
/// Returns `assignment[r] = Some(c)` for each row matched to column `c`
/// (each column used at most once). When `rows > cols`, the extra rows
/// stay `None`. Costs of `f64::INFINITY` mark forbidden pairs; a row
/// whose only options are forbidden may still be matched to a forbidden
/// column by the algorithm, so callers filter by cost afterwards.
///
/// # Panics
/// Panics when `costs.len() != rows * cols` or any cost is NaN.
pub fn hungarian_min_assignment(costs: &[f64], rows: usize, cols: usize) -> Vec<Option<usize>> {
    assert_eq!(costs.len(), rows * cols, "cost matrix shape mismatch");
    assert!(costs.iter().all(|c| !c.is_nan()), "NaN cost");
    if rows == 0 || cols == 0 {
        return vec![None; rows];
    }

    // Pad to a square n×n problem (n = max(rows, cols)) with large-but-
    // finite costs so padding never displaces a feasible real match.
    let n = rows.max(cols);
    let max_finite = costs
        .iter()
        .copied()
        .filter(|c| c.is_finite())
        .fold(0.0f64, f64::max);
    let big = (max_finite + 1.0) * (n as f64 + 1.0) + 1.0;
    let cost_at = |r: usize, c: usize| -> f64 {
        if r < rows && c < cols {
            let v = costs[r * cols + c];
            if v.is_finite() {
                v
            } else {
                big
            }
        } else {
            big
        }
    };

    // Shortest-augmenting-path Hungarian (1-indexed internals).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost_at(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; rows];
    for j in 1..=n {
        let r = p[j];
        if r >= 1 && r - 1 < rows && j - 1 < cols {
            assignment[r - 1] = Some(j - 1);
        }
    }
    assignment
}

/// Total cost of an assignment (skipping unmatched rows).
pub fn assignment_cost(costs: &[f64], cols: usize, assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(r, c)| c.map(|c| costs[r * cols + c]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_on_diagonal_matrix() {
        // Strong diagonal preference.
        let costs = vec![
            1.0, 10.0, 10.0, //
            10.0, 1.0, 10.0, //
            10.0, 10.0, 1.0,
        ];
        let a = hungarian_min_assignment(&costs, 3, 3);
        assert_eq!(a, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(assignment_cost(&costs, 3, &a), 3.0);
    }

    #[test]
    fn antidiagonal_optimum() {
        let costs = vec![
            10.0, 10.0, 1.0, //
            10.0, 1.0, 10.0, //
            1.0, 10.0, 10.0,
        ];
        let a = hungarian_min_assignment(&costs, 3, 3);
        assert_eq!(a, vec![Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn beats_greedy() {
        // Greedy would grab (0,0)=1 then pay 100 for row 1.
        let costs = vec![
            1.0, 2.0, //
            2.0, 100.0,
        ];
        let a = hungarian_min_assignment(&costs, 2, 2);
        assert_eq!(a, vec![Some(1), Some(0)]);
        assert_eq!(assignment_cost(&costs, 2, &a), 4.0);
    }

    #[test]
    fn rectangular_more_cols() {
        let costs = vec![
            5.0, 1.0, 9.0, 7.0, //
            2.0, 8.0, 3.0, 6.0,
        ];
        let a = hungarian_min_assignment(&costs, 2, 4);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_more_rows_leaves_rows_unmatched() {
        let costs = vec![
            1.0, //
            2.0, //
            0.5,
        ];
        let a = hungarian_min_assignment(&costs, 3, 1);
        let matched: Vec<_> = a.iter().flatten().collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(a[2], Some(0), "cheapest row wins the only column");
    }

    #[test]
    fn empty_inputs() {
        assert!(hungarian_min_assignment(&[], 0, 0).is_empty());
        assert_eq!(hungarian_min_assignment(&[], 2, 0), vec![None, None]);
    }

    #[test]
    fn infinite_costs_avoided_when_feasible() {
        let inf = f64::INFINITY;
        let costs = vec![
            inf, 1.0, //
            1.0, inf,
        ];
        let a = hungarian_min_assignment(&costs, 2, 2);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn optimality_matches_brute_force_on_random_matrices() {
        // Deterministic pseudo-random matrices, all 4! permutations.
        fn lcg(state: &mut u64) -> f64 {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*state >> 33) % 1000) as f64 / 100.0
        }
        let mut state = 12345u64;
        for _ in 0..25 {
            let costs: Vec<f64> = (0..16).map(|_| lcg(&mut state)).collect();
            let a = hungarian_min_assignment(&costs, 4, 4);
            let hungarian_cost = assignment_cost(&costs, 4, &a);
            // Brute force.
            let mut best = f64::INFINITY;
            let perm = [0usize, 1, 2, 3];
            let mut perms = vec![perm];
            // Generate all permutations of 4 elements.
            fn permute(arr: Vec<usize>, out: &mut Vec<[usize; 4]>) {
                fn rec(cur: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<[usize; 4]>) {
                    if rest.is_empty() {
                        out.push([cur[0], cur[1], cur[2], cur[3]]);
                        return;
                    }
                    for i in 0..rest.len() {
                        let v = rest.remove(i);
                        cur.push(v);
                        rec(cur, rest, out);
                        cur.pop();
                        rest.insert(i, v);
                    }
                }
                let mut cur = Vec::new();
                let mut rest = arr;
                out.clear();
                rec(&mut cur, &mut rest, out);
            }
            permute(vec![0, 1, 2, 3], &mut perms);
            for p in &perms {
                let c: f64 = p.iter().enumerate().map(|(r, &c)| costs[r * 4 + c]).sum();
                best = best.min(c);
            }
            assert!(
                (hungarian_cost - best).abs() < 1e-9,
                "hungarian {hungarian_cost} vs brute force {best}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let _ = hungarian_min_assignment(&[1.0, 2.0], 2, 2);
    }
}
