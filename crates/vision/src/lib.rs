//! Vision substrate for the DiEvent framework — the OpenFace substitute.
//!
//! Paper §II-C uses the OpenFace *toolkit* for facial landmark
//! detection, head-pose tracking and eye gaze, and the OpenFace
//! *library* for face recognition/tracking. Neither is available here
//! (nor are real videos), so this crate implements the same interfaces
//! from scratch over the synthetic frames produced by `dievent-scene`:
//!
//! * [`detect`] — face detection by luminance thresholding, connected
//!   components, and circularity filtering;
//! * [`landmarks`] — eye/pupil/mouth localization inside a detection;
//! * [`pose`] — head position (depth from apparent radius) and head
//!   orientation / gaze direction (from landmark geometry and pupil
//!   offsets) in the camera frame;
//! * [`hungarian`] — optimal assignment for data association;
//! * [`track`] — constant-velocity Kalman tracking of faces across
//!   frames with Hungarian association;
//! * [`recognize`] — appearance-embedding face recognition against an
//!   enrolled gallery;
//! * [`extractor`] — [`extractor::FeatureExtractor`], the per-camera
//!   pipeline combining all of the above into
//!   [`types::FaceObservation`]s, the unit the multilayer analysis
//!   consumes.
//!
//! The geometric contract with the renderer is documented in
//! [`pose`]: apparent radius ↔ depth, eye-midpoint offset ↔ head
//! orientation, pupil offset ↔ gaze deviation. All of it goes through a
//! calibrated pinhole model, so estimation errors behave like real ones
//! (quantization, occlusion, extreme poses) rather than like an oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod detect;
pub mod extractor;
pub mod hungarian;
pub mod landmarks;
pub mod pose;
pub mod recognize;
pub mod track;
pub mod types;

pub use detect::{detect_faces, DetectorConfig, FaceDetection};
pub use extractor::{ExtractorConfig, FeatureExtractor, FrameRaw};
pub use hungarian::hungarian_min_assignment;
pub use landmarks::{locate_landmarks, FaceLandmarks, LandmarkConfig};
pub use pose::{estimate_pose, HeadPoseEstimate, PoseConfig};
pub use recognize::{FaceGallery, Recognition, RecognizerConfig};
pub use track::{FaceTracker, Track, TrackerConfig};
pub use types::{FaceObservation, PersonId, TrackId};
