//! Head pose and gaze estimation in the camera frame.
//!
//! This is the substitute for OpenFace's head-pose tracking and gaze
//! estimation (paper §II-C). Everything is recovered from image
//! measurements plus the calibrated camera:
//!
//! * **position** — the apparent face radius `r_px` of a head of known
//!   physical radius `R` gives the optical-axis depth `z = fx·R/r_px`;
//!   unprojecting the centroid at that depth gives the head centre in
//!   the camera frame.
//! * **orientation** — the eyes sit on the head sphere at known angular
//!   offsets from the face's forward direction, so the displacement of
//!   the eye midpoint from the face centroid encodes the forward
//!   direction. The decoder inverts the projection with a short
//!   fixed-point iteration that accounts for the off-axis perspective
//!   term (`Δpx ≈ (fx/z)(dx − (Hx/z)·dz)`).
//! * **gaze** — pupil displacement inside each eye encodes the
//!   image-plane component of `gaze − forward`
//!   (see [`crate::contract::pupil_offset_frac`]).

use crate::contract;
use crate::detect::FaceDetection;
use crate::landmarks::FaceLandmarks;
use dievent_geometry::{PinholeCamera, Vec3};
use serde::{Deserialize, Serialize};

/// Pose estimator tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseConfig {
    /// Assumed physical head radius in metres.
    pub head_radius_m: f64,
    /// Fixed-point iterations for the perspective correction.
    pub refine_iterations: usize,
}

impl Default for PoseConfig {
    fn default() -> Self {
        PoseConfig {
            head_radius_m: contract::HEAD_RADIUS_M,
            refine_iterations: 3,
        }
    }
}

/// An estimated head pose and gaze in the *camera* frame
/// (x right, y down, z forward).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadPoseEstimate {
    /// Head centre in camera coordinates (metres).
    pub head_cam: Vec3,
    /// Unit face-forward direction in camera coordinates.
    pub forward_cam: Vec3,
    /// Unit gaze direction in camera coordinates.
    pub gaze_cam: Vec3,
}

/// Estimates head position, orientation and gaze from one detection and
/// its landmarks.
///
/// Returns `None` when the measurement degenerates (zero radius, or the
/// decoded forward vector has no camera-facing solution).
pub fn estimate_pose(
    det: &FaceDetection,
    landmarks: &FaceLandmarks,
    camera: &PinholeCamera,
    config: &PoseConfig,
) -> Option<HeadPoseEstimate> {
    if det.radius <= 1.0 {
        return None;
    }
    let k = &camera.intrinsics;

    // --- Position: depth from apparent size. ---
    let z = k.fx * config.head_radius_m / det.radius;
    let head_cam = Vec3::new((det.cx - k.cx) / k.fx * z, (det.cy - k.cy) / k.fy * z, z);

    // --- Orientation from the eye-midpoint displacement. ---
    // The eye midpoint in 3D is H + R·(f + EYE_UP·u)/‖f ± EYE_SIDE·r + EYE_UP·u‖.
    // Measured pixel displacement:
    //   Δpx ≈ (fx/z)(d·x̂ − (Hx/z)·d·ẑ),  Δpy ≈ (fy/z)(d·ŷ − (Hy/z)·d·ẑ)
    // Solve for f with fixed-point iteration on the d·ẑ term.
    let mid = landmarks.eye_midpoint();
    let dpx = mid.x - det.cx;
    let dpy = mid.y - det.cy;
    let r_over = config.head_radius_m / contract::eye_dir_norm(); // ‖d‖ scale
    let hx_over_z = head_cam.x / z;
    let hy_over_z = head_cam.y / z;

    // Head-up direction in the camera frame: world +Z through extrinsics.
    let up_cam = camera.extrinsics().transform_dir(Vec3::Z);

    // n = f + EYE_UP·u (unnormalized eye-midpoint direction, head frame
    // quantities expressed in camera coordinates).
    // Initial guess ignores the perspective dz term.
    let scale_x = dpx * z / (k.fx * r_over);
    let scale_y = dpy * z / (k.fy * r_over);
    let mut n_z = 0.0f64;
    let mut forward = Vec3::new(0.0, 0.0, -1.0);
    for _ in 0..config.refine_iterations.max(1) {
        let n_x = scale_x + hx_over_z * n_z;
        let n_y = scale_y + hy_over_z * n_z;
        // f = n − EYE_UP·u; enforce ‖f‖ = 1 by solving for f_z.
        let f_x = n_x - contract::EYE_UP * up_cam.x;
        let f_y = n_y - contract::EYE_UP * up_cam.y;
        let planar = f_x * f_x + f_y * f_y;
        let f_z = if planar >= 1.0 {
            // Degenerate (extreme profile view): clamp onto the unit circle.
            0.0
        } else {
            // Facing the camera ⇒ negative z component in camera coords.
            -(1.0 - planar).sqrt()
        };
        let scale = if planar > 1.0 {
            1.0 / planar.sqrt()
        } else {
            1.0
        };
        forward = Vec3::new(f_x * scale, f_y * scale, f_z);
        n_z = forward.z + contract::EYE_UP * up_cam.z;
    }

    // A face whose eyes we segmented must face the camera hemisphere.
    if forward.dot(head_cam) > 0.0 {
        return None;
    }

    // --- Gaze from pupil offsets. ---
    let eye_r = landmarks.eye_radius.max(0.5);
    let off = landmarks.mean_pupil_offset();
    let (dx, dy) = contract::pupil_offset_to_delta(off.x / eye_r, off.y / eye_r);
    let gaze_cam = Vec3::new(forward.x + dx, forward.y + dy, forward.z)
        .try_normalized()
        .unwrap_or(forward);

    Some(HeadPoseEstimate {
        head_cam,
        forward_cam: forward,
        gaze_cam,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_faces, DetectorConfig};
    use crate::landmarks::{locate_landmarks, LandmarkConfig};
    use dievent_geometry::{CameraIntrinsics, Mat3, Ray, Sphere};
    use dievent_video::GrayFrame;

    /// Renders one head through `camera` exactly as `dievent-scene` does
    /// (same contract), with the head at `head_world` facing `forward_w`
    /// and gazing along `gaze_w`.
    fn render_head(
        camera: &PinholeCamera,
        head_world: Vec3,
        forward_w: Vec3,
        gaze_w: Vec3,
        tone: u8,
    ) -> GrayFrame {
        let mut f = GrayFrame::new(camera.intrinsics.width, camera.intrinsics.height, 40);
        let proj = camera.project(head_world).expect("head in front of camera");
        let r_px = camera
            .projected_radius(head_world, contract::HEAD_RADIUS_M)
            .unwrap();
        f.fill_disk(proj.pixel.x, proj.pixel.y, r_px, tone);

        // Head-local right/up from world up.
        let fwd = forward_w.normalized();
        let right = fwd.cross(Vec3::Z).normalized();
        let up = right.cross(fwd);
        let (le_dir, re_dir) = contract::eye_directions(fwd, right, up);

        let to_cam = camera.extrinsics();
        let fwd_cam = to_cam.transform_dir(fwd);
        let gaze_cam = to_cam.transform_dir(gaze_w.normalized());
        let (pox, poy) = contract::pupil_offset_frac(fwd_cam, gaze_cam);

        let eye_r_px = r_px * contract::EYE_RADIUS_FRAC;
        for dir in [le_dir, re_dir] {
            let eye_world = head_world + dir * contract::HEAD_RADIUS_M;
            // Only draw when on the camera-facing hemisphere, with
            // cosine foreshortening (mirrors the scene renderer).
            let cos_view = -to_cam.transform_dir(dir).z;
            if cos_view > 0.05 {
                let er = eye_r_px * cos_view;
                let ep = camera.project(eye_world).unwrap();
                f.fill_disk(ep.pixel.x, ep.pixel.y, er, contract::EYE_LUMINANCE);
                f.fill_disk(
                    ep.pixel.x + pox * er,
                    ep.pixel.y + poy * er,
                    er * contract::PUPIL_RADIUS_FRAC,
                    contract::PUPIL_LUMINANCE,
                );
            }
        }
        // Mouth.
        let m_dir = contract::mouth_direction(fwd, up);
        if to_cam.transform_dir(m_dir).z < 0.0 {
            let mp = camera
                .project(head_world + m_dir * contract::HEAD_RADIUS_M)
                .unwrap();
            f.fill_disk(
                mp.pixel.x,
                mp.pixel.y,
                eye_r_px * 1.1,
                contract::MOUTH_LUMINANCE,
            );
        }
        f
    }

    fn test_camera() -> PinholeCamera {
        PinholeCamera::look_at(
            CameraIntrinsics::from_hfov(640, 480, 50.0),
            Vec3::new(0.0, 0.0, 2.5),
            Vec3::new(2.5, 0.0, 1.0),
        )
        .unwrap()
    }

    fn estimate_from_render(
        camera: &PinholeCamera,
        head_world: Vec3,
        forward_w: Vec3,
        gaze_w: Vec3,
    ) -> HeadPoseEstimate {
        let frame = render_head(camera, head_world, forward_w, gaze_w, 220);
        let dets = detect_faces(&frame, &DetectorConfig::default());
        assert_eq!(dets.len(), 1, "exactly one face expected");
        let lm = locate_landmarks(&frame, &dets[0], &LandmarkConfig::default())
            .expect("landmarks visible");
        estimate_pose(&dets[0], &lm, camera, &PoseConfig::default()).expect("pose")
    }

    #[test]
    fn position_recovered_within_centimetres() {
        let cam = test_camera();
        let head = Vec3::new(2.2, 0.3, 1.2);
        let toward_cam = (cam.position() - head).normalized();
        let est = estimate_from_render(&cam, head, toward_cam, toward_cam);
        let head_world_est = cam.pose.transform_point(est.head_cam);
        let err = head_world_est.distance(head);
        assert!(err < 0.12, "position error {err} m");
    }

    #[test]
    fn frontal_face_forward_points_at_camera() {
        let cam = test_camera();
        let head = Vec3::new(2.2, 0.0, 1.2);
        let toward_cam = (cam.position() - head).normalized();
        let est = estimate_from_render(&cam, head, toward_cam, toward_cam);
        let fwd_world = cam.pose.transform_dir(est.forward_cam);
        let angle = fwd_world.angle_to(toward_cam);
        assert!(angle < 0.12, "forward error {angle} rad");
    }

    #[test]
    fn turned_head_orientation_recovered() {
        let cam = test_camera();
        let head = Vec3::new(2.4, -0.4, 1.25);
        // Face turned ~25° away from the camera direction, in plan.
        let toward_cam = (cam.position() - head).normalized();
        let turned = (Mat3::rotation_z(0.45) * toward_cam).normalized();
        let est = estimate_from_render(&cam, head, turned, turned);
        let fwd_world = cam.pose.transform_dir(est.forward_cam);
        let angle = fwd_world.angle_to(turned);
        assert!(angle < 0.15, "forward error {angle} rad");
    }

    #[test]
    fn gaze_deviation_from_pupils_recovered() {
        let cam = test_camera();
        let head = Vec3::new(2.2, 0.1, 1.2);
        let toward_cam = (cam.position() - head).normalized();
        // Gaze deviates ~12° from head forward.
        let gaze = (Mat3::rotation_z(0.2) * toward_cam).normalized();
        let est = estimate_from_render(&cam, head, toward_cam, gaze);
        let gaze_world = cam.pose.transform_dir(est.gaze_cam);
        let angle = gaze_world.angle_to(gaze);
        assert!(angle < 0.1, "gaze error {angle} rad");
    }

    #[test]
    fn end_to_end_eye_contact_geometry() {
        // Two heads 1.6 m apart; A gazes exactly at B. Estimate A's pose
        // from pixels, cast the estimated gaze ray, check it hits a
        // 0.3 m attention sphere at B's true position.
        let cam = test_camera();
        let head_a = Vec3::new(2.2, -0.5, 1.2);
        let head_b = Vec3::new(1.0, 0.9, 1.25);
        let gaze = (head_b - head_a).normalized();
        // Head roughly split between camera and target so eyes stay
        // visible and the pupil encoding is unclamped.
        let toward_cam = (cam.position() - head_a).normalized();
        let fwd = (gaze + toward_cam * 0.5).normalized();
        let est = estimate_from_render(&cam, head_a, fwd, gaze);

        let origin_world = cam.pose.transform_point(est.head_cam);
        let gaze_world = cam.pose.transform_dir(est.gaze_cam);
        let sphere = Sphere::new(head_b, 0.30);
        let hit = sphere.intersect_ray(&Ray::new(origin_world, gaze_world));
        assert!(
            hit.is_some(),
            "estimated gaze must hit the attention sphere"
        );

        // And it must NOT hit a sphere placed 90° off to the side.
        let decoy = Vec3::new(1.0, -1.8, 1.2);
        let miss = Sphere::new(decoy, 0.30).intersect_ray(&Ray::new(origin_world, gaze_world));
        assert!(miss.is_none(), "gaze must not hit the decoy");
    }

    #[test]
    fn degenerate_radius_rejected() {
        let cam = test_camera();
        let det = FaceDetection {
            cx: 320.0,
            cy: 240.0,
            radius: 0.5,
            bbox: (319, 239, 321, 241),
            area: 4,
            mean_luminance: 200.0,
        };
        let lm = FaceLandmarks {
            left_eye: dievent_geometry::Vec2::new(319.0, 239.0),
            right_eye: dievent_geometry::Vec2::new(321.0, 239.0),
            left_pupil: dievent_geometry::Vec2::new(319.0, 239.0),
            right_pupil: dievent_geometry::Vec2::new(321.0, 239.0),
            eye_radius: 0.5,
            mouth: None,
        };
        assert!(estimate_pose(&det, &lm, &cam, &PoseConfig::default()).is_none());
    }

    #[test]
    fn pose_config_head_radius_scales_depth() {
        let cam = test_camera();
        let head = Vec3::new(2.0, 0.0, 1.2);
        let toward_cam = (cam.position() - head).normalized();
        let frame = render_head(&cam, head, toward_cam, toward_cam, 220);
        let dets = detect_faces(&frame, &DetectorConfig::default());
        let lm = locate_landmarks(&frame, &dets[0], &LandmarkConfig::default()).unwrap();
        let small = estimate_pose(
            &dets[0],
            &lm,
            &cam,
            &PoseConfig {
                head_radius_m: 0.06,
                refine_iterations: 3,
            },
        )
        .unwrap();
        let big = estimate_pose(
            &dets[0],
            &lm,
            &cam,
            &PoseConfig {
                head_radius_m: 0.24,
                refine_iterations: 3,
            },
        )
        .unwrap();
        assert!(
            (big.head_cam.z / small.head_cam.z - 2.0 / 0.5).abs() < 1e-6,
            "depth scales linearly with assumed radius"
        );
    }
}
