//! The per-camera feature-extraction pipeline (paper §II-C).
//!
//! [`FeatureExtractor`] is the DiEvent stand-in for running the OpenFace
//! toolkit + library on one camera stream: per frame it detects faces,
//! locates landmarks, estimates head pose and gaze, tracks identities
//! over time, recognizes enrolled participants, and crops normalized
//! face patches for the emotion classifier. The output is a list of
//! [`FaceObservation`]s the multilayer analysis consumes.

use crate::detect::{detect_faces, DetectorConfig};
use crate::landmarks::{locate_landmarks, LandmarkConfig};
use crate::pose::{estimate_pose, PoseConfig};
use crate::recognize::FaceGallery;
use crate::track::{FaceTracker, TrackerConfig};
use crate::types::FaceObservation;
use dievent_geometry::PinholeCamera;
use dievent_telemetry::{Counter, Histogram, Telemetry};
use dievent_video::GrayFrame;
use serde::{Deserialize, Serialize};

/// Configuration of the full extraction pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExtractorConfig {
    /// Face detector parameters.
    pub detector: DetectorConfig,
    /// Landmark localizer parameters.
    pub landmarks: LandmarkConfig,
    /// Pose estimator parameters.
    pub pose: PoseConfig,
    /// Tracker parameters.
    pub tracker: TrackerConfig,
    /// Side length of the normalized face patch (pixels).
    pub patch_size: u32,
    /// When landmarks fail on a tracked face (blink-like dropout,
    /// rim-grazing view), the last successful pose is carried forward
    /// for up to this many frames, with the head position refreshed
    /// from the current detection. 0 disables carry-forward. Short
    /// horizons bridge blink-like dropouts without propagating a stale
    /// gaze across a real target change.
    pub pose_carry_frames: usize,
}

impl ExtractorConfig {
    /// Sensible defaults (48 px patches, 6-frame pose carry).
    pub fn standard() -> Self {
        ExtractorConfig {
            detector: DetectorConfig::default(),
            landmarks: LandmarkConfig::default(),
            pose: PoseConfig::default(),
            tracker: TrackerConfig::default(),
            patch_size: 48,
            pose_carry_frames: 6,
        }
    }
}

/// Pre-resolved instrument handles for one extractor. Resolved once
/// per camera (registry lock touched only at attach time); the hot
/// per-frame path does plain atomic updates. Defaults to no-ops.
#[derive(Debug, Default)]
struct ExtractorInstruments {
    /// `frames_processed{camera}` — frames this extractor consumed.
    frames: Counter,
    /// `faces_detected{camera}` — detections across all frames.
    faces: Counter,
    /// `identity_misses{camera}` — detections the gallery could not
    /// attribute to an enrolled participant.
    identity_misses: Counter,
    /// `pose_carries{camera}` — landmark dropouts bridged by the
    /// pose carry-forward cache.
    pose_carries: Counter,
    /// `frame_extraction_seconds{camera}` — wall time per frame.
    frame_seconds: Histogram,
}

/// Stateful per-camera extractor.
#[derive(Debug)]
pub struct FeatureExtractor {
    config: ExtractorConfig,
    camera: PinholeCamera,
    tracker: FaceTracker,
    gallery: FaceGallery,
    frame_index: usize,
    /// Last successful pose per track, with its age in frames.
    pose_cache:
        std::collections::HashMap<crate::types::TrackId, (crate::pose::HeadPoseEstimate, usize)>,
    instruments: ExtractorInstruments,
}

impl FeatureExtractor {
    /// Creates an extractor for one calibrated camera. The gallery may
    /// be pre-enrolled or extended later via [`FeatureExtractor::gallery_mut`].
    pub fn new(config: ExtractorConfig, camera: PinholeCamera, gallery: FaceGallery) -> Self {
        let patch = config.patch_size.max(8);
        let mut cfg = config;
        cfg.patch_size = patch;
        FeatureExtractor {
            tracker: FaceTracker::new(cfg.tracker),
            config: cfg,
            camera,
            gallery,
            frame_index: 0,
            pose_cache: std::collections::HashMap::new(),
            instruments: ExtractorInstruments::default(),
        }
    }

    /// Attaches this extractor to a telemetry domain, labeling its
    /// instruments with `camera`. Resolves all handles up front so the
    /// per-frame path never touches the registry.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, camera: &str) {
        let labels = &[("camera", camera)][..];
        self.instruments = ExtractorInstruments {
            frames: telemetry.counter_with("frames_processed", labels),
            faces: telemetry.counter_with("faces_detected", labels),
            identity_misses: telemetry.counter_with("identity_misses", labels),
            pose_carries: telemetry.counter_with("pose_carries", labels),
            frame_seconds: telemetry.histogram_with("frame_extraction_seconds", labels),
        };
    }

    /// The calibrated camera this extractor runs on.
    pub fn camera(&self) -> &PinholeCamera {
        &self.camera
    }

    /// Mutable access to the gallery (for enrollment).
    pub fn gallery_mut(&mut self) -> &mut FaceGallery {
        &mut self.gallery
    }

    /// Number of frames processed so far.
    pub fn frames_processed(&self) -> usize {
        self.frame_index
    }

    /// Crops and normalizes the face patch for a detection.
    fn crop_patch(&self, frame: &GrayFrame, det: &crate::detect::FaceDetection) -> GrayFrame {
        let r = det.radius.ceil() as i64;
        let side = (2 * r + 1).max(1) as u32;
        frame
            .patch(det.cx as i64 - r, det.cy as i64 - r, side, side)
            .resize(self.config.patch_size, self.config.patch_size)
    }

    /// Processes the next frame of the stream and returns one
    /// observation per detected face.
    ///
    /// Equivalent to [`analyze`](Self::analyze) followed by
    /// [`integrate`](Self::integrate) — the pipeline's frame-parallel
    /// path runs `analyze` for many frames concurrently on the shared
    /// pool, then `integrate`s the results in frame order, which makes
    /// the two paths bit-identical by construction.
    pub fn process(&mut self, frame: &GrayFrame) -> Vec<FaceObservation> {
        let raw = self.analyze(frame);
        self.integrate(raw)
    }

    /// The **pure** phase of frame processing: face detection,
    /// landmarks, per-detection pose estimation, patch cropping, and
    /// gallery recognition. Takes `&self`, touches no cross-frame state
    /// (tracker, pose-carry cache, frame counter), and therefore may
    /// run for many frames concurrently.
    pub fn analyze(&self, frame: &GrayFrame) -> FrameRaw {
        let started = std::time::Instant::now();
        let detections = detect_faces(frame, &self.config.detector);
        let mut faces = Vec::with_capacity(detections.len());
        for det in detections {
            let landmarks = locate_landmarks(frame, &det, &self.config.landmarks);
            let pose = landmarks
                .as_ref()
                .and_then(|lm| estimate_pose(&det, lm, &self.camera, &self.config.pose));
            let patch = self.crop_patch(frame, &det);
            let identity = self
                .gallery
                .recognize(&det, &patch)
                .map(|r| (r.person, r.distance));
            if identity.is_none() {
                self.instruments.identity_misses.incr();
            }
            faces.push(RawFace {
                detection: det,
                landmarks,
                pose,
                patch,
                identity,
            });
        }
        FrameRaw {
            faces,
            analyze_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// The **stateful** phase: advances the tracker, ages the
    /// pose-carry cache, applies carry-forward to landmark dropouts,
    /// and stamps the frame index. Must be called exactly once per
    /// [`analyze`](Self::analyze) result, in frame order.
    pub fn integrate(&mut self, raw: FrameRaw) -> Vec<FaceObservation> {
        let started = std::time::Instant::now();
        let detections: Vec<crate::detect::FaceDetection> =
            raw.faces.iter().map(|f| f.detection).collect();
        let track_ids = self.tracker.step(&detections);
        // Age the pose cache and retire entries past the carry horizon.
        let carry = self.config.pose_carry_frames;
        for (_, age) in self.pose_cache.values_mut() {
            *age += 1;
        }
        self.pose_cache
            .retain(|_, (_, age)| *age <= carry.max(1) * 4);
        let mut out = Vec::with_capacity(raw.faces.len());
        for (face, track) in raw.faces.into_iter().zip(track_ids) {
            let det = face.detection;
            let mut pose = face.pose;
            match pose {
                Some(p) => {
                    self.pose_cache.insert(track, (p, 0));
                }
                None if carry > 0 => {
                    // Carry the last good pose: direction from the cache,
                    // position refreshed from this detection's depth model.
                    if let Some((cached, age)) = self.pose_cache.get(&track) {
                        if *age <= carry && det.radius > 1.0 {
                            self.instruments.pose_carries.incr();
                            let k = &self.camera.intrinsics;
                            let z = k.fx * self.config.pose.head_radius_m / det.radius;
                            pose = Some(crate::pose::HeadPoseEstimate {
                                head_cam: dievent_geometry::Vec3::new(
                                    (det.cx - k.cx) / k.fx * z,
                                    (det.cy - k.cy) / k.fy * z,
                                    z,
                                ),
                                forward_cam: cached.forward_cam,
                                gaze_cam: cached.gaze_cam,
                            });
                        }
                    }
                }
                None => {}
            }
            out.push(FaceObservation {
                frame: self.frame_index,
                detection: det,
                landmarks: face.landmarks,
                pose,
                track: Some(track),
                identity: face.identity,
                patch: Some(face.patch),
            });
        }
        self.frame_index += 1;
        self.instruments.frames.incr();
        self.instruments.faces.add(out.len() as u64);
        self.instruments
            .frame_seconds
            .observe(raw.analyze_seconds + started.elapsed().as_secs_f64());
        out
    }
}

/// One detection's pure analysis result (phase A of frame processing).
#[derive(Debug, Clone)]
struct RawFace {
    detection: crate::detect::FaceDetection,
    landmarks: Option<crate::landmarks::FaceLandmarks>,
    /// Pose from this frame's landmarks only — carry-forward is applied
    /// during [`FeatureExtractor::integrate`].
    pose: Option<crate::pose::HeadPoseEstimate>,
    patch: GrayFrame,
    identity: Option<(crate::types::PersonId, f64)>,
}

/// The pure per-frame analysis result of [`FeatureExtractor::analyze`],
/// consumed by [`FeatureExtractor::integrate`].
#[derive(Debug, Clone)]
pub struct FrameRaw {
    faces: Vec<RawFace>,
    /// Wall time spent in `analyze`, folded into the per-frame
    /// extraction-seconds histogram at integrate time.
    analyze_seconds: f64,
}

impl FrameRaw {
    /// Number of faces detected in this frame.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Iterates the pure-phase per-face results: the detection, the
    /// recognized identity (if any), and the cropped face patch.
    ///
    /// This exposes exactly the inputs downstream per-face work (e.g.
    /// emotion classification) needs, so callers can run it in the
    /// parallel phase alongside [`FeatureExtractor::analyze`] instead
    /// of serializing it behind [`FeatureExtractor::integrate`].
    pub fn faces(
        &self,
    ) -> impl Iterator<
        Item = (
            &crate::detect::FaceDetection,
            Option<(crate::types::PersonId, f64)>,
            &GrayFrame,
        ),
    > {
        self.faces
            .iter()
            .map(|f| (&f.detection, f.identity, &f.patch))
    }

    /// Iterates only the faces whose identity was recognized, yielding
    /// `(person, detection radius, patch)` — the exact tuple the
    /// session's batched emotion classification consumes. Order matches
    /// [`faces`](Self::faces) (and therefore the face order
    /// [`FeatureExtractor::integrate`] preserves).
    pub fn identified_faces(
        &self,
    ) -> impl Iterator<Item = (crate::types::PersonId, f64, &GrayFrame)> {
        self.faces
            .iter()
            .filter_map(|f| f.identity.map(|(p, _)| (p, f.detection.radius, &f.patch)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract;
    use crate::types::PersonId;
    use dievent_geometry::{CameraIntrinsics, Vec3};

    fn camera() -> PinholeCamera {
        PinholeCamera::look_at(
            CameraIntrinsics::from_hfov(640, 480, 50.0),
            Vec3::new(0.0, 0.0, 2.5),
            Vec3::new(2.5, 0.0, 1.0),
        )
        .unwrap()
    }

    /// Renders `n` frontal faces with distinct tones at fixed positions.
    fn frame_with_faces(camera: &PinholeCamera, heads: &[(Vec3, u8)]) -> GrayFrame {
        let mut f = GrayFrame::new(640, 480, 40);
        for &(head, tone) in heads {
            let proj = camera.project(head).unwrap();
            let r_px = camera
                .projected_radius(head, contract::HEAD_RADIUS_M)
                .unwrap();
            f.fill_disk(proj.pixel.x, proj.pixel.y, r_px, tone);
            // Frontal eyes with centered pupils.
            let fwd = (camera.position() - head).normalized();
            let right = fwd.cross(Vec3::Z).normalized();
            let up = right.cross(fwd);
            let (l, r) = contract::eye_directions(fwd, right, up);
            for dir in [l, r] {
                let ep = camera
                    .project(head + dir * contract::HEAD_RADIUS_M)
                    .unwrap();
                let er = r_px * contract::EYE_RADIUS_FRAC;
                f.fill_disk(ep.pixel.x, ep.pixel.y, er, contract::EYE_LUMINANCE);
                f.fill_disk(
                    ep.pixel.x,
                    ep.pixel.y,
                    er * contract::PUPIL_RADIUS_FRAC,
                    contract::PUPIL_LUMINANCE,
                );
            }
        }
        f
    }

    #[test]
    fn end_to_end_observation_has_all_fields() {
        let cam = camera();
        let heads = [
            (Vec3::new(2.2, 0.2, 1.2), 250u8),
            (Vec3::new(2.6, -0.7, 1.25), 200u8),
        ];
        let frame = frame_with_faces(&cam, &heads);
        let mut ex =
            FeatureExtractor::new(ExtractorConfig::standard(), cam, FaceGallery::default());
        let obs = ex.process(&frame);
        assert_eq!(obs.len(), 2);
        for o in &obs {
            assert!(o.landmarks.is_some(), "frontal faces have landmarks");
            assert!(o.pose.is_some());
            assert!(o.track.is_some());
            assert!(o.patch.is_some());
            assert_eq!(o.frame, 0);
            let p = o.patch.as_ref().unwrap();
            assert_eq!((p.width(), p.height()), (48, 48));
        }
        assert_eq!(ex.frames_processed(), 1);
    }

    #[test]
    fn tracks_stay_stable_and_identities_resolve_after_enrollment() {
        let cam = camera();
        let heads = [
            (Vec3::new(2.2, 0.2, 1.2), 250u8),
            (Vec3::new(2.6, -0.7, 1.25), 200u8),
        ];
        let frame = frame_with_faces(&cam, &heads);
        let mut ex =
            FeatureExtractor::new(ExtractorConfig::standard(), cam, FaceGallery::default());

        // First pass: enroll from observations.
        let obs0 = ex.process(&frame);
        for (i, o) in obs0.iter().enumerate() {
            ex.gallery_mut()
                .enroll(PersonId(i), &o.detection, o.patch.as_ref().unwrap());
        }

        let obs1 = ex.process(&frame);
        assert_eq!(obs1.len(), 2);
        for (o0, o1) in obs0.iter().zip(&obs1) {
            assert_eq!(o0.track, o1.track, "same face keeps its track");
        }
        let ids: Vec<_> = obs1
            .iter()
            .filter_map(|o| o.identity.map(|(p, _)| p))
            .collect();
        assert_eq!(ids.len(), 2, "both faces recognized after enrollment");
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn pose_carry_forward_bridges_landmark_dropout() {
        let cam = camera();
        let head = Vec3::new(2.2, 0.2, 1.2);
        let with_eyes = frame_with_faces(&cam, &[(head, 250u8)]);
        // Same face, eyes missing (blink / rim-grazing view).
        let mut eyeless = GrayFrame::new(640, 480, 40);
        let proj = cam.project(head).unwrap();
        let r_px = cam.projected_radius(head, contract::HEAD_RADIUS_M).unwrap();
        eyeless.fill_disk(proj.pixel.x, proj.pixel.y, r_px, 250);

        let mut ex =
            FeatureExtractor::new(ExtractorConfig::standard(), cam, FaceGallery::default());
        let first = ex.process(&with_eyes);
        assert!(first[0].pose.is_some());
        let carried_gaze = first[0].pose.unwrap().gaze_cam;

        // Within the carry horizon: pose persists with the cached gaze.
        for k in 0..6 {
            let obs = ex.process(&eyeless);
            let pose = obs[0]
                .pose
                .unwrap_or_else(|| panic!("carry frame {k} lost the pose"));
            assert!(pose.gaze_cam.approx_eq(carried_gaze, 1e-12));
        }
        // Beyond the horizon: the pose is dropped.
        for _ in 0..4 {
            ex.process(&eyeless);
        }
        let late = ex.process(&eyeless);
        assert!(late[0].pose.is_none(), "stale pose must expire");

        // With carry disabled, the dropout is immediate.
        let mut strict = FeatureExtractor::new(
            ExtractorConfig {
                pose_carry_frames: 0,
                ..ExtractorConfig::standard()
            },
            cam,
            FaceGallery::default(),
        );
        strict.process(&with_eyes);
        let obs = strict.process(&eyeless);
        assert!(obs[0].pose.is_none());
    }

    #[test]
    fn empty_frame_produces_no_observations() {
        let cam = camera();
        let mut ex =
            FeatureExtractor::new(ExtractorConfig::standard(), cam, FaceGallery::default());
        let obs = ex.process(&GrayFrame::new(640, 480, 40));
        assert!(obs.is_empty());
        assert_eq!(ex.frames_processed(), 1);
    }

    #[test]
    fn telemetry_counts_frames_faces_and_misses() {
        use dievent_telemetry::Telemetry;
        let cam = camera();
        let heads = [
            (Vec3::new(2.2, 0.2, 1.2), 250u8),
            (Vec3::new(2.6, -0.7, 1.25), 200u8),
        ];
        let frame = frame_with_faces(&cam, &heads);
        let telemetry = Telemetry::enabled();
        let mut ex =
            FeatureExtractor::new(ExtractorConfig::standard(), cam, FaceGallery::default());
        ex.attach_telemetry(&telemetry, "0");
        ex.process(&frame);
        ex.process(&frame);
        let report = telemetry.report();
        assert_eq!(report.counter("frames_processed{camera=\"0\"}"), Some(2));
        assert_eq!(report.counter("faces_detected{camera=\"0\"}"), Some(4));
        // Nothing enrolled, so every detection misses recognition.
        assert_eq!(report.counter("identity_misses{camera=\"0\"}"), Some(4));
        let h = report
            .histogram("frame_extraction_seconds{camera=\"0\"}")
            .unwrap();
        assert_eq!(h.count, 2);
        assert!(h.p50 > 0.0);
    }
}
