//! Facial landmark localization inside a detected face.
//!
//! Within a face's bounding box, *feature* pixels (luminance below
//! [`crate::contract::FEATURE_THRESHOLD`]) are clustered by connected
//! components. Clusters in the upper half with near-circular bboxes are
//! eye candidates; the best horizontal pair becomes the eyes, and the
//! largest remaining cluster below the face centre is the mouth. Pupil
//! centres are intensity-weighted centroids of sub-pupil-threshold
//! pixels inside each eye cluster, giving subpixel precision.

use crate::contract;
use crate::detect::FaceDetection;
use dievent_geometry::Vec2;
use dievent_video::GrayFrame;
use serde::{Deserialize, Serialize};

/// Landmarks of one face, in full-frame pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaceLandmarks {
    /// Left eye centre (image-left).
    pub left_eye: Vec2,
    /// Right eye centre (image-right).
    pub right_eye: Vec2,
    /// Left pupil centre.
    pub left_pupil: Vec2,
    /// Right pupil centre.
    pub right_pupil: Vec2,
    /// Estimated eye radius in pixels.
    pub eye_radius: f64,
    /// Mouth centroid, if found.
    pub mouth: Option<Vec2>,
}

impl FaceLandmarks {
    /// Midpoint between the two eye centres.
    pub fn eye_midpoint(&self) -> Vec2 {
        (self.left_eye + self.right_eye) * 0.5
    }

    /// Mean pupil offset relative to the eye centres, in pixels.
    pub fn mean_pupil_offset(&self) -> Vec2 {
        ((self.left_pupil - self.left_eye) + (self.right_pupil - self.right_eye)) * 0.5
    }

    /// Distance between the eye centres in pixels.
    pub fn interocular(&self) -> f64 {
        self.left_eye.distance(self.right_eye)
    }
}

/// Landmark localizer tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LandmarkConfig {
    /// Feature-pixel threshold.
    pub feature_threshold: u8,
    /// Pupil-pixel threshold.
    pub pupil_threshold: u8,
    /// Minimum feature-cluster area in pixels.
    pub min_cluster_area: usize,
}

impl Default for LandmarkConfig {
    fn default() -> Self {
        LandmarkConfig {
            feature_threshold: contract::FEATURE_THRESHOLD,
            pupil_threshold: contract::PUPIL_THRESHOLD,
            min_cluster_area: 2,
        }
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    cx: f64,
    cy: f64,
    area: usize,
    x0: usize,
    y0: usize,
    x1: usize,
    y1: usize,
    /// Intensity-weighted pupil centroid, if any sub-pupil pixels exist.
    pupil: Option<(f64, f64)>,
}

impl Cluster {
    fn bbox_radius(&self) -> f64 {
        ((self.x1 - self.x0 + 1) as f64 + (self.y1 - self.y0 + 1) as f64) / 4.0
    }

    fn aspect(&self) -> f64 {
        let w = (self.x1 - self.x0 + 1) as f64;
        let h = (self.y1 - self.y0 + 1) as f64;
        w.max(h) / w.min(h)
    }
}

/// Finds feature clusters inside the face bbox.
fn feature_clusters(frame: &GrayFrame, det: &FaceDetection, cfg: &LandmarkConfig) -> Vec<Cluster> {
    let (bx0, by0, bx1, by1) = det.bbox;
    let w = (bx1 - bx0 + 1) as usize;
    let h = (by1 - by0 + 1) as usize;
    let at = |x: usize, y: usize| frame.get(bx0 + x as u32, by0 + y as u32);

    // Feature pixels must be dark AND inside the face disk — the bbox
    // corners contain background, which is also dark.
    let r_limit = det.radius * 0.98;
    let r_limit_sq = r_limit * r_limit;
    let mut mask: Vec<u8> = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let fx = (bx0 + x as u32) as f64 - det.cx;
            let fy = (by0 + y as u32) as f64 - det.cy;
            let inside = fx * fx + fy * fy <= r_limit_sq;
            mask.push(u8::from(inside && at(x, y) < cfg.feature_threshold));
        }
    }

    let mut clusters = Vec::new();
    let mut stack = Vec::new();
    for start in 0..mask.len() {
        if mask[start] != 1 {
            continue;
        }
        mask[start] = 2;
        stack.push(start);
        let mut c = Cluster {
            cx: 0.0,
            cy: 0.0,
            area: 0,
            x0: w,
            y0: h,
            x1: 0,
            y1: 0,
            pupil: None,
        };
        let mut pupil_sum = (0.0f64, 0.0f64, 0.0f64); // (x·w, y·w, w)
        while let Some(idx) = stack.pop() {
            let x = idx % w;
            let y = idx / w;
            c.area += 1;
            c.cx += x as f64;
            c.cy += y as f64;
            c.x0 = c.x0.min(x);
            c.x1 = c.x1.max(x);
            c.y0 = c.y0.min(y);
            c.y1 = c.y1.max(y);
            let lum = at(x, y);
            if lum < cfg.pupil_threshold {
                // Weight darker pixels more for a subpixel pupil centroid.
                let wgt = (cfg.pupil_threshold - lum) as f64 + 1.0;
                pupil_sum.0 += x as f64 * wgt;
                pupil_sum.1 += y as f64 * wgt;
                pupil_sum.2 += wgt;
            }
            if x > 0 && mask[idx - 1] == 1 {
                mask[idx - 1] = 2;
                stack.push(idx - 1);
            }
            if x + 1 < w && mask[idx + 1] == 1 {
                mask[idx + 1] = 2;
                stack.push(idx + 1);
            }
            if y > 0 && mask[idx - w] == 1 {
                mask[idx - w] = 2;
                stack.push(idx - w);
            }
            if y + 1 < h && mask[idx + w] == 1 {
                mask[idx + w] = 2;
                stack.push(idx + w);
            }
        }
        if c.area < cfg.min_cluster_area {
            continue;
        }
        c.cx = c.cx / c.area as f64 + bx0 as f64;
        c.cy = c.cy / c.area as f64 + by0 as f64;
        if pupil_sum.2 > 0.0 {
            c.pupil = Some((
                pupil_sum.0 / pupil_sum.2 + bx0 as f64,
                pupil_sum.1 / pupil_sum.2 + by0 as f64,
            ));
        }
        c.x0 += bx0 as usize;
        c.x1 += bx0 as usize;
        c.y0 += by0 as usize;
        c.y1 += by0 as usize;
        clusters.push(c);
    }
    clusters
}

/// Locates eyes, pupils and mouth inside a detection.
///
/// Returns `None` when no valid eye pair is visible — a face turned away
/// from the camera, which downstream treats as "position only, no gaze
/// from this view".
pub fn locate_landmarks(
    frame: &GrayFrame,
    det: &FaceDetection,
    cfg: &LandmarkConfig,
) -> Option<FaceLandmarks> {
    let clusters = feature_clusters(frame, det, cfg);
    if clusters.len() < 2 {
        return None;
    }

    // Eye candidates: compact clusters with a detectable pupil.
    let eye_candidates: Vec<&Cluster> = clusters
        .iter()
        .filter(|c| c.pupil.is_some() && c.aspect() < 2.0)
        .collect();

    // Choose the pair that is most horizontal and closest in size.
    let mut best: Option<(usize, usize, f64)> = None;
    for i in 0..eye_candidates.len() {
        for j in i + 1..eye_candidates.len() {
            let (a, b) = (eye_candidates[i], eye_candidates[j]);
            let dx = (a.cx - b.cx).abs();
            let dy = (a.cy - b.cy).abs();
            if dx < det.radius * 0.2 || dy > dx {
                continue; // not a horizontal pair
            }
            // Oblique views foreshorten the far eye much more than the
            // near one (cos ratio up to ~5 at decodable angles), so the
            // size filter only rejects gross mismatches.
            let size_ratio = a.area.max(b.area) as f64 / a.area.min(b.area) as f64;
            if size_ratio > 8.0 {
                continue;
            }
            // Score: horizontal, similar size, near the face's upper half.
            let score = dy / dx + (size_ratio - 1.0) * 0.1;
            if best.is_none_or(|(_, _, s)| score < s) {
                best = Some((i, j, score));
            }
        }
    }
    let (i, j, _) = best?;
    let (mut le, mut re) = (eye_candidates[i], eye_candidates[j]);
    if le.cx > re.cx {
        std::mem::swap(&mut le, &mut re);
    }

    let eye_radius = (le.bbox_radius() + re.bbox_radius()) / 2.0;
    let eye_mid_y = (le.cy + re.cy) / 2.0;

    // Mouth: largest non-eye cluster below the eye line.
    let mouth = clusters
        .iter()
        .filter(|c| {
            c.cy > eye_mid_y + eye_radius && (c.cx - le.cx).abs() > f64::EPSILON
            // not literally an eye
        })
        .max_by_key(|c| c.area)
        .map(|c| Vec2::new(c.cx, c.cy));

    let (lpx, lpy) = le.pupil?;
    let (rpx, rpy) = re.pupil?;

    Some(FaceLandmarks {
        left_eye: Vec2::new(le.cx, le.cy),
        right_eye: Vec2::new(re.cx, re.cy),
        left_pupil: Vec2::new(lpx, lpy),
        right_pupil: Vec2::new(rpx, rpy),
        eye_radius,
        mouth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_faces, DetectorConfig};

    /// Draws a synthetic frontal face and returns (frame, detection).
    fn face_with(
        eye_dx: f64,
        pupil_shift: (f64, f64),
        with_mouth: bool,
    ) -> (GrayFrame, FaceDetection) {
        let mut f = GrayFrame::new(160, 120, 40);
        let (cx, cy, r) = (80.0, 60.0, 20.0);
        f.fill_disk(cx, cy, r, 220);
        let eye_r = 4.0;
        for side in [-1.0, 1.0] {
            let ex = cx + side * eye_dx;
            let ey = cy - 5.0;
            f.fill_disk(ex, ey, eye_r, contract::EYE_LUMINANCE);
            f.fill_disk(
                ex + pupil_shift.0,
                ey + pupil_shift.1,
                eye_r * contract::PUPIL_RADIUS_FRAC,
                contract::PUPIL_LUMINANCE,
            );
        }
        if with_mouth {
            f.fill_rect(72, 70, 16, 3, contract::MOUTH_LUMINANCE);
        }
        let det = detect_faces(&f, &DetectorConfig::default());
        assert_eq!(det.len(), 1, "fixture face must be detectable");
        (f, det[0])
    }

    #[test]
    fn frontal_face_landmarks_found() {
        let (f, det) = face_with(7.0, (0.0, 0.0), true);
        let lm = locate_landmarks(&f, &det, &LandmarkConfig::default()).unwrap();
        assert!((lm.left_eye.x - 73.0).abs() < 1.0, "{lm:?}");
        assert!((lm.right_eye.x - 87.0).abs() < 1.0);
        assert!((lm.left_eye.y - 55.0).abs() < 1.0);
        assert!(lm.mouth.is_some());
        let m = lm.mouth.unwrap();
        assert!((m.y - 71.0).abs() < 1.5);
        assert!((lm.interocular() - 14.0).abs() < 1.5);
    }

    #[test]
    fn centered_pupils_have_zero_offset() {
        let (f, det) = face_with(7.0, (0.0, 0.0), false);
        let lm = locate_landmarks(&f, &det, &LandmarkConfig::default()).unwrap();
        let off = lm.mean_pupil_offset();
        assert!(off.norm() < 0.6, "offset = {off:?}");
    }

    #[test]
    fn shifted_pupils_measured_with_sign() {
        let (f, det) = face_with(7.0, (1.8, 0.0), false);
        let lm = locate_landmarks(&f, &det, &LandmarkConfig::default()).unwrap();
        let off = lm.mean_pupil_offset();
        assert!(off.x > 0.9, "offset = {off:?}");
        assert!(off.y.abs() < 0.7);

        let (f2, det2) = face_with(7.0, (0.0, -1.5), false);
        let lm2 = locate_landmarks(&f2, &det2, &LandmarkConfig::default()).unwrap();
        assert!(lm2.mean_pupil_offset().y < -0.7);
    }

    #[test]
    fn eyeless_face_yields_none() {
        let mut f = GrayFrame::new(160, 120, 40);
        f.fill_disk(80.0, 60.0, 20.0, 220);
        let det = detect_faces(&f, &DetectorConfig::default());
        assert_eq!(det.len(), 1);
        assert!(locate_landmarks(&f, &det[0], &LandmarkConfig::default()).is_none());
    }

    #[test]
    fn mouth_alone_is_not_an_eye_pair() {
        let mut f = GrayFrame::new(160, 120, 40);
        f.fill_disk(80.0, 60.0, 20.0, 220);
        f.fill_rect(72, 70, 16, 3, contract::MOUTH_LUMINANCE);
        let det = detect_faces(&f, &DetectorConfig::default());
        assert!(locate_landmarks(&f, &det[0], &LandmarkConfig::default()).is_none());
    }

    #[test]
    fn eye_midpoint_tracks_lateral_eye_shift() {
        // Eyes drawn off-centre (turned head): midpoint shifts accordingly.
        let mut f = GrayFrame::new(160, 120, 40);
        let (cx, cy, r) = (80.0, 60.0, 20.0);
        f.fill_disk(cx, cy, r, 220);
        for ex in [cx + 2.0, cx + 14.0] {
            f.fill_disk(ex, cy - 5.0, 4.0, contract::EYE_LUMINANCE);
            f.fill_disk(ex, cy - 5.0, 1.8, contract::PUPIL_LUMINANCE);
        }
        let det = detect_faces(&f, &DetectorConfig::default());
        let lm = locate_landmarks(&f, &det[0], &LandmarkConfig::default()).unwrap();
        assert!(lm.eye_midpoint().x > cx + 5.0, "{:?}", lm.eye_midpoint());
    }
}
