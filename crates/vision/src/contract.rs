//! The appearance contract between the synthetic renderer and this
//! vision substrate.
//!
//! Real systems calibrate a detector against the statistics of real
//! faces; here the "statistics" are the constants below, shared by the
//! renderer (`dievent-scene`, which *draws* faces with them) and the
//! estimators in this crate (which *decode* them). Keeping them in one
//! place makes the co-design explicit and lets ablation benches perturb
//! the decoder away from the encoder to study robustness.
//!
//! Everything the decoder does remains honest image processing — the
//! constants only fix luminance bands and proportions, never positions
//! or identities.

/// Physical head radius in metres (adult head; the sphere of Eq. 3 used
/// for *rendering and depth estimation*; the eye-contact test uses the
/// larger attention radius configured in `dievent-analysis`).
pub const HEAD_RADIUS_M: f64 = 0.12;

/// Base skin luminance for participant `i` (identity-coded, mirroring
/// the paper's color-coded participants). Values stay above the face
/// threshold after shading and below saturation after noise.
pub fn skin_tone(participant: usize) -> u8 {
    const TONES: [u8; 8] = [250, 225, 200, 175, 237, 212, 187, 167];
    TONES[participant % TONES.len()]
}

/// Maximum radial shading attenuation at the rim of a head disk
/// (`luminance = tone · (1 − SHADING · (d/r)²)`).
pub const SHADING: f64 = 0.10;

/// Luminance of the eye (iris) disk.
pub const EYE_LUMINANCE: u8 = 90;

/// Luminance of the pupil disk.
pub const PUPIL_LUMINANCE: u8 = 20;

/// Luminance of the mouth stroke.
pub const MOUTH_LUMINANCE: u8 = 50;

/// Eye disk radius as a fraction of the apparent head radius.
pub const EYE_RADIUS_FRAC: f64 = 0.18;

/// Pupil radius as a fraction of the eye radius.
pub const PUPIL_RADIUS_FRAC: f64 = 0.45;

/// Lateral offset of each eye direction in the head frame: the eye
/// direction is `normalize(forward ± EYE_SIDE·right + EYE_UP·up)`.
pub const EYE_SIDE: f64 = 0.35;
/// Vertical offset of the eye directions (see [`EYE_SIDE`]).
pub const EYE_UP: f64 = 0.25;

/// Mouth direction offset below the forward axis:
/// `normalize(forward − MOUTH_DOWN·up)`.
pub const MOUTH_DOWN: f64 = 0.45;

/// Pupil encoding: the pupil centre is displaced from the eye centre by
/// `clamp(delta_perp / PUPIL_DELTA_RANGE, ±1) · PUPIL_MAX_OFFSET_FRAC ·
/// eye_radius_px`, where `delta_perp` is the image-plane component of
/// `(gaze − head_forward)` (both unit vectors, camera frame).
pub const PUPIL_DELTA_RANGE: f64 = 0.5;
/// See [`PUPIL_DELTA_RANGE`]. Chosen so the pupil always stays inside
/// the eye disk (`PUPIL_MAX_OFFSET_FRAC + PUPIL_RADIUS_FRAC ≤ 1`).
pub const PUPIL_MAX_OFFSET_FRAC: f64 = 0.55;

/// Luminance threshold separating face pixels from the background,
/// bodies and table (all rendered darker).
pub const FACE_THRESHOLD: u8 = 150;

/// Luminance threshold below which a pixel inside a face is a *feature*
/// pixel (eye, pupil or mouth).
pub const FEATURE_THRESHOLD: u8 = 120;

/// Luminance threshold below which a feature pixel belongs to a pupil.
pub const PUPIL_THRESHOLD: u8 = 45;

use dievent_geometry::Vec3;

/// Unit directions (head frame → same frame as the inputs) of the two
/// eye centres on the head sphere: `normalize(f ± EYE_SIDE·r + EYE_UP·u)`.
/// Returns `(left, right)` as seen from the face's own perspective
/// (left = −right-vector side).
pub fn eye_directions(forward: Vec3, right: Vec3, up: Vec3) -> (Vec3, Vec3) {
    let l = (forward - right * EYE_SIDE + up * EYE_UP).normalized();
    let r = (forward + right * EYE_SIDE + up * EYE_UP).normalized();
    (l, r)
}

/// Norm of the *unnormalized* eye direction `f ± EYE_SIDE·r + EYE_UP·u`
/// for orthonormal inputs — used by the pose decoder to invert the
/// normalization.
pub fn eye_dir_norm() -> f64 {
    (1.0 + EYE_SIDE * EYE_SIDE + EYE_UP * EYE_UP).sqrt()
}

/// Unit direction of the mouth centre on the head sphere.
pub fn mouth_direction(forward: Vec3, up: Vec3) -> Vec3 {
    (forward - up * MOUTH_DOWN).normalized()
}

/// Pupil displacement as a *fraction of the eye radius*, from the
/// camera-frame head forward and gaze directions (both unit).
///
/// The displacement encodes the image-plane (x right, y down) component
/// of `gaze − forward`, scaled by `PUPIL_DELTA_RANGE` and clamped to the
/// unit disk so the pupil never leaves the eye.
pub fn pupil_offset_frac(forward_cam: Vec3, gaze_cam: Vec3) -> (f64, f64) {
    let dx = (gaze_cam.x - forward_cam.x) / PUPIL_DELTA_RANGE;
    let dy = (gaze_cam.y - forward_cam.y) / PUPIL_DELTA_RANGE;
    let n = (dx * dx + dy * dy).sqrt();
    let (dx, dy) = if n > 1.0 { (dx / n, dy / n) } else { (dx, dy) };
    (dx * PUPIL_MAX_OFFSET_FRAC, dy * PUPIL_MAX_OFFSET_FRAC)
}

/// Inverse of [`pupil_offset_frac`] (up to the clamp): recovers the
/// image-plane delta `(gaze − forward)` components from a measured
/// pupil offset in eye-radius units.
pub fn pupil_offset_to_delta(offset_frac_x: f64, offset_frac_y: f64) -> (f64, f64) {
    (
        offset_frac_x / PUPIL_MAX_OFFSET_FRAC * PUPIL_DELTA_RANGE,
        offset_frac_y / PUPIL_MAX_OFFSET_FRAC * PUPIL_DELTA_RANGE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eye_directions_are_unit_and_symmetric() {
        let (l, r) = eye_directions(Vec3::X, Vec3::Y, Vec3::Z);
        assert!((l.norm() - 1.0).abs() < 1e-12);
        assert!((r.norm() - 1.0).abs() < 1e-12);
        // Symmetric about the forward-up plane.
        assert!((l.y + r.y).abs() < 1e-12);
        assert!((l.z - r.z).abs() < 1e-12);
        assert!(l.x > 0.9, "eyes sit on the front of the head");
    }

    #[test]
    fn pupil_encode_decode_round_trip() {
        let f = Vec3::new(0.1, -0.05, -0.99).normalized();
        let g = Vec3::new(0.25, 0.1, -0.96).normalized();
        let (ox, oy) = pupil_offset_frac(f, g);
        assert!(ox.hypot(oy) <= PUPIL_MAX_OFFSET_FRAC + 1e-12);
        let (dx, dy) = pupil_offset_to_delta(ox, oy);
        assert!((dx - (g.x - f.x)).abs() < 1e-9);
        assert!((dy - (g.y - f.y)).abs() < 1e-9);
    }

    #[test]
    fn pupil_offset_clamps_extreme_deviation() {
        let f = Vec3::new(0.0, 0.0, -1.0);
        let g = Vec3::new(0.9, 0.0, -0.43).normalized();
        let (ox, oy) = pupil_offset_frac(f, g);
        let n = ox.hypot(oy);
        assert!(
            (n - PUPIL_MAX_OFFSET_FRAC).abs() < 1e-9,
            "clamped to max, got {n}"
        );
    }

    #[test]
    fn shaded_rim_stays_above_face_threshold() {
        for i in 0..8 {
            let rim = skin_tone(i) as f64 * (1.0 - SHADING);
            assert!(
                rim > FACE_THRESHOLD as f64,
                "participant {i}: rim luminance {rim} would be lost by the detector"
            );
        }
    }

    #[test]
    fn tones_are_separable() {
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    let d = (skin_tone(i) as i16 - skin_tone(j) as i16).abs();
                    assert!(d >= 15, "tones {i} and {j} too close for recognition");
                }
            }
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pupil_never_leaves_the_eye() {
        assert!(PUPIL_MAX_OFFSET_FRAC + PUPIL_RADIUS_FRAC <= 1.0 + 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn luminance_bands_are_ordered() {
        assert!(PUPIL_LUMINANCE < PUPIL_THRESHOLD);
        assert!(MOUTH_LUMINANCE < FEATURE_THRESHOLD);
        assert!(EYE_LUMINANCE < FEATURE_THRESHOLD);
        assert!(
            EYE_LUMINANCE > PUPIL_THRESHOLD,
            "iris must not read as pupil"
        );
        assert!(FEATURE_THRESHOLD < FACE_THRESHOLD);
    }
}
