//! Face recognition — the OpenFace-library substitute's recognition
//! half.
//!
//! Each enrolled person is represented by an appearance embedding;
//! probes match to the nearest gallery embedding under a distance
//! threshold. The embedding is deliberately simple but honest: the mean
//! luminance of the face (identity-coded in the synthetic footage just
//! as the paper's prototype color-codes its participants) concatenated
//! with a coarse radial luminance profile of the normalized face patch,
//! which captures per-identity texture.

use crate::detect::FaceDetection;
use crate::types::PersonId;
use dievent_video::GrayFrame;
use serde::{Deserialize, Serialize};

/// Length of the radial profile part of the embedding.
const PROFILE_BINS: usize = 8;

/// An appearance embedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding(Vec<f64>);

impl Embedding {
    /// Euclidean distance between embeddings.
    pub fn distance(&self, other: &Embedding) -> f64 {
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Computes the embedding of a face from its detection and a normalized
/// (resized) face patch.
///
/// The mean-luminance channel is weighted heavily: it is the dominant
/// identity cue, with the radial profile breaking ties between
/// similar tones.
pub fn embed(det: &FaceDetection, patch: &GrayFrame) -> Embedding {
    let mut v = Vec::with_capacity(1 + PROFILE_BINS);
    v.push(det.mean_luminance);

    // Radial profile: mean luminance in concentric rings around the
    // patch centre, normalized to the patch mean to decouple from tone.
    let w = patch.width() as f64;
    let h = patch.height() as f64;
    let (cx, cy) = (w / 2.0, h / 2.0);
    let max_r = cx.min(cy);
    let mut sums = [0.0f64; PROFILE_BINS];
    let mut counts = [0usize; PROFILE_BINS];
    for y in 0..patch.height() {
        for x in 0..patch.width() {
            let dx = x as f64 + 0.5 - cx;
            let dy = y as f64 + 0.5 - cy;
            let r = (dx * dx + dy * dy).sqrt() / max_r;
            if r >= 1.0 {
                continue;
            }
            let bin = (r * PROFILE_BINS as f64) as usize;
            sums[bin] += patch.get(x, y) as f64;
            counts[bin] += 1;
        }
    }
    let mean = patch.mean().max(1.0);
    for (s, c) in sums.iter().zip(&counts) {
        // Scaled to be secondary to the tone channel.
        v.push(if *c > 0 {
            s / *c as f64 / mean * 10.0
        } else {
            0.0
        });
    }
    Embedding(v)
}

/// Recognizer tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecognizerConfig {
    /// Maximum embedding distance for a match.
    pub max_distance: f64,
}

impl Default for RecognizerConfig {
    fn default() -> Self {
        RecognizerConfig { max_distance: 14.0 }
    }
}

/// A successful gallery match.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recognition {
    /// The matched identity.
    pub person: PersonId,
    /// Embedding distance of the match.
    pub distance: f64,
}

/// An enrolled gallery of identities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaceGallery {
    entries: Vec<(PersonId, Embedding)>,
    config: RecognizerConfig,
}

impl Default for FaceGallery {
    fn default() -> Self {
        FaceGallery::new(RecognizerConfig::default())
    }
}

impl FaceGallery {
    /// Creates an empty gallery.
    pub fn new(config: RecognizerConfig) -> Self {
        FaceGallery {
            entries: Vec::new(),
            config,
        }
    }

    /// Number of enrolled identities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is enrolled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enrolls a person from a reference detection + patch. Re-enrolling
    /// the same id replaces the previous embedding.
    pub fn enroll(&mut self, person: PersonId, det: &FaceDetection, patch: &GrayFrame) {
        let emb = embed(det, patch);
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == person) {
            e.1 = emb;
        } else {
            self.entries.push((person, emb));
        }
    }

    /// Matches a probe against the gallery.
    pub fn recognize(&self, det: &FaceDetection, patch: &GrayFrame) -> Option<Recognition> {
        let probe = embed(det, patch);
        let (person, distance) = self
            .entries
            .iter()
            .map(|(p, e)| (*p, e.distance(&probe)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        (distance <= self.config.max_distance).then_some(Recognition { person, distance })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic face patch with the given tone and a per-identity
    /// freckle texture.
    fn face_fixture(tone: u8, texture_seed: u32) -> (FaceDetection, GrayFrame) {
        let mut patch = GrayFrame::new(48, 48, 0);
        patch.fill_disk(24.0, 24.0, 22.0, tone);
        // Freckles.
        for k in 0..10u32 {
            let h = k.wrapping_mul(2654435761).wrapping_add(texture_seed * 77);
            let x = 12.0 + (h % 24) as f64;
            let y = 12.0 + ((h >> 8) % 24) as f64;
            patch.fill_disk(x, y, 1.2, tone.saturating_sub(30));
        }
        let det = FaceDetection {
            cx: 100.0,
            cy: 100.0,
            radius: 22.0,
            bbox: (78, 78, 122, 122),
            area: 1520,
            mean_luminance: tone as f64 - 3.0,
        };
        (det, patch)
    }

    #[test]
    fn enroll_and_recognize_distinct_tones() {
        let mut g = FaceGallery::new(RecognizerConfig::default());
        let people: Vec<(PersonId, u8)> = vec![
            (PersonId(0), 250),
            (PersonId(1), 225),
            (PersonId(2), 200),
            (PersonId(3), 175),
        ];
        for &(p, tone) in &people {
            let (det, patch) = face_fixture(tone, p.0 as u32);
            g.enroll(p, &det, &patch);
        }
        assert_eq!(g.len(), 4);
        for &(p, tone) in &people {
            // Probe with slightly perturbed tone (shading/noise).
            let (mut det, patch) = face_fixture(tone, p.0 as u32);
            det.mean_luminance += 4.0;
            let r = g.recognize(&det, &patch).expect("match");
            assert_eq!(r.person, p, "tone {tone} must match {p}");
        }
    }

    #[test]
    fn unknown_face_rejected() {
        let mut g = FaceGallery::new(RecognizerConfig::default());
        let (det, patch) = face_fixture(250, 0);
        g.enroll(PersonId(0), &det, &patch);
        // A much darker stranger.
        let (sdet, spatch) = face_fixture(120, 9);
        assert!(g.recognize(&sdet, &spatch).is_none());
    }

    #[test]
    fn empty_gallery_matches_nothing() {
        let g = FaceGallery::new(RecognizerConfig::default());
        let (det, patch) = face_fixture(200, 0);
        assert!(g.recognize(&det, &patch).is_none());
    }

    #[test]
    fn re_enroll_replaces() {
        let mut g = FaceGallery::new(RecognizerConfig::default());
        let (det, patch) = face_fixture(250, 0);
        g.enroll(PersonId(0), &det, &patch);
        let (det2, patch2) = face_fixture(180, 0);
        g.enroll(PersonId(0), &det2, &patch2);
        assert_eq!(g.len(), 1);
        let r = g.recognize(&det2, &patch2).expect("match after re-enroll");
        assert_eq!(r.person, PersonId(0));
        assert!(r.distance < 1.0);
    }

    #[test]
    fn embedding_distance_properties() {
        let (det, patch) = face_fixture(220, 1);
        let e = embed(&det, &patch);
        assert_eq!(e.distance(&e), 0.0);
        let (det2, patch2) = face_fixture(200, 2);
        let e2 = embed(&det2, &patch2);
        assert!(
            (e.distance(&e2) - e2.distance(&e)).abs() < 1e-12,
            "symmetric"
        );
        assert!(e.distance(&e2) > 0.0);
    }
}
