//! Shared observation types produced by the vision pipeline.

use crate::detect::FaceDetection;
use crate::landmarks::FaceLandmarks;
use crate::pose::HeadPoseEstimate;
use dievent_video::GrayFrame;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier of an *enrolled person* (gallery identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PersonId(pub usize);

impl fmt::Display for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

/// A per-camera track identifier assigned by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TrackId(pub u64);

impl fmt::Display for TrackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Everything the vision pipeline knows about one face in one frame of
/// one camera — the unit consumed by the multilayer analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaceObservation {
    /// Frame index within the camera's stream.
    pub frame: usize,
    /// Raw detection.
    pub detection: FaceDetection,
    /// Landmarks, when the face is camera-facing enough to show eyes.
    pub landmarks: Option<FaceLandmarks>,
    /// Head pose + gaze in the camera frame, when landmarks were found.
    pub pose: Option<HeadPoseEstimate>,
    /// Track assigned by the per-camera tracker.
    pub track: Option<TrackId>,
    /// Recognized identity and its match distance, when the gallery
    /// produced a confident match.
    pub identity: Option<(PersonId, f64)>,
    /// The cropped, resized face patch (for emotion classification).
    pub patch: Option<GrayFrame>,
}

impl FaceObservation {
    /// Returns `true` when this observation carries a usable gaze.
    pub fn has_gaze(&self) -> bool {
        self.pose.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PersonId(0).to_string(), "P1");
        assert_eq!(PersonId(3).to_string(), "P4");
        assert_eq!(TrackId(7).to_string(), "T7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(PersonId(1));
        s.insert(PersonId(1));
        assert_eq!(s.len(), 1);
        assert!(PersonId(0) < PersonId(1));
        assert!(TrackId(2) < TrackId(10));
    }
}
