//! Face tracking across frames — the OpenFace-library substitute's
//! tracking half.
//!
//! Each track runs a constant-velocity Kalman filter over the face's
//! image position and apparent radius. Per frame, detections are
//! associated to predicted track positions with the Hungarian algorithm
//! under a gating distance; unmatched detections open new tracks and
//! tracks missing for too long are retired.

use crate::detect::FaceDetection;
use crate::hungarian::hungarian_min_assignment;
use crate::types::TrackId;
use serde::{Deserialize, Serialize};

/// Tracker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Maximum association distance in pixels between a predicted track
    /// position and a detection.
    pub gate_px: f64,
    /// Frames a track may go unmatched before it is dropped.
    pub max_misses: usize,
    /// Process noise: position variance added per frame.
    pub process_noise: f64,
    /// Measurement noise: variance of detection centroids.
    pub measurement_noise: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            gate_px: 48.0,
            max_misses: 12,
            process_noise: 4.0,
            measurement_noise: 1.0,
        }
    }
}

/// 1-D constant-velocity Kalman filter (position + velocity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Kalman1D {
    x: f64,
    v: f64,
    // Covariance entries.
    p_xx: f64,
    p_xv: f64,
    p_vv: f64,
}

impl Kalman1D {
    fn new(x: f64) -> Self {
        Kalman1D {
            x,
            v: 0.0,
            p_xx: 25.0,
            p_xv: 0.0,
            p_vv: 25.0,
        }
    }

    fn predict(&mut self, q: f64) {
        // x' = x + v, v' = v.
        self.x += self.v;
        self.p_xx += 2.0 * self.p_xv + self.p_vv + q;
        self.p_xv += self.p_vv;
        self.p_vv += q * 0.25;
    }

    fn update(&mut self, z: f64, r: f64) {
        let s = self.p_xx + r;
        let kx = self.p_xx / s;
        let kv = self.p_xv / s;
        let innov = z - self.x;
        self.x += kx * innov;
        self.v += kv * innov;
        let p_xx = (1.0 - kx) * self.p_xx;
        let p_xv = (1.0 - kx) * self.p_xv;
        let p_vv = self.p_vv - kv * self.p_xv;
        self.p_xx = p_xx;
        self.p_xv = p_xv;
        self.p_vv = p_vv;
    }
}

/// One tracked face.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// Stable track identifier.
    pub id: TrackId,
    kx: Kalman1D,
    ky: Kalman1D,
    kr: Kalman1D,
    /// Consecutive unmatched frames.
    pub misses: usize,
    /// Total frames this track was matched.
    pub hits: usize,
}

impl Track {
    /// Predicted position `(x, y)` for the current frame.
    pub fn predicted(&self) -> (f64, f64) {
        (self.kx.x, self.ky.x)
    }

    /// Smoothed radius estimate.
    pub fn radius(&self) -> f64 {
        self.kr.x
    }

    /// Current velocity estimate `(vx, vy)` in pixels/frame.
    pub fn velocity(&self) -> (f64, f64) {
        (self.kx.v, self.ky.v)
    }
}

/// Tracks faces across sequential frames of one camera.
#[derive(Debug, Clone)]
pub struct FaceTracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
}

impl Default for FaceTracker {
    fn default() -> Self {
        FaceTracker::new(TrackerConfig::default())
    }
}

impl FaceTracker {
    /// Creates a tracker.
    pub fn new(config: TrackerConfig) -> Self {
        FaceTracker {
            config,
            tracks: Vec::new(),
            next_id: 0,
        }
    }

    /// Currently live tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Advances one frame: predicts all tracks, associates `detections`,
    /// and returns the track id assigned to each detection (parallel to
    /// the input).
    pub fn step(&mut self, detections: &[FaceDetection]) -> Vec<TrackId> {
        let cfg = self.config;
        for t in &mut self.tracks {
            t.kx.predict(cfg.process_noise);
            t.ky.predict(cfg.process_noise);
            t.kr.predict(cfg.process_noise * 0.1);
        }

        let n_det = detections.len();
        let n_trk = self.tracks.len();
        let mut assigned = vec![None; n_det];

        if n_det > 0 && n_trk > 0 {
            let mut costs = vec![0.0f64; n_det * n_trk];
            for (d, det) in detections.iter().enumerate() {
                for (t, trk) in self.tracks.iter().enumerate() {
                    let (px, py) = trk.predicted();
                    let dist = ((det.cx - px).powi(2) + (det.cy - py).powi(2)).sqrt();
                    costs[d * n_trk + t] = if dist <= cfg.gate_px {
                        dist
                    } else {
                        f64::INFINITY
                    };
                }
            }
            let matches = hungarian_min_assignment(&costs, n_det, n_trk);
            for (d, m) in matches.into_iter().enumerate() {
                if let Some(t) = m {
                    if costs[d * n_trk + t].is_finite() {
                        assigned[d] = Some(t);
                    }
                }
            }
        }

        let mut matched_tracks = vec![false; n_trk];
        let mut out = Vec::with_capacity(n_det);
        for (d, det) in detections.iter().enumerate() {
            match assigned[d] {
                Some(t) => {
                    let trk = &mut self.tracks[t];
                    trk.kx.update(det.cx, cfg.measurement_noise);
                    trk.ky.update(det.cy, cfg.measurement_noise);
                    trk.kr.update(det.radius, cfg.measurement_noise);
                    trk.misses = 0;
                    trk.hits += 1;
                    matched_tracks[t] = true;
                    out.push(trk.id);
                }
                None => {
                    // Open a new track seeded at the detection.
                    let id = TrackId(self.next_id);
                    self.next_id += 1;
                    self.tracks.push(Track {
                        id,
                        kx: Kalman1D::new(det.cx),
                        ky: Kalman1D::new(det.cy),
                        kr: Kalman1D::new(det.radius),
                        misses: 0,
                        hits: 1,
                    });
                    out.push(id);
                }
            }
        }

        // Age unmatched pre-existing tracks (new tracks were appended
        // after index n_trk and start with zero misses) and retire
        // tracks that have been gone too long.
        for (i, t) in self.tracks.iter_mut().enumerate().take(n_trk) {
            if !matched_tracks[i] {
                t.misses += 1;
            }
        }
        self.tracks.retain(|t| t.misses <= cfg.max_misses);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(cx: f64, cy: f64, r: f64) -> FaceDetection {
        FaceDetection {
            cx,
            cy,
            radius: r,
            bbox: (
                (cx - r) as u32,
                (cy - r) as u32,
                (cx + r) as u32,
                (cy + r) as u32,
            ),
            area: (std::f64::consts::PI * r * r) as usize,
            mean_luminance: 200.0,
        }
    }

    #[test]
    fn stable_ids_for_stationary_faces() {
        let mut tr = FaceTracker::new(TrackerConfig::default());
        let first = tr.step(&[det(100.0, 100.0, 15.0), det(300.0, 120.0, 18.0)]);
        assert_eq!(first.len(), 2);
        assert_ne!(first[0], first[1]);
        for _ in 0..20 {
            let ids = tr.step(&[det(100.5, 99.5, 15.0), det(299.5, 120.5, 18.0)]);
            assert_eq!(ids, first, "ids must stay stable");
        }
        assert_eq!(tr.tracks().len(), 2);
    }

    #[test]
    fn follows_linear_motion() {
        let mut tr = FaceTracker::new(TrackerConfig::default());
        let id0 = tr.step(&[det(50.0, 200.0, 12.0)])[0];
        for i in 1..30 {
            let ids = tr.step(&[det(50.0 + 6.0 * i as f64, 200.0, 12.0)]);
            assert_eq!(ids[0], id0, "moving face keeps its id at frame {i}");
        }
        let (vx, _) = tr.tracks()[0].velocity();
        assert!((vx - 6.0).abs() < 1.0, "velocity learned: {vx}");
    }

    #[test]
    fn crossing_faces_keep_identity() {
        // Two faces approach, pass, and separate; constant-velocity
        // prediction should carry identity through the crossing.
        let mut tr = FaceTracker::new(TrackerConfig::default());
        let ids0 = tr.step(&[det(100.0, 100.0, 12.0), det(300.0, 104.0, 12.0)]);
        let mut last = ids0.clone();
        for i in 1..40 {
            let a = det(100.0 + 5.0 * i as f64, 100.0, 12.0);
            let b = det(300.0 - 5.0 * i as f64, 104.0, 12.0);
            last = tr.step(&[a, b]);
        }
        assert_eq!(last, ids0, "identities must survive the crossover");
    }

    #[test]
    fn occlusion_gap_bridged() {
        let mut tr = FaceTracker::new(TrackerConfig::default());
        let id = tr.step(&[det(200.0, 150.0, 14.0)])[0];
        for _ in 0..5 {
            tr.step(&[det(200.0, 150.0, 14.0)]);
        }
        // 6 frames of occlusion (below max_misses = 12).
        for _ in 0..6 {
            let ids = tr.step(&[]);
            assert!(ids.is_empty());
            assert_eq!(tr.tracks().len(), 1, "track must persist through occlusion");
        }
        let ids = tr.step(&[det(202.0, 151.0, 14.0)]);
        assert_eq!(ids[0], id, "reacquired face keeps its id");
    }

    #[test]
    fn stale_tracks_retired() {
        let cfg = TrackerConfig {
            max_misses: 3,
            ..TrackerConfig::default()
        };
        let mut tr = FaceTracker::new(cfg);
        tr.step(&[det(100.0, 100.0, 10.0)]);
        for _ in 0..4 {
            tr.step(&[]);
        }
        assert!(
            tr.tracks().is_empty(),
            "track should be dropped after 3 misses"
        );
    }

    #[test]
    fn far_detection_opens_new_track() {
        let mut tr = FaceTracker::new(TrackerConfig::default());
        let a = tr.step(&[det(100.0, 100.0, 10.0)])[0];
        // 400 px away — outside the 48 px gate.
        let b = tr.step(&[det(500.0, 100.0, 10.0)])[0];
        assert_ne!(a, b);
        assert_eq!(tr.tracks().len(), 2);
    }
}
