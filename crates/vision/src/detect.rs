//! Face detection: thresholding, connected components, circularity.
//!
//! Faces render as bright, roughly circular blobs against darker
//! background, bodies and table (see [`crate::contract`]). Detection:
//!
//! 1. binarize at [`crate::contract::FACE_THRESHOLD`];
//! 2. 4-connected component labelling (iterative flood fill);
//! 3. filter components by area and by *circularity* — the ratio of the
//!    component area to the area of the circle inscribed in its
//!    bounding box. Merged/occluded double-heads and torso fragments
//!    fail this test and are rejected rather than mis-measured.

use dievent_video::GrayFrame;
use serde::{Deserialize, Serialize};

/// A detected face candidate in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaceDetection {
    /// Intensity centroid x (pixels, subpixel precision).
    pub cx: f64,
    /// Intensity centroid y (pixels, subpixel precision).
    pub cy: f64,
    /// Apparent radius in pixels, estimated from the bounding box
    /// (robust to interior feature "holes").
    pub radius: f64,
    /// Bounding box `(x0, y0, x1, y1)`, inclusive.
    pub bbox: (u32, u32, u32, u32),
    /// Component area in pixels.
    pub area: usize,
    /// Mean luminance of the component — the identity cue used by
    /// [`crate::recognize`].
    pub mean_luminance: f64,
}

impl FaceDetection {
    /// Bounding-box width in pixels.
    pub fn width(&self) -> u32 {
        self.bbox.2 - self.bbox.0 + 1
    }

    /// Bounding-box height in pixels.
    pub fn height(&self) -> u32 {
        self.bbox.3 - self.bbox.1 + 1
    }
}

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Binarization threshold (luminance).
    pub threshold: u8,
    /// Minimum component area in pixels.
    pub min_area: usize,
    /// Maximum component area in pixels.
    pub max_area: usize,
    /// Minimum circularity: `area / (π/4 · w · h)` of the bounding box,
    /// further penalized for aspect ratios far from 1.
    pub min_circularity: f64,
    /// Maximum bbox aspect ratio (long side / short side).
    pub max_aspect: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            threshold: crate::contract::FACE_THRESHOLD,
            min_area: 40,
            max_area: 40_000,
            min_circularity: 0.72,
            max_aspect: 1.45,
        }
    }
}

/// Detects face candidates in a frame. Results are ordered by descending
/// area (most prominent first).
pub fn detect_faces(frame: &GrayFrame, config: &DetectorConfig) -> Vec<FaceDetection> {
    let w = frame.width() as usize;
    let h = frame.height() as usize;
    if w == 0 || h == 0 {
        return Vec::new();
    }
    let data = frame.data();
    // 0 = unvisited background/below threshold, 1 = foreground unvisited,
    // 2 = visited.
    let mut mask: Vec<u8> = data
        .iter()
        .map(|&v| u8::from(v >= config.threshold))
        .collect();

    let mut detections = Vec::new();
    let mut stack: Vec<usize> = Vec::new();

    for start in 0..mask.len() {
        if mask[start] != 1 {
            continue;
        }
        // Iterative flood fill of one component.
        mask[start] = 2;
        stack.push(start);
        let mut area = 0usize;
        let mut sum_x = 0.0f64;
        let mut sum_y = 0.0f64;
        let mut sum_lum = 0.0f64;
        let (mut x0, mut y0, mut x1, mut y1) = (w, h, 0usize, 0usize);

        while let Some(idx) = stack.pop() {
            let x = idx % w;
            let y = idx / w;
            area += 1;
            sum_x += x as f64;
            sum_y += y as f64;
            sum_lum += data[idx] as f64;
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);

            // 4-connected neighbours.
            if x > 0 && mask[idx - 1] == 1 {
                mask[idx - 1] = 2;
                stack.push(idx - 1);
            }
            if x + 1 < w && mask[idx + 1] == 1 {
                mask[idx + 1] = 2;
                stack.push(idx + 1);
            }
            if y > 0 && mask[idx - w] == 1 {
                mask[idx - w] = 2;
                stack.push(idx - w);
            }
            if y + 1 < h && mask[idx + w] == 1 {
                mask[idx + w] = 2;
                stack.push(idx + w);
            }
        }

        if area < config.min_area || area > config.max_area {
            continue;
        }
        let bw = (x1 - x0 + 1) as f64;
        let bh = (y1 - y0 + 1) as f64;
        let aspect = bw.max(bh) / bw.min(bh);
        if aspect > config.max_aspect {
            continue;
        }
        // A filled circle inscribed in its bbox covers π/4 of it; interior
        // feature holes (eyes/mouth) lower that slightly, merged blobs
        // lower it a lot.
        let circularity = area as f64 / (std::f64::consts::FRAC_PI_4 * bw * bh);
        if circularity < config.min_circularity {
            continue;
        }

        detections.push(FaceDetection {
            cx: sum_x / area as f64,
            cy: sum_y / area as f64,
            radius: (bw + bh) / 4.0,
            bbox: (x0 as u32, y0 as u32, x1 as u32, y1 as u32),
            area,
            mean_luminance: sum_lum / area as f64,
        });
    }

    detections.sort_by_key(|d| std::cmp::Reverse(d.area));
    detections
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas() -> GrayFrame {
        GrayFrame::new(160, 120, 40)
    }

    #[test]
    fn empty_frame_no_detections() {
        let f = canvas();
        assert!(detect_faces(&f, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn single_disk_detected_precisely() {
        let mut f = canvas();
        f.fill_disk(80.0, 60.0, 15.0, 220);
        let det = detect_faces(&f, &DetectorConfig::default());
        assert_eq!(det.len(), 1);
        let d = det[0];
        assert!((d.cx - 80.0).abs() < 0.6, "cx = {}", d.cx);
        assert!((d.cy - 60.0).abs() < 0.6, "cy = {}", d.cy);
        assert!((d.radius - 15.0).abs() < 1.0, "radius = {}", d.radius);
        assert!((d.mean_luminance - 220.0).abs() < 1.0);
    }

    #[test]
    fn disk_with_feature_holes_still_detected() {
        let mut f = canvas();
        f.fill_disk(80.0, 60.0, 16.0, 220);
        // Eyes and mouth.
        f.fill_disk(74.0, 55.0, 3.0, 90);
        f.fill_disk(86.0, 55.0, 3.0, 90);
        f.fill_rect(74, 67, 12, 3, 50);
        let det = detect_faces(&f, &DetectorConfig::default());
        assert_eq!(det.len(), 1);
        assert!(
            (det[0].radius - 16.0).abs() < 1.0,
            "bbox radius unaffected by holes"
        );
    }

    #[test]
    fn multiple_faces_sorted_by_area() {
        let mut f = canvas();
        f.fill_disk(40.0, 40.0, 10.0, 200);
        f.fill_disk(110.0, 70.0, 18.0, 230);
        let det = detect_faces(&f, &DetectorConfig::default());
        assert_eq!(det.len(), 2);
        assert!(det[0].radius > det[1].radius);
        assert!((det[0].cx - 110.0).abs() < 1.0);
    }

    #[test]
    fn small_speckles_rejected() {
        let mut f = canvas();
        f.fill_disk(20.0, 20.0, 2.0, 220);
        assert!(detect_faces(&f, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn elongated_blob_rejected() {
        let mut f = canvas();
        f.fill_rect(30, 50, 60, 14, 220);
        assert!(
            detect_faces(&f, &DetectorConfig::default()).is_empty(),
            "a torso-like bar must not read as a face"
        );
    }

    #[test]
    fn merged_double_head_rejected() {
        let mut f = canvas();
        // Two overlapping disks form a peanut: aspect ~2, fails.
        f.fill_disk(70.0, 60.0, 12.0, 220);
        f.fill_disk(90.0, 60.0, 12.0, 220);
        let det = detect_faces(&f, &DetectorConfig::default());
        assert!(det.is_empty(), "got {det:?}");
    }

    #[test]
    fn touching_image_border_still_works() {
        let mut f = canvas();
        f.fill_disk(0.0, 60.0, 12.0, 220);
        let det = detect_faces(&f, &DetectorConfig::default());
        // Half-disk at the border: aspect 12×24 ≈ 2 → rejected (too
        // truncated to measure reliably). This documents the behaviour.
        assert!(det.is_empty());
        // Fully inside but near the border: fine.
        let mut g = canvas();
        g.fill_disk(13.0, 60.0, 12.0, 220);
        assert_eq!(detect_faces(&g, &DetectorConfig::default()).len(), 1);
    }

    #[test]
    fn threshold_respected() {
        let mut f = canvas();
        f.fill_disk(80.0, 60.0, 12.0, 140); // below default threshold 150
        assert!(detect_faces(&f, &DetectorConfig::default()).is_empty());
        let cfg = DetectorConfig {
            threshold: 130,
            ..DetectorConfig::default()
        };
        assert_eq!(detect_faces(&f, &cfg).len(), 1);
    }

    #[test]
    fn noise_robustness() {
        let mut f = canvas();
        f.fill_disk(80.0, 60.0, 14.0, 220);
        // Deterministic ±6 noise.
        f.mutate(|d| {
            for (i, px) in d.iter_mut().enumerate() {
                let n = ((i as u32).wrapping_mul(2654435761) >> 28) as i32 % 7 - 3;
                *px = (*px as i32 + n).clamp(0, 255) as u8;
            }
        });
        let det = detect_faces(&f, &DetectorConfig::default());
        assert_eq!(det.len(), 1);
        assert!((det[0].cx - 80.0).abs() < 1.0);
    }
}
