//! Discrete highlight/alert events (paper §IV: "alerting
//! functionalities like the emotion state changes, and the eye contact
//! detection").

use dievent_analysis::ec_stats::ec_episodes;
use dievent_analysis::lookat::LookAtMatrix;
use dievent_analysis::overall_emotion::OverallEmotion;
use serde::{Deserialize, Serialize};

/// The kind of a highlight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HighlightKind {
    /// A sustained mutual eye-contact episode began.
    EyeContactStart {
        /// The pair in contact (`a < b`).
        pair: (usize, usize),
        /// Episode length in frames.
        duration: usize,
    },
    /// The group's smoothed valence moved by more than the threshold.
    EmotionShift {
        /// Valence before the shift.
        from_valence: f64,
        /// Valence after the shift.
        to_valence: f64,
    },
}

/// One highlight event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Highlight {
    /// Frame where the event is anchored.
    pub frame: usize,
    /// What happened.
    pub kind: HighlightKind,
}

/// Highlight detection tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HighlightConfig {
    /// Minimum EC episode length (frames) to report.
    pub min_ec_frames: usize,
    /// Valence change (absolute, over `emotion_window` frames) that
    /// triggers an emotion-shift highlight.
    pub valence_threshold: f64,
    /// Window over which valence change is measured.
    pub emotion_window: usize,
    /// Minimum frames between two emotion-shift highlights.
    pub emotion_cooldown: usize,
}

impl Default for HighlightConfig {
    fn default() -> Self {
        HighlightConfig {
            min_ec_frames: 8,
            valence_threshold: 0.25,
            emotion_window: 12,
            emotion_cooldown: 25,
        }
    }
}

/// Detects highlights over a frame-aligned matrix + emotion sequence.
///
/// Results are ordered by frame.
///
/// # Panics
/// Panics on length mismatch.
pub fn detect_highlights(
    matrices: &[LookAtMatrix],
    emotions: &[OverallEmotion],
    config: &HighlightConfig,
) -> Vec<Highlight> {
    assert_eq!(matrices.len(), emotions.len(), "layer lengths must match");
    let mut out = Vec::new();

    // EC episode starts.
    for ep in ec_episodes(matrices, config.min_ec_frames) {
        out.push(Highlight {
            frame: ep.start,
            kind: HighlightKind::EyeContactStart {
                pair: (ep.a, ep.b),
                duration: ep.len(),
            },
        });
    }

    // Emotion shifts with cooldown.
    let w = config.emotion_window.max(1);
    let mut last_shift: Option<usize> = None;
    for f in w..emotions.len() {
        let from = emotions[f - w].valence;
        let to = emotions[f].valence;
        if (to - from).abs() >= config.valence_threshold {
            let cooled = last_shift.is_none_or(|ls| f - ls >= config.emotion_cooldown);
            if cooled {
                out.push(Highlight {
                    frame: f,
                    kind: HighlightKind::EmotionShift {
                        from_valence: from,
                        to_valence: to,
                    },
                });
                last_shift = Some(f);
            }
        }
    }

    out.sort_by_key(|h| h.frame);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dievent_analysis::overall_emotion::{fuse_emotions, EmotionEstimate, OverallEmotionConfig};
    use dievent_emotion::Emotion;

    fn emo(e: Emotion) -> OverallEmotion {
        fuse_emotions(
            &[EmotionEstimate::hard(0, e, 1.0)],
            &OverallEmotionConfig {
                participants: 1,
                smoothing: 0.0,
            },
        )
    }

    fn ec(pairs: &[(usize, usize)]) -> LookAtMatrix {
        let mut m = LookAtMatrix::zero(4);
        for &(a, b) in pairs {
            m.set(a, b, 1);
            m.set(b, a, 1);
        }
        m
    }

    #[test]
    fn ec_episode_start_reported() {
        let mut mats = vec![LookAtMatrix::zero(4); 10];
        mats.extend(vec![ec(&[(0, 2)]); 12]);
        let emos = vec![emo(Emotion::Neutral); 22];
        let hs = detect_highlights(&mats, &emos, &HighlightConfig::default());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].frame, 10);
        assert_eq!(
            hs[0].kind,
            HighlightKind::EyeContactStart {
                pair: (0, 2),
                duration: 12
            }
        );
    }

    #[test]
    fn short_ec_blip_ignored() {
        let mut mats = vec![LookAtMatrix::zero(4); 5];
        mats.extend(vec![ec(&[(1, 3)]); 3]); // < min_ec_frames
        mats.extend(vec![LookAtMatrix::zero(4); 5]);
        let emos = vec![emo(Emotion::Neutral); 13];
        let hs = detect_highlights(&mats, &emos, &HighlightConfig::default());
        assert!(hs.is_empty());
    }

    #[test]
    fn emotion_shift_detected_once_per_transition() {
        let mats = vec![LookAtMatrix::zero(4); 60];
        let mut emos = vec![emo(Emotion::Neutral); 30];
        emos.extend(vec![emo(Emotion::Happy); 30]);
        let hs = detect_highlights(&mats, &emos, &HighlightConfig::default());
        let shifts: Vec<_> = hs
            .iter()
            .filter(|h| matches!(h.kind, HighlightKind::EmotionShift { .. }))
            .collect();
        assert_eq!(shifts.len(), 1, "cooldown collapses the ramp: {shifts:?}");
        assert!(shifts[0].frame >= 30 && shifts[0].frame < 45);
        if let HighlightKind::EmotionShift {
            from_valence,
            to_valence,
        } = shifts[0].kind
        {
            assert!(to_valence > from_valence);
        }
    }

    #[test]
    fn results_ordered_by_frame() {
        let mut mats = vec![ec(&[(0, 1)]); 10];
        mats.extend(vec![LookAtMatrix::zero(4); 30]);
        mats.extend(vec![ec(&[(2, 3)]); 10]);
        let mut emos = vec![emo(Emotion::Neutral); 25];
        emos.extend(vec![emo(Emotion::Disgust); 25]);
        let hs = detect_highlights(&mats, &emos, &HighlightConfig::default());
        assert!(hs.len() >= 3);
        assert!(hs.windows(2).all(|w| w[0].frame <= w[1].frame));
    }
}
