//! Budgeted summary segment selection.
//!
//! Given an importance series and the shot structure from video
//! parsing, select the most important shots whose total length fits a
//! duration budget — greedy by importance *density* (score per frame),
//! which is the classic approximation for the knapsack this poses.

use crate::importance::ImportanceConfig;
use dievent_video::shots::Shot;
use serde::{Deserialize, Serialize};

/// Summary selection tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryConfig {
    /// Maximum total summary length in frames.
    pub budget_frames: usize,
    /// Shots shorter than this never enter a summary (unwatchable
    /// fragments).
    pub min_segment_frames: usize,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            budget_frames: 150,
            min_segment_frames: 8,
        }
    }
}

/// One selected summary segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummarySegment {
    /// Source shot index.
    pub shot: usize,
    /// Frame range `[start, end)`.
    pub start: usize,
    /// End of the range (exclusive).
    pub end: usize,
    /// Mean importance over the segment.
    pub score: f64,
}

impl SummarySegment {
    /// Segment length in frames.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for a degenerate empty segment.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A complete video summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoSummary {
    /// Selected segments in temporal order.
    pub segments: Vec<SummarySegment>,
    /// Total selected frames.
    pub total_frames: usize,
    /// Fraction of the source video covered.
    pub coverage: f64,
}

/// Selects summary segments from shots and an importance series.
///
/// Greedy by mean importance, respecting the frame budget; segments are
/// returned in temporal order. Shots partially exceeding the remaining
/// budget are skipped rather than truncated (mid-shot cuts read badly).
///
/// # Panics
/// Panics when any shot range exceeds the series length.
pub fn select_summary(
    shots: &[Shot],
    importance: &[f64],
    config: &SummaryConfig,
    _importance_config: &ImportanceConfig,
) -> VideoSummary {
    let mut candidates: Vec<SummarySegment> = shots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.len() >= config.min_segment_frames)
        .map(|(i, s)| {
            assert!(
                s.end <= importance.len(),
                "shot {i} exceeds importance series"
            );
            let score = importance[s.start..s.end].iter().sum::<f64>() / s.len() as f64;
            SummarySegment {
                shot: i,
                start: s.start,
                end: s.end,
                score,
            }
        })
        .collect();

    // Greedy by mean importance (density), stable tie-break on earlier
    // position for determinism.
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.start.cmp(&b.start)));

    let mut selected = Vec::new();
    let mut used = 0usize;
    for c in candidates {
        if used + c.len() <= config.budget_frames {
            used += c.len();
            selected.push(c);
        }
    }
    selected.sort_by_key(|s| s.start);

    VideoSummary {
        total_frames: used,
        coverage: if importance.is_empty() {
            0.0
        } else {
            used as f64 / importance.len() as f64
        },
        segments: selected,
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The budget is an invariant for arbitrary shot layouts and
        /// importance series; segments never overlap and stay sorted.
        #[test]
        fn budget_and_order_invariants(
            lens in proptest::collection::vec(1usize..40, 1..10),
            scores in proptest::collection::vec(0.0..10.0f64, 10),
            budget in 0usize..120,
        ) {
            let mut shots = Vec::new();
            let mut start = 0;
            for &l in &lens {
                shots.push(dievent_video::shots::Shot { start, end: start + l });
                start += l;
            }
            let importance: Vec<f64> = (0..start)
                .map(|f| scores[f % scores.len()])
                .collect();
            let cfg = SummaryConfig { budget_frames: budget, min_segment_frames: 4 };
            let s = select_summary(&shots, &importance, &cfg, &ImportanceConfig::default());
            prop_assert!(s.total_frames <= budget);
            prop_assert!(s.coverage <= 1.0 + 1e-12);
            for w in s.segments.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "segments must not overlap");
            }
            for seg in &s.segments {
                prop_assert!(seg.len() >= 4);
                prop_assert_eq!((seg.start, seg.end), (shots[seg.shot].start, shots[seg.shot].end));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shots_of(lens: &[usize]) -> Vec<Shot> {
        let mut out = Vec::new();
        let mut start = 0;
        for &l in lens {
            out.push(Shot {
                start,
                end: start + l,
            });
            start += l;
        }
        out
    }

    /// Importance series with per-shot constant values.
    fn importance_for(shots: &[Shot], values: &[f64]) -> Vec<f64> {
        let total = shots.last().map_or(0, |s| s.end);
        let mut series = vec![0.0; total];
        for (s, &v) in shots.iter().zip(values) {
            series[s.start..s.end].fill(v);
        }
        series
    }

    #[test]
    fn picks_highest_scoring_shots_within_budget() {
        let shots = shots_of(&[40, 40, 40, 40]);
        let imp = importance_for(&shots, &[0.1, 0.9, 0.5, 0.8]);
        let cfg = SummaryConfig {
            budget_frames: 80,
            min_segment_frames: 8,
        };
        let s = select_summary(&shots, &imp, &cfg, &ImportanceConfig::default());
        let picked: Vec<usize> = s.segments.iter().map(|x| x.shot).collect();
        assert_eq!(picked, vec![1, 3], "two best shots, in temporal order");
        assert_eq!(s.total_frames, 80);
        assert!((s.coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn budget_respected_even_when_skipping() {
        let shots = shots_of(&[100, 30, 30]);
        let imp = importance_for(&shots, &[1.0, 0.8, 0.7]);
        let cfg = SummaryConfig {
            budget_frames: 70,
            min_segment_frames: 8,
        };
        let s = select_summary(&shots, &imp, &cfg, &ImportanceConfig::default());
        // Best shot (100 frames) doesn't fit: skipped, both 30s chosen.
        assert_eq!(s.segments.len(), 2);
        assert_eq!(s.total_frames, 60);
        assert!(s.segments.iter().all(|seg| seg.shot != 0));
    }

    #[test]
    fn tiny_shots_excluded() {
        let shots = shots_of(&[4, 50]);
        let imp = importance_for(&shots, &[100.0, 0.1]);
        let cfg = SummaryConfig {
            budget_frames: 100,
            min_segment_frames: 8,
        };
        let s = select_summary(&shots, &imp, &cfg, &ImportanceConfig::default());
        assert_eq!(s.segments.len(), 1);
        assert_eq!(
            s.segments[0].shot, 1,
            "4-frame fragment excluded despite its score"
        );
    }

    #[test]
    fn empty_inputs() {
        let s = select_summary(
            &[],
            &[],
            &SummaryConfig::default(),
            &ImportanceConfig::default(),
        );
        assert!(s.segments.is_empty());
        assert_eq!(s.total_frames, 0);
        assert_eq!(s.coverage, 0.0);
    }

    #[test]
    fn segments_sorted_temporally() {
        let shots = shots_of(&[20, 20, 20, 20, 20]);
        let imp = importance_for(&shots, &[0.5, 0.1, 0.9, 0.2, 0.7]);
        let cfg = SummaryConfig {
            budget_frames: 60,
            min_segment_frames: 8,
        };
        let s = select_summary(&shots, &imp, &cfg, &ImportanceConfig::default());
        assert!(s.segments.windows(2).all(|w| w[0].start < w[1].start));
    }
}
