//! Per-frame importance scoring from the multilayer analysis.
//!
//! A frame matters to a sociologist when something *social* happens:
//! eye contact is held, the group's emotion moves, or the gaze
//! configuration reshuffles (turn-taking). The importance series is a
//! weighted sum of those three signals, box-smoothed so isolated
//! single-frame flickers don't dominate segment selection.

use dievent_analysis::lookat::LookAtMatrix;
use dievent_analysis::overall_emotion::OverallEmotion;
use serde::{Deserialize, Serialize};

/// Importance weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImportanceConfig {
    /// Weight of eye-contact activity (per contact pair).
    pub ec_weight: f64,
    /// Weight of absolute valence change per frame.
    pub emotion_weight: f64,
    /// Weight of look-at matrix changes (per changed cell).
    pub gaze_change_weight: f64,
    /// Box-smoothing window (frames); 0/1 disables.
    pub smoothing_window: usize,
}

impl Default for ImportanceConfig {
    fn default() -> Self {
        ImportanceConfig {
            ec_weight: 1.0,
            emotion_weight: 8.0,
            gaze_change_weight: 0.25,
            smoothing_window: 9,
        }
    }
}

/// Computes the importance series for a sequence of frames.
///
/// `matrices` and `emotions` must be the same length; the result has
/// that length too.
///
/// # Panics
/// Panics on length mismatch.
pub fn importance_series(
    matrices: &[LookAtMatrix],
    emotions: &[OverallEmotion],
    config: &ImportanceConfig,
) -> Vec<f64> {
    assert_eq!(matrices.len(), emotions.len(), "layer lengths must match");
    let n = matrices.len();
    let mut raw = Vec::with_capacity(n);
    for f in 0..n {
        let ec = matrices[f].eye_contacts().len() as f64;
        let emotion_delta = if f > 0 {
            (emotions[f].valence - emotions[f - 1].valence).abs()
        } else {
            0.0
        };
        let gaze_change = if f > 0 {
            changed_cells(&matrices[f - 1], &matrices[f]) as f64
        } else {
            0.0
        };
        raw.push(
            config.ec_weight * ec
                + config.emotion_weight * emotion_delta
                + config.gaze_change_weight * gaze_change,
        );
    }
    box_smooth(&raw, config.smoothing_window)
}

fn changed_cells(a: &LookAtMatrix, b: &LookAtMatrix) -> usize {
    let n = a.len().min(b.len());
    let mut count = 0;
    for g in 0..n {
        for t in 0..n {
            if g != t && a.get(g, t) != b.get(g, t) {
                count += 1;
            }
        }
    }
    count
}

fn box_smooth(series: &[f64], window: usize) -> Vec<f64> {
    if window <= 1 || series.is_empty() {
        return series.to_vec();
    }
    let half = window / 2;
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(series.len() - 1);
            series[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dievent_analysis::overall_emotion::{fuse_emotions, EmotionEstimate, OverallEmotionConfig};
    use dievent_emotion::Emotion;

    fn emo(e: Emotion) -> OverallEmotion {
        fuse_emotions(
            &[EmotionEstimate::hard(0, e, 1.0)],
            &OverallEmotionConfig {
                participants: 1,
                smoothing: 0.0,
            },
        )
    }

    fn ec(n: usize, pairs: &[(usize, usize)]) -> LookAtMatrix {
        let mut m = LookAtMatrix::zero(n);
        for &(a, b) in pairs {
            m.set(a, b, 1);
            m.set(b, a, 1);
        }
        m
    }

    #[test]
    fn quiet_frames_score_zero() {
        let mats = vec![LookAtMatrix::zero(3); 10];
        let emos = vec![emo(Emotion::Neutral); 10];
        let s = importance_series(&mats, &emos, &ImportanceConfig::default());
        assert!(s.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn ec_frames_score_higher() {
        let mut mats = vec![LookAtMatrix::zero(2); 20];
        for m in mats.iter_mut().skip(10) {
            *m = ec(2, &[(0, 1)]);
        }
        let emos = vec![emo(Emotion::Neutral); 20];
        let cfg = ImportanceConfig {
            smoothing_window: 1,
            ..ImportanceConfig::default()
        };
        let s = importance_series(&mats, &emos, &cfg);
        assert!(s[15] > s[5]);
        assert!(s[15] >= 1.0);
    }

    #[test]
    fn emotion_change_spikes() {
        let mats = vec![LookAtMatrix::zero(2); 10];
        let mut emos = vec![emo(Emotion::Neutral); 5];
        emos.extend(vec![emo(Emotion::Happy); 5]);
        let cfg = ImportanceConfig {
            smoothing_window: 1,
            ..ImportanceConfig::default()
        };
        let s = importance_series(&mats, &emos, &cfg);
        assert!(s[5] > 1.0, "transition frame spikes: {}", s[5]);
        assert!(s[6].abs() < 1e-12, "steady state back to zero");
    }

    #[test]
    fn gaze_reconfiguration_counts() {
        let mut mats = vec![ec(3, &[(0, 1)]); 5];
        mats.extend(vec![ec(3, &[(1, 2)]); 5]);
        let emos = vec![emo(Emotion::Neutral); 10];
        let cfg = ImportanceConfig {
            ec_weight: 0.0,
            emotion_weight: 0.0,
            gaze_change_weight: 1.0,
            smoothing_window: 1,
        };
        let s = importance_series(&mats, &emos, &cfg);
        assert_eq!(s[5], 4.0, "four cells flip at the transition");
        assert_eq!(s[4], 0.0);
    }

    #[test]
    fn smoothing_spreads_spikes() {
        let mats = vec![LookAtMatrix::zero(2); 11];
        let mut emos = vec![emo(Emotion::Neutral); 5];
        emos.push(emo(Emotion::Happy));
        emos.extend(vec![emo(Emotion::Neutral); 5]);
        let sharp = importance_series(
            &mats,
            &emos,
            &ImportanceConfig {
                smoothing_window: 1,
                ..ImportanceConfig::default()
            },
        );
        let smooth = importance_series(
            &mats,
            &emos,
            &ImportanceConfig {
                smoothing_window: 5,
                ..ImportanceConfig::default()
            },
        );
        assert!(smooth[5] < sharp[5], "peak reduced");
        assert!(smooth[3] > 0.0, "mass spread to neighbours");
        let total_sharp: f64 = sharp.iter().sum();
        let total_smooth: f64 = smooth.iter().sum();
        assert!(
            (total_sharp - total_smooth).abs() / total_sharp < 0.25,
            "mass roughly conserved"
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = importance_series(&[LookAtMatrix::zero(2)], &[], &ImportanceConfig::default());
    }
}
