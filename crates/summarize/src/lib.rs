//! Video summarization for the DiEvent framework.
//!
//! The paper's introduction promises sociologists "detecting and
//! highlighting the most important scenes, shots, and events inside
//! videos" and "reducing the time needed for analyzing a video …
//! or locating the relevant scenes", with "alerting functionalities
//! like the emotion state changes, and the eye contact detection"
//! (§IV). This crate turns the multilayer analysis into exactly that:
//!
//! * [`importance`] — per-frame importance from EC activity, emotion
//!   change, and gaze-configuration changes;
//! * [`highlights`] — discrete alert events (EC episode starts,
//!   emotion spikes);
//! * [`summary`] — budgeted segment selection producing a watchable
//!   summary aligned to shot boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod highlights;
pub mod importance;
pub mod summary;

pub use highlights::{detect_highlights, Highlight, HighlightConfig, HighlightKind};
pub use importance::{importance_series, ImportanceConfig};
pub use summary::{select_summary, SummaryConfig, SummarySegment, VideoSummary};
