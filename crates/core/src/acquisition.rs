//! Stage 1 — the video acquisition platform (paper §II-A).
//!
//! A [`Recording`] is the synthetic equivalent of the paper's
//! multi-camera capture session: the simulated ground truth plus a
//! lazy, deterministic per-frame renderer for every camera. Frames are
//! rendered on demand instead of being buffered — a 40-second
//! four-camera session at 640×480 would otherwise hold ~750 MB of
//! pixels — so the pipeline streams, exactly like reading from real
//! cameras.

use dievent_analysis::layers::TimeInvariantContext;
use dievent_analysis::{LookAtConfig, LookAtMatrix};
use dievent_scene::{GroundTruth, RenderConfig, Renderer, Scenario};
use dievent_video::{GrayFrame, VideoSpec, VideoStream};

/// A captured (simulated) recording session.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The scenario that was "filmed".
    pub scenario: Scenario,
    /// Ground-truth annotations, one snapshot per frame.
    pub ground_truth: GroundTruth,
    /// External time-invariant context (paper §II-D: location, date,
    /// occasion, menu, social relations) collected alongside the video.
    pub context: Option<TimeInvariantContext>,
    renderer: Renderer,
}

impl Recording {
    /// Captures a scenario with the default renderer.
    pub fn capture(scenario: Scenario) -> Self {
        Self::capture_with(scenario, RenderConfig::default())
    }

    /// Captures with custom renderer settings.
    pub fn capture_with(scenario: Scenario, render: RenderConfig) -> Self {
        let ground_truth = scenario.simulate();
        Recording {
            scenario,
            ground_truth,
            context: None,
            renderer: Renderer::new(render),
        }
    }

    /// Attaches the externally-collected time-invariant context.
    ///
    /// # Panics
    /// Panics when the context's participant count disagrees with the
    /// scenario.
    #[must_use = "`with_context` consumes and returns the source"]
    pub fn with_context(mut self, context: TimeInvariantContext) -> Self {
        assert_eq!(
            context.participants,
            self.scenario.participants.len(),
            "context participant count must match the scenario"
        );
        self.context = Some(context);
        self
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.ground_truth.len()
    }

    /// Number of cameras.
    pub fn cameras(&self) -> usize {
        self.scenario.rig.len()
    }

    /// Renders frame `frame` of camera `camera` (deterministic).
    ///
    /// # Panics
    /// Panics when either index is out of range.
    pub fn frame(&self, camera: usize, frame: usize) -> GrayFrame {
        self.renderer
            .render(&self.scenario, &self.ground_truth.snapshots[frame], camera)
    }

    /// Ground-truth look-at matrices at the configuration's attention
    /// radius, one per frame — the reference a detected sequence is
    /// validated against.
    pub fn lookat_truth(&self, config: &LookAtConfig) -> Vec<LookAtMatrix> {
        let n = self.scenario.participants.len();
        self.ground_truth
            .snapshots
            .iter()
            .map(|snap| {
                let rows = snap.lookat_matrix(config.attention_radius);
                let mut m = LookAtMatrix::zero(n);
                for (g, row) in rows.iter().enumerate() {
                    for (t, &v) in row.iter().enumerate() {
                        if g != t && v == 1 {
                            m.set(g, t, 1);
                        }
                    }
                }
                m
            })
            .collect()
    }

    /// A sequential [`VideoStream`] over one camera.
    pub fn stream(&self, camera: usize) -> CameraStream<'_> {
        assert!(camera < self.cameras(), "camera {camera} out of range");
        CameraStream {
            recording: self,
            camera,
            cursor: 0,
        }
    }
}

/// A lazy per-camera stream over a [`Recording`].
#[derive(Debug)]
pub struct CameraStream<'a> {
    recording: &'a Recording,
    camera: usize,
    cursor: usize,
}

impl VideoStream for CameraStream<'_> {
    fn spec(&self) -> VideoSpec {
        self.recording.scenario.spec
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.recording.frames().saturating_sub(self.cursor))
    }

    fn next_frame(&mut self) -> Option<GrayFrame> {
        if self.cursor >= self.recording.frames() {
            return None;
        }
        let f = self.recording.frame(self.camera, self.cursor);
        self.cursor += 1;
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_recording() -> Recording {
        Recording::capture(Scenario::two_camera_dinner(12, 3))
    }

    #[test]
    fn capture_shapes() {
        let r = small_recording();
        assert_eq!(r.frames(), 12);
        assert_eq!(r.cameras(), 2);
    }

    #[test]
    fn frames_are_deterministic() {
        let r = small_recording();
        let a = r.frame(0, 5);
        let b = r.frame(0, 5);
        assert_eq!(a.data(), b.data());
        let c = r.frame(1, 5);
        assert_ne!(a.data(), c.data(), "different cameras differ");
    }

    #[test]
    fn stream_walks_all_frames_in_order() {
        let r = small_recording();
        let mut s = r.stream(1);
        assert_eq!(s.len_hint(), Some(12));
        let mut count = 0;
        let mut last_t = -1.0;
        while let Some(f) = s.next_frame() {
            assert!(f.timestamp.as_secs() > last_t);
            last_t = f.timestamp.as_secs();
            count += 1;
        }
        assert_eq!(count, 12);
        assert_eq!(s.len_hint(), Some(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_camera_panics() {
        let r = small_recording();
        let _ = r.stream(5);
    }
}
