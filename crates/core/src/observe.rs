//! Live-observability configuration and the session vitals published
//! through the plane's heartbeat.
//!
//! [`ObserveConfig`] is embedded in
//! [`PipelineConfig`](crate::PipelineConfig); when active, opening a
//! [`PipelineSession`](crate::PipelineSession) starts a
//! [`LivePlane`](dievent_telemetry::LivePlane) that samples the
//! telemetry registry into rate windows and (optionally) serves
//! `/metrics`, `/healthz`, `/readyz`, `/snapshot`, and `/profile` on
//! an embedded HTTP endpoint.

use crate::error::DiEventError;
use dievent_pool::{PoolStats, ThreadPool};
use dievent_telemetry::Telemetry;
use parking_lot::Mutex;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Live-observability settings.
///
/// The plane runs when an HTTP address is configured *or* rate
/// sampling is explicitly enabled; by default it is fully off and a
/// session starts no extra threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserveConfig {
    /// Address for the embedded metrics endpoint (`None` = no HTTP).
    /// Port 0 binds a free port; read it back via
    /// [`PipelineSession::observer`](crate::PipelineSession::observer)
    /// → [`LivePlane::local_addr`](dievent_telemetry::LivePlane::local_addr).
    pub http_addr: Option<SocketAddr>,
    /// Interval between sampler ticks (heartbeat + rate window).
    pub sample_interval: Duration,
    /// Rate windows retained in the bounded ring.
    pub ring_len: usize,
    /// Run the sampler (and attach `rate_windows` to the final
    /// report) even without an HTTP endpoint.
    pub sample_rates: bool,
    /// Trace per-frame lineage: stamp every frame at ingest and at
    /// each stage boundary, attribute its end-to-end latency to
    /// queue-wait vs compute vs reorder-hold, and attach the
    /// stage-attribution report to the final analysis (and to
    /// `GET /lineage` when the HTTP endpoint runs). Independent of
    /// the plane: works with or without `http_addr`/`sample_rates`.
    pub trace_lineage: bool,
    /// Full [`FrameWaterfall`](dievent_telemetry::FrameWaterfall)s
    /// retained by the lineage reservoir (the slowest-frame exemplars
    /// are kept on top of this).
    pub lineage_reservoir: usize,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            http_addr: None,
            sample_interval: Duration::from_millis(250),
            ring_len: 120,
            sample_rates: false,
            trace_lineage: false,
            lineage_reservoir: 256,
        }
    }
}

impl ObserveConfig {
    /// Whether a session with this configuration starts a live plane.
    pub fn is_active(&self) -> bool {
        self.http_addr.is_some() || self.sample_rates
    }

    /// Internal-consistency check, folded into
    /// [`PipelineConfig::validate`](crate::PipelineConfig::validate).
    pub(crate) fn validate(&self) -> Result<(), DiEventError> {
        // The lineage tracer runs with or without the plane, so its
        // knob is checked regardless of `is_active()`.
        if self.trace_lineage && self.lineage_reservoir == 0 {
            return Err(DiEventError::InvalidConfig(
                "observe.lineage_reservoir must be >= 1 waterfall".into(),
            ));
        }
        if !self.is_active() {
            return Ok(());
        }
        if self.sample_interval.is_zero() {
            return Err(DiEventError::InvalidConfig(
                "observe.sample_interval must be > 0".into(),
            ));
        }
        if self.ring_len == 0 {
            return Err(DiEventError::InvalidConfig(
                "observe.ring_len must be >= 1 window".into(),
            ));
        }
        Ok(())
    }
}

// `SocketAddr` has no vendored-serde impl, so the config is lowered by
// hand: the address travels as an optional string.
impl Serialize for ObserveConfig {
    fn serialize(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert(
            "http_addr".to_owned(),
            self.http_addr.map(|a| a.to_string()).serialize(),
        );
        map.insert(
            "sample_interval".to_owned(),
            self.sample_interval.serialize(),
        );
        map.insert("ring_len".to_owned(), self.ring_len.serialize());
        map.insert("sample_rates".to_owned(), self.sample_rates.serialize());
        map.insert("trace_lineage".to_owned(), self.trace_lineage.serialize());
        map.insert(
            "lineage_reservoir".to_owned(),
            self.lineage_reservoir.serialize(),
        );
        Value::Object(map)
    }
}

impl Deserialize for ObserveConfig {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        let Value::Object(map) = value else {
            return Err(SerdeError::unexpected("ObserveConfig object", value));
        };
        let field = |name: &str| {
            map.get(name)
                .ok_or_else(|| SerdeError::custom(format!("ObserveConfig missing field {name}")))
        };
        let http_addr = match Option::<String>::deserialize(field("http_addr")?)? {
            None => None,
            Some(text) => Some(text.parse::<SocketAddr>().map_err(|e| {
                SerdeError::custom(format!("ObserveConfig.http_addr {text:?}: {e}"))
            })?),
        };
        // The lineage fields arrived after configs started round-tripping,
        // so missing keys fall back to the defaults instead of erroring.
        let defaults = ObserveConfig::default();
        let trace_lineage = match map.get("trace_lineage") {
            Some(value) => bool::deserialize(value)?,
            None => defaults.trace_lineage,
        };
        let lineage_reservoir = match map.get("lineage_reservoir") {
            Some(value) => usize::deserialize(value)?,
            None => defaults.lineage_reservoir,
        };
        Ok(ObserveConfig {
            http_addr,
            sample_interval: Duration::deserialize(field("sample_interval")?)?,
            ring_len: usize::deserialize(field("ring_len")?)?,
            sample_rates: bool::deserialize(field("sample_rates")?)?,
            trace_lineage,
            lineage_reservoir,
        })
    }
}

/// Live session state the heartbeat publishes as gauges every tick:
/// uptime, the sequencer's fusion frontier, and per-camera worker
/// liveness.
pub(crate) struct SessionVitals {
    pub(crate) opened: Instant,
    /// Lowest frame index not yet fused (the sequencer's frontier).
    pub(crate) watermark: AtomicU64,
    /// One flag per camera; a worker's drop guard clears its flag even
    /// when the worker unwinds.
    pub(crate) cameras_alive: Vec<AtomicBool>,
}

impl SessionVitals {
    pub(crate) fn new(cameras: usize) -> Self {
        SessionVitals {
            opened: Instant::now(),
            watermark: AtomicU64::new(0),
            cameras_alive: (0..cameras).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    pub(crate) fn all_cameras_alive(&self) -> bool {
        self.cameras_alive
            .iter()
            .all(|flag| flag.load(Ordering::Acquire))
    }

    /// Publishes the vitals into the telemetry registry.
    pub(crate) fn publish(&self, telemetry: &Telemetry) {
        telemetry
            .gauge("session.uptime_s")
            .set(self.opened.elapsed().as_secs_f64());
        telemetry
            .gauge("session.watermark_frame")
            .set(self.watermark.load(Ordering::Acquire) as f64);
        for (camera, alive) in self.cameras_alive.iter().enumerate() {
            let label = camera.to_string();
            let up = if alive.load(Ordering::Acquire) {
                1.0
            } else {
                0.0
            };
            telemetry
                .gauge_with("session.camera_alive", &[("camera", label.as_str())])
                .set(up);
        }
    }
}

/// Clears one camera's liveness flag when its worker exits — by any
/// path, including an unwind.
pub(crate) struct CameraAliveGuard {
    pub(crate) flag: std::sync::Arc<SessionVitals>,
    pub(crate) camera: usize,
}

impl Drop for CameraAliveGuard {
    fn drop(&mut self) {
        if let Some(alive) = self.flag.cameras_alive.get(self.camera) {
            alive.store(false, Ordering::Release);
        }
    }
}

/// Cursor over the pool's monotonic counters: the last values already
/// published into the telemetry domain. Shared between the heartbeat
/// (incremental publishing, so windowed steal/task rates exist
/// mid-run) and finish (publishing the remainder) — each increment is
/// counted exactly once.
pub(crate) struct PoolCursor(Mutex<PoolStats>);

impl PoolCursor {
    pub(crate) fn new(at_open: PoolStats) -> Self {
        PoolCursor(Mutex::new(at_open))
    }

    /// Publishes pool activity since the last call as counter deltas,
    /// plus the instantaneous pool gauges.
    pub(crate) fn publish(&self, telemetry: &Telemetry, pool: &ThreadPool) {
        let now = pool.stats();
        let mut last = self.0.lock();
        telemetry
            .counter("pool.tasks")
            .add(now.tasks.saturating_sub(last.tasks));
        telemetry
            .counter("pool.steals")
            .add(now.steals.saturating_sub(last.steals));
        telemetry
            .counter("pool.task_wait_ns")
            .add(now.queue_wait_ns.saturating_sub(last.queue_wait_ns));
        telemetry
            .counter("pool.task_run_ns")
            .add(now.run_ns.saturating_sub(last.run_ns));
        *last = now;
        drop(last);
        telemetry.gauge("pool.threads").set(pool.threads() as f64);
        telemetry
            .gauge("pool.queue_depth")
            .set(pool.queue_depth() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_config_round_trips_through_serde() {
        let config = ObserveConfig {
            http_addr: Some("127.0.0.1:9184".parse().expect("addr")),
            sample_interval: Duration::from_millis(125),
            ring_len: 16,
            sample_rates: true,
            trace_lineage: true,
            lineage_reservoir: 32,
        };
        let value = config.serialize();
        let back = ObserveConfig::deserialize(&value).expect("round trip");
        assert_eq!(back, config);

        let off = ObserveConfig::default();
        let back = ObserveConfig::deserialize(&off.serialize()).expect("round trip");
        assert_eq!(back, off);
        assert!(!off.is_active());
    }

    #[test]
    fn observe_config_defaults_lineage_fields_when_missing() {
        // Configs serialized before lineage tracing existed have no
        // lineage keys; they must still deserialize.
        let mut value = ObserveConfig::default().serialize();
        if let Value::Object(map) = &mut value {
            map.remove("trace_lineage");
            map.remove("lineage_reservoir");
        }
        let back = ObserveConfig::deserialize(&value).expect("legacy config");
        assert!(!back.trace_lineage);
        assert_eq!(
            back.lineage_reservoir,
            ObserveConfig::default().lineage_reservoir
        );
    }

    #[test]
    fn observe_config_rejects_bad_addr() {
        let mut value = ObserveConfig::default().serialize();
        if let Value::Object(map) = &mut value {
            map.insert(
                "http_addr".to_owned(),
                Some("not-an-address".to_owned()).serialize(),
            );
        }
        assert!(ObserveConfig::deserialize(&value).is_err());
    }

    #[test]
    fn validation_only_applies_when_active() {
        let mut config = ObserveConfig {
            sample_interval: Duration::ZERO,
            ring_len: 0,
            ..ObserveConfig::default()
        };
        assert!(config.validate().is_ok(), "inactive config is unchecked");
        config.sample_rates = true;
        assert!(config.validate().is_err());
        config.sample_interval = Duration::from_millis(10);
        assert!(config.validate().is_err(), "ring_len 0 still invalid");
        config.ring_len = 1;
        assert!(config.validate().is_ok());
    }

    #[test]
    fn lineage_reservoir_is_checked_even_when_plane_is_inactive() {
        let config = ObserveConfig {
            trace_lineage: true,
            lineage_reservoir: 0,
            ..ObserveConfig::default()
        };
        assert!(!config.is_active());
        assert!(config.validate().is_err());
        let config = ObserveConfig {
            trace_lineage: true,
            lineage_reservoir: 1,
            ..ObserveConfig::default()
        };
        assert!(config.validate().is_ok());
    }

    #[test]
    fn vitals_track_liveness_and_watermark() {
        let vitals = std::sync::Arc::new(SessionVitals::new(2));
        assert!(vitals.all_cameras_alive());
        vitals.watermark.store(17, Ordering::Release);
        {
            let _guard = CameraAliveGuard {
                flag: std::sync::Arc::clone(&vitals),
                camera: 1,
            };
        }
        assert!(!vitals.all_cameras_alive());
        let telemetry = Telemetry::enabled();
        vitals.publish(&telemetry);
        let report = telemetry.report();
        assert_eq!(report.gauge("session.watermark_frame"), Some(17.0));
        assert_eq!(
            report.gauge("session.camera_alive{camera=\"0\"}"),
            Some(1.0)
        );
        assert_eq!(
            report.gauge("session.camera_alive{camera=\"1\"}"),
            Some(0.0)
        );
    }
}
