//! Error type for the pipeline and streaming-session APIs.

use crate::ids::CameraId;
use std::fmt;

/// Everything that can go wrong constructing or driving the DiEvent
/// pipeline.
///
/// The analysis math itself is total — errors come from the *plumbing*:
/// invalid configuration, dead worker threads, a closed session, or the
/// metadata store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiEventError {
    /// A configuration value fails validation (see
    /// [`PipelineConfig::validate`](crate::PipelineConfig::validate)).
    InvalidConfig(String),
    /// A frame was pushed for a camera index outside the rig.
    UnknownCamera {
        /// The offending camera.
        camera: CameraId,
        /// Number of cameras the session was built with.
        cameras: usize,
    },
    /// The session no longer accepts input on this path: it was closed,
    /// or the camera's feed was detached with
    /// [`PipelineSession::take_feeds`](crate::PipelineSession::take_feeds).
    SessionClosed,
    /// A per-camera worker thread panicked (or a pusher thread driving
    /// it did). `camera` is `None` when the failing thread could not be
    /// attributed to a single camera.
    CameraThreadPanicked {
        /// The camera whose thread died, when attributable.
        camera: Option<usize>,
    },
    /// A task submitted to the shared work-stealing pool panicked
    /// (frame-chunk extraction or per-frame fusion). The session's
    /// results are discarded rather than returned partially.
    PoolWorkerPanicked,
    /// The metadata repository rejected an insert.
    Store(String),
    /// The live observability plane could not be started (typically the
    /// configured metrics address failed to bind).
    Observe(String),
}

impl fmt::Display for DiEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiEventError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DiEventError::UnknownCamera { camera, cameras } => {
                write!(f, "camera {camera} out of range (rig has {cameras})")
            }
            DiEventError::SessionClosed => write!(f, "session is closed to new input"),
            DiEventError::CameraThreadPanicked { camera: Some(c) } => {
                write!(f, "camera {c} worker thread panicked")
            }
            DiEventError::CameraThreadPanicked { camera: None } => {
                write!(f, "a camera worker thread panicked")
            }
            DiEventError::PoolWorkerPanicked => {
                write!(f, "a work-stealing pool task panicked")
            }
            DiEventError::Store(msg) => write!(f, "metadata store error: {msg}"),
            DiEventError::Observe(msg) => write!(f, "observability plane error: {msg}"),
        }
    }
}

impl std::error::Error for DiEventError {}

impl From<std::io::Error> for DiEventError {
    fn from(e: std::io::Error) -> Self {
        DiEventError::Store(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DiEventError::InvalidConfig("capacity 0".into())
            .to_string()
            .contains("capacity 0"));
        assert!(DiEventError::UnknownCamera {
            camera: CameraId::new(5),
            cameras: 2
        }
        .to_string()
        .contains('5'));
        assert!(DiEventError::CameraThreadPanicked { camera: Some(1) }
            .to_string()
            .contains("camera 1"));
    }

    #[test]
    fn io_errors_convert_to_store() {
        let io = std::io::Error::other("disk gone");
        let e: DiEventError = io.into();
        assert_eq!(e, DiEventError::Store("disk gone".into()));
    }
}
