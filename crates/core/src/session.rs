//! The streaming execution engine: incremental, backpressured frame
//! analysis.
//!
//! A [`PipelineSession`] is the live-feed counterpart of
//! [`DiEventPipeline::run`](crate::pipeline::DiEventPipeline::run):
//! instead of consuming a whole [`Recording`](crate::Recording) at
//! once, callers push per-camera frames as they arrive
//! ([`PipelineSession::push_frame`] or a detached [`CameraFeed`] per
//! producer thread), and stage-3 feature extraction runs on one worker
//! thread per camera, fed through **bounded channels with
//! backpressure** ([`BackpressureMode::Block`] never sheds load;
//! [`BackpressureMode::DropOldest`] sheds the stalest queued frame and
//! counts the drop in telemetry). A sequencer fuses per-camera outputs
//! into per-frame [`FrameAnalysis`] results, tolerating out-of-order
//! camera arrival within a configurable reorder window, and
//! [`PipelineSession::finish`] runs the remaining batch stages
//! (smoothing, summary, parsing, metadata) to produce the same
//! [`EventAnalysis`] the batch entry point returns. The batch path is
//! a thin driver over this engine, so both share one code path.

use crate::error::DiEventError;
use crate::ids::CameraId;
use crate::observe::{CameraAliveGuard, PoolCursor, SessionVitals};
use crate::pipeline::{DiEventPipeline, PipelineConfig};
use crate::report::{EventAnalysis, StageTimings};
use dievent_analysis::layers::TimeInvariantContext;
use dievent_analysis::overall_emotion::{fuse_sequence, EmotionEstimate, OverallEmotionConfig};
use dievent_analysis::{
    dominance_ranking, ec_episodes, fuse_frame, pair_statistics, smooth_matrices,
    validate_sequence, CameraObservation, FrameObservations, LookAtMatrix, LookAtScratch,
    LookAtSummary,
};
use dievent_emotion::{EmotionClassifier, ExtractArena};
use dievent_geometry::{Iso3, PinholeCamera, Vec3};
use dievent_metadata::{MetaRecord, MetadataRepository, RecordKind};
use dievent_pool::{ThreadPool, WorkerLocal};
use dievent_scene::Scenario;
use dievent_summarize::{
    detect_highlights, importance_series, select_summary, Highlight, HighlightKind,
};
use dievent_telemetry::{
    Counter, Gauge, Histogram, LineageTracer, LiveOptions, LivePlane, RateWindow, SpanGuard,
    Telemetry,
};
use dievent_video::{GrayFrame, VideoParser, VideoSpec, VideoStructure};
use dievent_vision::{
    ExtractorConfig, FaceGallery, FaceObservation, FeatureExtractor, FrameRaw, PersonId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};

/// How a camera feed behaves when its bounded input queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressureMode {
    /// Block the producer until the worker frees a slot. Nothing is
    /// ever lost; ingest rate degrades to extraction rate.
    Block,
    /// Evict the oldest queued frame to make room (load shedding for
    /// live feeds that must stay current). Every eviction increments
    /// the `session.frames_dropped{camera=..}` counter.
    DropOldest,
}

/// Streaming-engine settings, embedded in
/// [`PipelineConfig`](crate::PipelineConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Bounded per-camera input queue length (frames). Must be ≥ 1.
    pub channel_capacity: usize,
    /// Full-queue policy.
    pub backpressure: BackpressureMode,
    /// Maximum inter-camera skew, in frames, the sequencer waits out
    /// before fusing a frame without its slowest cameras.
    pub reorder_window: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            channel_capacity: 8,
            backpressure: BackpressureMode::Block,
            reorder_window: 32,
        }
    }
}

/// One camera worker's per-frame output (observations for fusion plus
/// per-person emotion evidence).
pub(crate) struct CameraFrameOutput {
    pub(crate) observations: Vec<CameraObservation>,
    /// `(person, probabilities, confidence, apparent_radius)`
    pub(crate) emotions: Vec<(usize, Vec<f64>, f64, f64)>,
}

/// One incremental result emitted by the sequencer: the fused (but not
/// yet temporally smoothed) analysis of a single frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameAnalysis {
    /// The per-camera frame index this result belongs to.
    pub frame: usize,
    /// The fused look-at matrix before temporal smoothing.
    pub raw_matrix: LookAtMatrix,
    /// Per-person emotion estimates observed this frame.
    pub emotions: Vec<EmotionEstimate>,
    /// How many cameras contributed (less than the rig size when the
    /// reorder window evicted the frame or input frames were dropped).
    pub cameras_reporting: usize,
}

/// Final inputs a caller can attach when closing a session: ground
/// truth for validation and the externally collected event context.
#[derive(Debug, Clone, Default)]
pub struct FinishOptions {
    /// Per-frame ground-truth look-at matrices (empty = no validation;
    /// the reported [`MatrixValidation`] is then all zeros).
    pub ground_truth: Vec<LookAtMatrix>,
    /// Time-invariant context carried into the metadata repository.
    pub context: Option<TimeInvariantContext>,
}

/// One unit of per-camera input, unifying the two ingest paths behind
/// a single type: a raw frame for stage-3 extraction, or pose
/// observations an external tracker already extracted. The canonical
/// ingest APIs — [`PipelineSession::push`] and
/// [`CameraFeed::push_input`] — take this; `push_frame` /
/// `push_pose_observations` are thin wrappers over it, and the
/// server's framed wire protocol decodes 1:1 onto it so the wire
/// format and the in-process API cannot drift.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionInput {
    /// A raw frame for stage-3 feature extraction.
    Frame(GrayFrame),
    /// Pre-extracted pose observations (an external tracker already ran
    /// stage 3); passed through to the sequencer untouched.
    PoseObservations(Vec<CameraObservation>),
}

impl SessionInput {
    /// Pairs the input with its per-camera frame index.
    fn into_item(self, index: usize) -> WorkItem {
        match self {
            SessionInput::Frame(frame) => WorkItem::Frame(index, frame),
            SessionInput::PoseObservations(obs) => WorkItem::Observations(index, obs),
        }
    }
}

/// Work travelling down a camera's input channel. Both kinds share the
/// channel so per-camera FIFO ordering is preserved.
enum WorkItem {
    /// A raw frame for stage-3 feature extraction.
    Frame(usize, GrayFrame),
    /// Pre-extracted pose observations (an external tracker already ran
    /// stage 3); passed through to the sequencer untouched.
    Observations(usize, Vec<CameraObservation>),
}

impl WorkItem {
    /// The per-camera frame index this item carries.
    fn index(&self) -> usize {
        match self {
            WorkItem::Frame(index, _) | WorkItem::Observations(index, _) => *index,
        }
    }
}

struct WorkerOutput {
    camera: usize,
    index: usize,
    output: CameraFrameOutput,
    monitor: Option<GrayFrame>,
}

/// The sending half of one camera's bounded input queue.
///
/// Obtained with [`PipelineSession::take_feeds`]; each feed can move to
/// its own producer thread (one per physical camera, matching the
/// paper's synchronized acquisition platform). Frames pushed through a
/// feed are indexed in push order. Dropping the feed signals
/// end-of-stream for that camera.
pub struct CameraFeed {
    camera: usize,
    next_index: usize,
    mode: BackpressureMode,
    tx: Sender<WorkItem>,
    /// Eviction handle for drop-oldest mode.
    rx: Receiver<WorkItem>,
    queue_depth: Gauge,
    dropped: Counter,
    lineage: LineageTracer,
}

impl CameraFeed {
    /// Pushes the camera's next input — the canonical ingest point. In
    /// [`BackpressureMode::Block`] this blocks while the queue is full;
    /// in [`BackpressureMode::DropOldest`] it evicts the stalest queued
    /// item instead.
    #[must_use = "an ignored Err means the input was never enqueued"]
    pub fn push_input(&mut self, input: SessionInput) -> Result<(), DiEventError> {
        let index = self.next_index;
        self.next_index += 1;
        self.enqueue(input.into_item(index))
    }

    /// Pushes the camera's next frame
    /// (= [`push_input`](Self::push_input) with [`SessionInput::Frame`]).
    #[must_use = "an ignored Err means the frame was never enqueued"]
    pub fn push(&mut self, frame: GrayFrame) -> Result<(), DiEventError> {
        self.push_input(SessionInput::Frame(frame))
    }

    /// Pushes pre-extracted pose observations for the camera's next
    /// frame, bypassing feature extraction (for deployments where an
    /// external tracker supplies head/gaze directly; =
    /// [`push_input`](Self::push_input) with
    /// [`SessionInput::PoseObservations`]).
    #[must_use = "an ignored Err means the observations were never enqueued"]
    pub fn push_pose_observations(
        &mut self,
        observations: Vec<CameraObservation>,
    ) -> Result<(), DiEventError> {
        self.push_input(SessionInput::PoseObservations(observations))
    }

    /// The camera this feed belongs to.
    pub fn camera(&self) -> CameraId {
        CameraId::new(self.camera)
    }

    /// Frames pushed so far.
    pub fn frames_pushed(&self) -> usize {
        self.next_index
    }

    fn enqueue(&mut self, item: WorkItem) -> Result<(), DiEventError> {
        let camera = self.camera;
        // The ingest stamp marks the instant the producer offers the
        // frame, so time spent blocked on a full queue is attributed
        // to queue-wait.
        self.lineage.ingest(camera, item.index() as u64);
        match self.mode {
            BackpressureMode::Block => {
                self.tx
                    .send(item)
                    .map_err(|_| DiEventError::CameraThreadPanicked {
                        camera: Some(camera),
                    })?
            }
            BackpressureMode::DropOldest => {
                let mut item = item;
                loop {
                    match self.tx.try_send(item) {
                        Ok(()) => break,
                        Err(TrySendError::Full(back)) => {
                            item = back;
                            // The worker may have raced us to the slot;
                            // only count an actual eviction.
                            if let Ok(evicted) = self.rx.try_recv() {
                                self.dropped.incr();
                                self.lineage.discard(camera, evicted.index() as u64);
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            return Err(DiEventError::CameraThreadPanicked {
                                camera: Some(camera),
                            });
                        }
                    }
                }
            }
        }
        self.queue_depth.set(self.tx.len() as f64);
        Ok(())
    }
}

/// The reorder-and-fuse stage: collects per-camera frame outputs,
/// fuses each frame once complete (or once the reorder window expires),
/// and accumulates the per-frame series the final analysis needs.
struct Sequencer {
    cameras: usize,
    participants: usize,
    reorder_window: usize,
    camera_poses: Vec<Iso3>,
    config: PipelineConfig,
    /// Frame index → per-camera slots awaiting fusion.
    pending: BTreeMap<usize, Vec<Option<CameraFrameOutput>>>,
    /// Highest frame index seen from any camera.
    high_water: usize,
    /// Lowest frame index not yet fused. Arrivals below it raced past
    /// the reorder window and are discarded (fusing them again would
    /// emit a frame twice, out of order).
    frontier: usize,
    /// Accumulated per-fused-frame series, ascending frame order.
    frame_numbers: Vec<usize>,
    cameras_reporting: Vec<usize>,
    raw_matrices: Vec<LookAtMatrix>,
    emotion_frames: Vec<Vec<EmotionEstimate>>,
    /// Camera-0 monitor frames for video composition analysis.
    monitor: BTreeMap<usize, GrayFrame>,
    /// Stage-4 fan-out pool (`None` when `frame_parallel` is off).
    pool: Option<ThreadPool>,
    /// Set when a pool task died mid-fusion; surfaced as
    /// [`DiEventError::PoolWorkerPanicked`] at finish.
    pool_panicked: bool,
    /// Mirror of `frontier` the observability heartbeat reads as the
    /// `session.watermark_frame` gauge.
    vitals: Arc<SessionVitals>,
    lineage: LineageTracer,
    occupancy: Gauge,
    evictions: Counter,
    late: Counter,
    fused: Counter,
    fusion_seconds: Histogram,
    lookat_tests: Counter,
}

/// Minimum backlog of ready frames before stage-4 fusion fans out
/// across the pool: below this, the join overhead outweighs the work
/// (streaming sessions typically fuse one frame at a time; the batch
/// path funnels the whole recording through one `fuse_ready(true)`).
const PARALLEL_FUSE_MIN: usize = 8;

impl Sequencer {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cameras: usize,
        participants: usize,
        camera_poses: Vec<Iso3>,
        config: PipelineConfig,
        pool: Option<ThreadPool>,
        vitals: Arc<SessionVitals>,
        lineage: LineageTracer,
        telemetry: &Telemetry,
    ) -> Self {
        Sequencer {
            pool,
            pool_panicked: false,
            vitals,
            lineage,
            cameras,
            participants,
            reorder_window: config.streaming.reorder_window,
            camera_poses,
            config,
            pending: BTreeMap::new(),
            high_water: 0,
            frontier: 0,
            frame_numbers: Vec::new(),
            cameras_reporting: Vec::new(),
            raw_matrices: Vec::new(),
            emotion_frames: Vec::new(),
            monitor: BTreeMap::new(),
            occupancy: telemetry.gauge("session.reorder_occupancy"),
            evictions: telemetry.counter("session.reorder_evictions"),
            late: telemetry.counter("session.late_arrivals"),
            fused: telemetry.counter("session.frames_fused"),
            fusion_seconds: telemetry.histogram("fusion_seconds"),
            lookat_tests: telemetry.counter("lookat_tests"),
        }
    }

    fn insert(&mut self, out: WorkerOutput) {
        if let Some(frame) = out.monitor {
            self.monitor.insert(out.index, frame);
        }
        if out.index < self.frontier {
            // The frame was already fused without this camera.
            self.late.incr();
            return;
        }
        self.high_water = self.high_water.max(out.index);
        let slots = self
            .pending
            .entry(out.index)
            .or_insert_with(|| (0..self.cameras).map(|_| None).collect());
        slots[out.camera] = Some(out.output);
        self.occupancy.set(self.pending.len() as f64);
    }

    /// Fuses every frame that is complete — or, when `force` is set or
    /// the leader camera has raced more than `reorder_window` frames
    /// ahead, fuses the oldest pending frame with whichever cameras
    /// reported. Results always accumulate in ascending frame order.
    ///
    /// The per-frame math ([`fuse_one`](Self::fuse_one)) carries no
    /// cross-frame state, so when enough frames are ready at once (the
    /// batch path fuses the entire recording in one call at finish)
    /// they fan out across the pool; results are collected into
    /// positional slots, which makes the parallel and sequential
    /// orders bit-identical.
    fn fuse_ready(&mut self, force: bool) {
        let mut ready: Vec<(usize, Vec<Option<CameraFrameOutput>>, usize)> = Vec::new();
        while let Some(entry) = self.pending.first_entry() {
            let frame = *entry.key();
            let arrived = entry.get().iter().filter(|s| s.is_some()).count();
            let complete = arrived == self.cameras;
            let overdue = self.high_water.saturating_sub(frame) > self.reorder_window;
            if !(complete || overdue || force) {
                break;
            }
            let slots = entry.remove();
            self.frontier = frame + 1;
            if !complete {
                self.evictions.incr();
            }
            ready.push((frame, slots, arrived));
        }
        self.vitals
            .watermark
            .store(self.frontier as u64, Ordering::Release);
        self.occupancy.set(self.pending.len() as f64);
        if ready.is_empty() {
            return;
        }

        // Each frame's fusion is bracketed with lineage stamps (noops
        // when tracing is off) so the waterfall records the fuse span
        // even when frames fan out across the pool.
        type Fused = (f64, (LookAtMatrix, Vec<EmotionEstimate>), f64);
        let fused: Vec<Fused> = match &self.pool {
            Some(pool) if ready.len() >= PARALLEL_FUSE_MIN => {
                let chunk = ready.len().div_ceil(pool.threads().max(1) * 4).max(1);
                let result = pool.parallel_chunk_map(&ready, chunk, |_, chunk_items| {
                    // One look-at scratch per chunk, reused across its
                    // frames.
                    let mut scratch = LookAtScratch::new();
                    chunk_items
                        .iter()
                        .map(|(_, slots, _)| {
                            let t0 = self.lineage.now_s();
                            let out = self.fuse_one(slots, &mut scratch);
                            (t0, out, self.lineage.now_s())
                        })
                        .collect()
                });
                match result {
                    Ok(fused) => fused,
                    Err(_) => {
                        self.pool_panicked = true;
                        return;
                    }
                }
            }
            _ => {
                let mut scratch = LookAtScratch::new();
                ready
                    .iter()
                    .map(|(_, slots, _)| {
                        let t0 = self.lineage.now_s();
                        let out = self.fuse_one(slots, &mut scratch);
                        (t0, out, self.lineage.now_s())
                    })
                    .collect()
            }
        };

        let n = self.participants;
        for ((frame, _, arrived), (fuse_start, (matrix, emotions), fuse_end)) in
            ready.into_iter().zip(fused)
        {
            // Every ordered pair is geometrically tested per frame.
            self.lookat_tests.add((n * n.saturating_sub(1)) as u64);
            self.lineage.fused(frame as u64, fuse_start, fuse_end);
            self.frame_numbers.push(frame);
            self.cameras_reporting.push(arrived);
            self.raw_matrices.push(matrix);
            self.emotion_frames.push(emotions);
            self.fused.incr();
        }
        // Anything still in flight below the frontier can never fuse
        // (late arrivals are discarded on insert); retire it so the
        // tracer's in-flight map stays bounded.
        self.lineage.retire_below(self.frontier as u64);
    }

    /// Identical math to the batch stage-4 inner loop: fuse the
    /// per-camera observations, derive the look-at matrix, and keep the
    /// best-resolved emotion estimate per participant. Pure with
    /// respect to the sequencer (takes `&self`), so frames may fuse
    /// concurrently.
    fn fuse_one(
        &self,
        slots: &[Option<CameraFrameOutput>],
        scratch: &mut LookAtScratch,
    ) -> (LookAtMatrix, Vec<EmotionEstimate>) {
        let n = self.participants;
        let mut frame_obs = FrameObservations::default();
        for (c, slot) in slots.iter().enumerate() {
            frame_obs.cameras.push((
                self.camera_poses[c],
                slot.as_ref()
                    .map_or_else(Vec::new, |o| o.observations.clone()),
            ));
        }
        let matrix = self.fusion_seconds.time(|| {
            let poses = fuse_frame(&frame_obs, &self.config.fusion);
            LookAtMatrix::from_poses_with(n, &poses, &self.config.lookat, scratch)
        });

        // Per person, keep the emotion estimate from the camera with
        // the largest apparent face (closest, best-resolved view).
        let mut best: Vec<Option<(Vec<f64>, f64, f64)>> = vec![None; n];
        for slot in slots {
            let Some(output) = slot else { continue };
            for (person, probs, conf, radius) in &output.emotions {
                if *person >= n {
                    continue;
                }
                if best[*person].as_ref().is_none_or(|(_, _, r)| radius > r) {
                    best[*person] = Some((probs.clone(), *conf, *radius));
                }
            }
        }
        let emotions: Vec<EmotionEstimate> = best
            .into_iter()
            .enumerate()
            .filter_map(|(person, b)| {
                b.map(|(probabilities, confidence, _)| EmotionEstimate {
                    person,
                    probabilities,
                    confidence,
                })
            })
            .collect();
        (matrix, emotions)
    }
}

/// Per-camera state shared between the threaded worker and the inline
/// (single-threaded) execution mode.
/// Classifies one frame's identified faces in a single batched pass
/// through this worker's [`ExtractArena`], returning the session's
/// `(person, probabilities, confidence, radius)` tuples in face order.
///
/// Bit-identical per face to the scalar `classify_with` path (the
/// batched kernels keep the scalar operation order per sample — see
/// `dievent-emotion`), so both the inline and the pool-fanned Phase-A
/// paths route through here without affecting determinism.
fn classify_identified(
    clf: &EmotionClassifier,
    faces: &[(usize, f64, &GrayFrame)],
    arena: &WorkerLocal<ExtractArena>,
) -> Vec<(usize, Vec<f64>, f64, f64)> {
    if faces.is_empty() {
        return Vec::new();
    }
    arena.with(|a| {
        let patches: Vec<&GrayFrame> = faces.iter().map(|&(_, _, patch)| patch).collect();
        let preds = clf.classify_batch_with(&patches, a);
        faces
            .iter()
            .enumerate()
            .map(|(i, &(person, radius, _))| {
                let (_, confidence) = preds.top(i);
                (person, preds.probabilities(i).to_vec(), confidence, radius)
            })
            .collect()
    })
}

/// The pure Phase-A body for one contiguous frame chunk: analyze,
/// then batch-classify every identified face, on whatever pool worker
/// picked the task up. Opens the `camera.extract_chunk` span —
/// `lint.toml` names this function under `telemetry_coverage`, so a
/// refactor that drops the span fails the lint, not just the dashboards.
#[allow(clippy::too_many_arguments)]
fn extract_chunk(
    telemetry: &Telemetry,
    parent_span: Option<u64>,
    camera_index: usize,
    monitor_on: bool,
    lineage: &LineageTracer,
    extractor: Option<&FeatureExtractor>,
    classifier: Option<&EmotionClassifier>,
    arena: &WorkerLocal<ExtractArena>,
    offset: usize,
    chunk_items: &[WorkItem],
) -> Vec<Option<Analyzed>> {
    let mut span = telemetry.span_under("camera.extract_chunk", parent_span);
    span.set("camera", camera_index);
    span.set("offset", offset);
    span.set("frames", chunk_items.len());
    chunk_items
        .iter()
        .map(|item| {
            let WorkItem::Frame(index, frame) = item else {
                return None;
            };
            // Compute starts here, on the pool task; the matching end
            // stamp lands in `integrate_analyzed`, covering the
            // stateful tail of extraction too.
            lineage.extract_start(camera_index, *index as u64);
            let extractor = extractor?;
            let monitor = monitor_on.then(|| frame.downsample2().downsample2());
            let raw = extractor.analyze(frame);
            let emotions = match classifier {
                Some(clf) => {
                    let faces: Vec<(usize, f64, &GrayFrame)> = raw
                        .identified_faces()
                        .map(|(person, radius, patch)| (person.0, radius, patch))
                        .collect();
                    classify_identified(clf, &faces, arena)
                }
                None => Vec::new(),
            };
            Some(Analyzed {
                raw,
                monitor,
                emotions,
            })
        })
        .collect()
}

struct CameraStage {
    camera_index: usize,
    camera: PinholeCamera,
    config: ExtractorConfig,
    seats: Arc<Vec<(usize, Vec3)>>,
    classifier: Arc<Option<EmotionClassifier>>,
    telemetry: Telemetry,
    monitor: bool,
    extractor: Option<FeatureExtractor>,
    dropped: Counter,
    classified: Counter,
    lineage: LineageTracer,
    frames: usize,
    /// Per-pool-worker extraction arenas: each worker that picks up one
    /// of this camera's Phase-A chunks reuses its own LBP/MLP buffers
    /// across every frame it processes, so the steady-state classify
    /// path allocates nothing inside the kernels.
    arena: WorkerLocal<ExtractArena>,
}

impl CameraStage {
    #[allow(clippy::too_many_arguments)]
    fn new(
        camera_index: usize,
        camera: PinholeCamera,
        config: ExtractorConfig,
        seats: Arc<Vec<(usize, Vec3)>>,
        classifier: Arc<Option<EmotionClassifier>>,
        telemetry: Telemetry,
        monitor: bool,
        lineage: LineageTracer,
    ) -> Self {
        let label = camera_index.to_string();
        let labels = &[("camera", label.as_str())][..];
        CameraStage {
            dropped: telemetry.counter_with("detections_dropped", labels),
            classified: telemetry.counter_with("emotion_classifications", labels),
            camera_index,
            camera,
            config,
            seats,
            classifier,
            telemetry,
            monitor,
            extractor: None,
            lineage,
            frames: 0,
            arena: WorkerLocal::new(),
        }
    }

    /// Enrolls participants from the camera's first frame, associating
    /// detections to seats by projected position (the paper's §II-D-1
    /// external seating plan), then returns the ready extractor.
    fn extractor_for(&mut self, first_frame: &GrayFrame) -> &mut FeatureExtractor {
        let extractor = if let Some(extractor) = self.extractor.take() {
            extractor
        } else {
            let mut extractor =
                FeatureExtractor::new(self.config, self.camera, FaceGallery::default());
            extractor.attach_telemetry(&self.telemetry, &self.camera_index.to_string());
            let mut probe = FeatureExtractor::new(self.config, self.camera, FaceGallery::default());
            let obs = probe.process(first_frame);
            for o in obs {
                let mut best: Option<(usize, f64)> = None;
                for &(person, seat_head) in self.seats.iter() {
                    if let Some(proj) = self.camera.project(seat_head) {
                        let d =
                            (proj.pixel.x - o.detection.cx).hypot(proj.pixel.y - o.detection.cy);
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((person, d));
                        }
                    }
                }
                if let (Some((person, d)), Some(patch)) = (best, o.patch.as_ref()) {
                    // Only trust unambiguous associations.
                    if d < o.detection.radius * 2.0 {
                        extractor
                            .gallery_mut()
                            .enroll(PersonId(person), &o.detection, patch);
                    }
                }
            }
            extractor
        };
        self.extractor.insert(extractor)
    }

    /// Runs stage-3 extraction on one frame (or passes observations
    /// through), producing the sequencer's input.
    fn process(&mut self, item: WorkItem) -> WorkerOutput {
        let frame = item.index() as u64;
        self.lineage.extract_start(self.camera_index, frame);
        let output = self.process_inner(item);
        self.lineage.extract_end(self.camera_index, frame);
        output
    }

    fn process_inner(&mut self, item: WorkItem) -> WorkerOutput {
        match item {
            WorkItem::Observations(index, observations) => WorkerOutput {
                camera: self.camera_index,
                index,
                output: CameraFrameOutput {
                    observations,
                    emotions: Vec::new(),
                },
                monitor: None,
            },
            WorkItem::Frame(index, frame) => {
                let monitor = self
                    .monitor
                    // Quarter-resolution monitor stream for parsing.
                    .then(|| frame.downsample2().downsample2());
                let classifier = Arc::clone(&self.classifier);
                let (obs, camera) = {
                    let extractor = self.extractor_for(&frame);
                    let obs = extractor.process(&frame);
                    (obs, *extractor.camera())
                };
                let observations = self.assemble(&camera, &obs);
                let emotions = match classifier.as_ref() {
                    Some(clf) => {
                        let faces: Vec<(usize, f64, &GrayFrame)> = obs
                            .iter()
                            .filter_map(|o| {
                                let (person, _dist) = o.identity?;
                                let patch = o.patch.as_ref()?;
                                Some((person.0, o.detection.radius, patch))
                            })
                            .collect();
                        let emotions = classify_identified(clf, &faces, &self.arena);
                        self.classified.add(emotions.len() as u64);
                        emotions
                    }
                    None => Vec::new(),
                };
                self.frames += 1;
                WorkerOutput {
                    camera: self.camera_index,
                    index,
                    output: CameraFrameOutput {
                        observations,
                        emotions,
                    },
                    monitor,
                }
            }
        }
    }

    /// Batch counterpart of [`process`](Self::process): the pure
    /// per-frame phase (detection, landmarks, pose, recognition,
    /// emotion classification) fans frame chunks across the pool, then
    /// the stateful phase (tracker, pose carry-forward) integrates the
    /// results sequentially in item order. Bit-identical to calling
    /// `process` once per item, because the pure phase carries no
    /// cross-frame state and the stateful phase runs in the exact same
    /// order either way.
    fn process_batch(
        &mut self,
        pool: &ThreadPool,
        items: Vec<WorkItem>,
        parent_span: Option<u64>,
    ) -> Result<Vec<WorkerOutput>, DiEventError> {
        // Phase 0 (sequential): the batch's first raw frame runs the
        // enrollment probe and builds the extractor, exactly as the
        // one-frame path would on its first frame.
        if self.extractor.is_none() {
            if let Some(WorkItem::Frame(_, frame)) =
                items.iter().find(|i| matches!(i, WorkItem::Frame(..)))
            {
                self.extractor_for(frame);
            }
        }

        // Phase A (parallel, pure): analyze + classify, one task per
        // contiguous frame chunk so scratch buffers are reused across
        // a chunk's frames instead of reallocated per frame.
        let chunk = items.len().div_ceil(pool.threads().max(1) * 2).max(1);
        let extractor = self.extractor.as_ref();
        let classifier = Arc::clone(&self.classifier);
        let telemetry = self.telemetry.clone();
        let lineage = self.lineage.clone();
        let camera_index = self.camera_index;
        let monitor_on = self.monitor;
        let arena = &self.arena;
        let analyzed: Vec<Option<Analyzed>> = pool
            .parallel_chunk_map(&items, chunk, |offset, chunk_items| {
                extract_chunk(
                    &telemetry,
                    parent_span,
                    camera_index,
                    monitor_on,
                    &lineage,
                    extractor,
                    classifier.as_ref().as_ref(),
                    arena,
                    offset,
                    chunk_items,
                )
            })
            .map_err(|_| DiEventError::PoolWorkerPanicked)?;

        // Phase B (sequential, in item order): the tracker and the
        // pose-carry cache advance exactly as the one-frame path would.
        let mut outputs = Vec::with_capacity(items.len());
        for (item, analyzed) in items.into_iter().zip(analyzed) {
            match (item, analyzed) {
                (WorkItem::Observations(index, observations), _) => {
                    // Pass-through: extraction is a zero-width span.
                    self.lineage.extract_start(self.camera_index, index as u64);
                    self.lineage.extract_end(self.camera_index, index as u64);
                    outputs.push(WorkerOutput {
                        camera: self.camera_index,
                        index,
                        output: CameraFrameOutput {
                            observations,
                            emotions: Vec::new(),
                        },
                        monitor: None,
                    })
                }
                (WorkItem::Frame(index, _), Some(done)) => {
                    outputs.push(self.integrate_analyzed(index, done));
                }
                // Unreachable (phase 0 guarantees an extractor whenever
                // the batch holds a frame); degrade to the slow path.
                (item @ WorkItem::Frame(..), None) => outputs.push(self.process(item)),
            }
        }
        Ok(outputs)
    }

    /// Stateful phase for one [`Analyzed`] frame: integrates the pure
    /// results through the tracker and assembles the sequencer's input.
    fn integrate_analyzed(&mut self, index: usize, done: Analyzed) -> WorkerOutput {
        let (obs, camera) = match self.extractor.as_mut() {
            Some(extractor) => (extractor.integrate(done.raw), *extractor.camera()),
            // Unreachable: phase A only analyzes once the extractor
            // exists.
            None => (Vec::new(), self.camera),
        };
        let observations = self.assemble(&camera, &obs);
        self.classified.add(done.emotions.len() as u64);
        self.frames += 1;
        self.lineage.extract_end(self.camera_index, index as u64);
        WorkerOutput {
            camera: self.camera_index,
            index,
            output: CameraFrameOutput {
                observations,
                emotions: done.emotions,
            },
            monitor: done.monitor,
        }
    }

    /// Turns one frame's integrated face observations into fusion
    /// inputs: a full pose when available, otherwise a position-only
    /// sighting reconstructed from the detection's apparent radius.
    fn assemble(&self, camera: &PinholeCamera, obs: &[FaceObservation]) -> Vec<CameraObservation> {
        let head_radius_m = self.config.pose.head_radius_m;
        let mut observations = Vec::new();
        for o in obs {
            let Some((person, _dist)) = o.identity else {
                // An unattributed detection carries no usable gaze.
                self.dropped.incr();
                continue;
            };
            if let Some(pose) = &o.pose {
                observations.push(CameraObservation {
                    person: person.0,
                    head_cam: pose.head_cam,
                    gaze_cam: Some(pose.gaze_cam),
                    weight: 1.0,
                });
            } else {
                // Position-only sighting (face turned away):
                // reconstruct camera-frame position from the detection
                // via the depth-from-radius model.
                let k = &camera.intrinsics;
                let z = k.fx * head_radius_m / o.detection.radius;
                observations.push(CameraObservation {
                    person: person.0,
                    head_cam: Vec3::new(
                        (o.detection.cx - k.cx) / k.fx * z,
                        (o.detection.cy - k.cy) / k.fy * z,
                        z,
                    ),
                    gaze_cam: None,
                    weight: 0.5,
                });
            }
        }
        observations
    }
}

/// One frame's pure-phase result inside
/// [`CameraStage::process_batch`]: everything computed off-thread,
/// ready for sequential integration.
struct Analyzed {
    raw: FrameRaw,
    monitor: Option<GrayFrame>,
    /// `(person, probabilities, confidence, apparent_radius)`, in face
    /// order — identical to what the one-frame path classifies.
    emotions: Vec<(usize, Vec<f64>, f64, f64)>,
}

/// Worker poll interval: how often a blocked worker re-checks the
/// shutdown flag.
const WORKER_POLL: Duration = Duration::from_millis(50);

fn camera_worker(
    mut stage: CameraStage,
    stage_span: Option<u64>,
    pool: Option<ThreadPool>,
    rx: Receiver<WorkItem>,
    out: Sender<WorkerOutput>,
    shutdown: Arc<AtomicBool>,
    pool_panic: Arc<AtomicBool>,
) {
    let telemetry = stage.telemetry.clone();
    let mut span = telemetry.span_under("camera.extract", stage_span);
    span.set("camera", stage.camera_index);
    let chunk_parent = span.id();
    loop {
        match rx.recv_timeout(WORKER_POLL) {
            Ok(item) => {
                // Opportunistically batch whatever else is already
                // queued: with the pool available, a backlog fans out
                // as frame chunks instead of draining one by one.
                let mut batch = vec![item];
                if pool.is_some() {
                    while let Ok(next) = rx.try_recv() {
                        batch.push(next);
                    }
                }
                if !run_batch(
                    &mut stage,
                    pool.as_ref(),
                    batch,
                    chunk_parent,
                    &out,
                    &pool_panic,
                ) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    // Finish was requested while a producer still holds
                    // a feed: drain what is queued, then exit.
                    let mut batch = Vec::new();
                    while let Ok(item) = rx.try_recv() {
                        batch.push(item);
                    }
                    if !batch.is_empty() {
                        run_batch(
                            &mut stage,
                            pool.as_ref(),
                            batch,
                            chunk_parent,
                            &out,
                            &pool_panic,
                        );
                    }
                    break;
                }
            }
        }
    }
    span.set("frames", stage.frames);
}

/// Processes one batch — through the pool when it is available and the
/// batch holds more than one item, per-item otherwise — and forwards
/// the outputs. Returns `false` when the session hung up or a pool
/// task panicked (recorded in `pool_panic` for finish to surface).
fn run_batch(
    stage: &mut CameraStage,
    pool: Option<&ThreadPool>,
    batch: Vec<WorkItem>,
    chunk_parent: Option<u64>,
    out: &Sender<WorkerOutput>,
    pool_panic: &AtomicBool,
) -> bool {
    let outputs = match pool {
        Some(pool) if batch.len() > 1 => match stage.process_batch(pool, batch, chunk_parent) {
            Ok(outputs) => outputs,
            Err(_) => {
                pool_panic.store(true, Ordering::SeqCst);
                return false;
            }
        },
        _ => batch.into_iter().map(|item| stage.process(item)).collect(),
    };
    for output in outputs {
        // A send failure means the session is gone; processing further
        // frames would be pointless.
        if out.send(output).is_err() {
            return false;
        }
    }
    true
}

enum ExecutionMode {
    /// One worker thread per camera, fed by bounded channels.
    Threaded {
        workers: Vec<std::thread::JoinHandle<()>>,
        out_rx: Receiver<WorkerOutput>,
    },
    /// Everything on the caller's thread (`parallel_cameras: false` or
    /// a single camera): deterministic and thread-free.
    Inline {
        stages: Vec<CameraStage>,
        spans: Vec<SpanGuard>,
    },
}

/// A live streaming analysis session. See the [module](self) docs.
pub struct PipelineSession {
    config: PipelineConfig,
    telemetry: Telemetry,
    scenario_name: String,
    spec: VideoSpec,
    participants: usize,
    cameras: usize,
    fps: f64,
    mode: ExecutionMode,
    /// Internal feeds for [`push_frame`](Self::push_frame); `None` once
    /// taken or closed. Empty in inline mode.
    feeds: Vec<Option<CameraFeed>>,
    /// Per-camera next frame index for the inline path.
    inline_next: Vec<usize>,
    sequencer: Sequencer,
    /// Cursor into the sequencer's accumulators for [`poll`](Self::poll).
    emitted: usize,
    shutdown: Arc<AtomicBool>,
    /// The frame-parallel fan-out pool: the shared global pool by
    /// default (`pool_threads: 0`), a private one otherwise, `None`
    /// when `frame_parallel` is off.
    pool: Option<ThreadPool>,
    /// Cursor over the pool's monotonic counters: the heartbeat
    /// publishes incremental deltas mid-run, finish publishes the
    /// remainder — each increment counted exactly once.
    pool_cursor: Arc<PoolCursor>,
    /// Set by a camera worker whose pool batch panicked.
    pool_panic: Arc<AtomicBool>,
    /// Uptime / watermark / per-camera liveness, published as gauges by
    /// the plane's heartbeat (and once at finish).
    vitals: Arc<SessionVitals>,
    /// Per-frame lineage tracer (a no-op handle unless
    /// `config.observe.trace_lineage` is set). Clones live in every
    /// feed, camera stage, and the sequencer; this handle builds the
    /// final report at finish.
    lineage: LineageTracer,
    /// The live observability plane (`None` when `config.observe` is
    /// inactive). Taken before `finish_with` destructures the session;
    /// its own `Drop` joins the plane threads if the session is simply
    /// dropped.
    plane: Option<LivePlane>,
    run_span: SpanGuard,
    extraction_span: Option<SpanGuard>,
}

impl DiEventPipeline {
    /// Opens a streaming session over the given scenario's rig.
    ///
    /// Validates the configuration (including the streaming settings)
    /// and the scenario shape: at least one camera, a positive frame
    /// rate. With `parallel_cameras` set and more than one camera, one
    /// extraction worker thread is spawned per camera; otherwise the
    /// session runs inline on the calling thread.
    #[must_use = "dropping the result discards the opened session or its error"]
    pub fn session(&self, scenario: &Scenario) -> Result<PipelineSession, DiEventError> {
        PipelineSession::open(self, scenario)
    }
}

impl PipelineSession {
    fn open(pipeline: &DiEventPipeline, scenario: &Scenario) -> Result<Self, DiEventError> {
        let config = *pipeline.config();
        config.validate()?;
        let cameras = scenario.rig.len();
        if cameras == 0 {
            return Err(DiEventError::InvalidConfig(
                "scenario has no cameras".into(),
            ));
        }
        let fps = scenario.spec.fps;
        if fps.is_nan() || fps <= 0.0 {
            return Err(DiEventError::InvalidConfig(format!(
                "frame rate must be > 0, got {fps}"
            )));
        }
        let participants = scenario.participants.len();
        let telemetry = pipeline.telemetry().clone();
        telemetry.gauge("participants").set(participants as f64);
        telemetry.gauge("cameras").set(cameras as f64);

        let mut run_span = telemetry.span("pipeline.run");
        run_span.set("cameras", cameras);
        run_span.set("participants", participants);
        let extraction_span = telemetry.span("stage.extraction");
        let stage_id = extraction_span.id();

        let seats: Arc<Vec<(usize, Vec3)>> = Arc::new(
            scenario
                .participants
                .iter()
                .map(|p| (p.index, p.seat_head))
                .collect(),
        );
        let classifier = Arc::new(pipeline.classifier().cloned());
        let camera_poses: Vec<Iso3> = scenario.rig.cameras.iter().map(|c| c.pose).collect();
        // One pool shared by every camera worker (and stage-4 fusion):
        // N cameras fanning frame chunks produce tasks for a single
        // set of workers, never `cameras × threads` threads.
        let pool = config.frame_parallel.then(|| {
            if config.pool_threads == 0 {
                ThreadPool::global().clone()
            } else {
                ThreadPool::new(config.pool_threads)
            }
        });
        let pool_cursor = Arc::new(PoolCursor::new(
            pool.as_ref().map(ThreadPool::stats).unwrap_or_default(),
        ));
        let pool_panic = Arc::new(AtomicBool::new(false));
        let vitals = Arc::new(SessionVitals::new(cameras));
        let lineage = if config.observe.trace_lineage {
            LineageTracer::enabled(&telemetry, cameras, config.observe.lineage_reservoir)
        } else {
            LineageTracer::disabled()
        };
        let sequencer = Sequencer::new(
            cameras,
            participants,
            camera_poses,
            config,
            pool.clone(),
            Arc::clone(&vitals),
            lineage.clone(),
            &telemetry,
        );
        let shutdown = Arc::new(AtomicBool::new(false));

        let stage_for = |c: usize| {
            CameraStage::new(
                c,
                scenario.rig.cameras[c],
                config.extractor,
                Arc::clone(&seats),
                Arc::clone(&classifier),
                telemetry.clone(),
                c == 0 && config.parse_video,
                lineage.clone(),
            )
        };

        let threaded = config.parallel_cameras && cameras > 1;
        let (mode, feeds) = if threaded {
            let (out_tx, out_rx) = channel::unbounded();
            let mut workers = Vec::with_capacity(cameras);
            let mut feeds = Vec::with_capacity(cameras);
            for c in 0..cameras {
                let (tx, rx) = channel::bounded(config.streaming.channel_capacity);
                let label = c.to_string();
                let labels = &[("camera", label.as_str())][..];
                feeds.push(Some(CameraFeed {
                    camera: c,
                    next_index: 0,
                    mode: config.streaming.backpressure,
                    tx,
                    rx: rx.clone(),
                    queue_depth: telemetry.gauge_with("session.queue_depth", labels),
                    dropped: telemetry.counter_with("session.frames_dropped", labels),
                    lineage: lineage.clone(),
                }));
                let stage = stage_for(c);
                let out = out_tx.clone();
                let flag = Arc::clone(&shutdown);
                let worker_pool = pool.clone();
                let panic_flag = Arc::clone(&pool_panic);
                let alive = CameraAliveGuard {
                    flag: Arc::clone(&vitals),
                    camera: c,
                };
                workers.push(std::thread::spawn(move || {
                    // The guard clears this camera's liveness flag on
                    // any exit path, including an unwind.
                    let _alive = alive;
                    camera_worker(stage, stage_id, worker_pool, rx, out, flag, panic_flag)
                }));
            }
            // Only workers hold output senders: once they all exit the
            // channel disconnects and drains cleanly.
            drop(out_tx);
            (ExecutionMode::Threaded { workers, out_rx }, feeds)
        } else {
            let stages: Vec<CameraStage> = (0..cameras).map(stage_for).collect();
            let spans = (0..cameras)
                .map(|c| {
                    let mut span = telemetry.span_under("camera.extract", stage_id);
                    span.set("camera", c);
                    span
                })
                .collect();
            (ExecutionMode::Inline { stages, spans }, Vec::new())
        };

        // Start the observability plane last, once the workers it
        // reports on exist. The heartbeat runs on the sampler thread
        // before every rate window: vitals gauges, incremental pool
        // deltas, and a readiness downgrade if a camera worker died or
        // a pool task panicked.
        let plane = if config.observe.is_active() {
            let hb_telemetry = telemetry.clone();
            let hb_vitals = Arc::clone(&vitals);
            let hb_pool = pool.clone();
            let hb_cursor = Arc::clone(&pool_cursor);
            let hb_panic = Arc::clone(&pool_panic);
            let hb_threaded = threaded;
            // The heartbeat borrows its probe per call instead of
            // owning one: an owned probe would cycle the plane's
            // shared state through its own callback, keeping the pool
            // handle below (and the pool's worker threads) alive past
            // session drop. Wiring it at start — with readiness
            // already true, since the workers above exist — means the
            // first sampler tick carries the gauges and `/readyz`
            // never reports 503 for an open session.
            let plane = LivePlane::start_with_heartbeat(
                &telemetry,
                LiveOptions {
                    http_addr: config.observe.http_addr,
                    sample_interval: config.observe.sample_interval,
                    ring_len: config.observe.ring_len,
                },
                true,
                move |probe| {
                    hb_vitals.publish(&hb_telemetry);
                    if let Some(pool) = &hb_pool {
                        hb_cursor.publish(&hb_telemetry, pool);
                    }
                    let healthy = (!hb_threaded || hb_vitals.all_cameras_alive())
                        && !hb_panic.load(Ordering::SeqCst);
                    if !healthy {
                        probe.set_ready(false);
                    }
                },
            )
            .map_err(|e| {
                DiEventError::Observe(format!(
                    "failed to start live plane on {:?}: {e}",
                    config.observe.http_addr
                ))
            })?;
            // The HTTP endpoint serves `GET /lineage` from the same
            // tracer the stages stamp into.
            if lineage.is_enabled() {
                plane.attach_lineage(lineage.clone());
            }
            Some(plane)
        } else {
            None
        };

        Ok(PipelineSession {
            config,
            telemetry,
            scenario_name: scenario.name.clone(),
            spec: scenario.spec,
            participants,
            cameras,
            fps,
            mode,
            feeds,
            inline_next: vec![0; cameras],
            sequencer,
            emitted: 0,
            shutdown,
            pool,
            pool_cursor,
            pool_panic,
            vitals,
            lineage,
            plane,
            run_span,
            extraction_span: Some(extraction_span),
        })
    }

    /// The live observability plane, when `config.observe` is active —
    /// e.g. to resolve the actual bound endpoint after a port-0 bind,
    /// or to read the rate windows sampled so far.
    pub fn observer(&self) -> Option<&LivePlane> {
        self.plane.as_ref()
    }

    /// Number of cameras the session was built for.
    pub fn cameras(&self) -> usize {
        self.cameras
    }

    /// Detaches one feed per camera so independent producer threads can
    /// push concurrently. Errors in inline mode
    /// (`parallel_cameras: false`), where there are no queues to feed.
    /// After detaching, [`push_frame`](Self::push_frame) on this
    /// session returns [`DiEventError::SessionClosed`]; drop the feeds
    /// (or call [`finish`](Self::finish)) to end the streams.
    #[must_use = "dropping the detached feeds immediately ends every camera stream"]
    pub fn take_feeds(&mut self) -> Result<Vec<CameraFeed>, DiEventError> {
        if matches!(self.mode, ExecutionMode::Inline { .. }) {
            return Err(DiEventError::InvalidConfig(
                "camera feeds require parallel_cameras (threaded mode)".into(),
            ));
        }
        let feeds: Vec<CameraFeed> = self.feeds.iter_mut().filter_map(Option::take).collect();
        if feeds.len() != self.cameras {
            return Err(DiEventError::SessionClosed);
        }
        Ok(feeds)
    }

    /// Pushes the next input for `camera` — the canonical, typed ingest
    /// point the wire protocol and the wrappers below both funnel into.
    /// Applies the configured backpressure policy in threaded mode;
    /// runs extraction synchronously in inline mode.
    #[must_use = "an ignored Err means the input was never processed"]
    pub fn push(&mut self, camera: CameraId, input: SessionInput) -> Result<(), DiEventError> {
        self.push_item(camera, |index| input.into_item(index))
    }

    /// Pushes the next frame for `camera`
    /// (= [`push`](Self::push) with [`SessionInput::Frame`]).
    #[must_use = "an ignored Err means the frame was never processed"]
    pub fn push_frame(&mut self, camera: usize, frame: GrayFrame) -> Result<(), DiEventError> {
        self.push(CameraId::new(camera), SessionInput::Frame(frame))
    }

    /// Pushes pre-extracted pose observations as `camera`'s next frame,
    /// bypassing stage-3 extraction (= [`push`](Self::push) with
    /// [`SessionInput::PoseObservations`]).
    #[must_use = "an ignored Err means the observations were never processed"]
    pub fn push_pose_observations(
        &mut self,
        camera: usize,
        observations: Vec<CameraObservation>,
    ) -> Result<(), DiEventError> {
        self.push(
            CameraId::new(camera),
            SessionInput::PoseObservations(observations),
        )
    }

    fn push_item(
        &mut self,
        camera: CameraId,
        make: impl FnOnce(usize) -> WorkItem,
    ) -> Result<(), DiEventError> {
        if camera.index() >= self.cameras {
            return Err(DiEventError::UnknownCamera {
                camera,
                cameras: self.cameras,
            });
        }
        let camera = camera.index();
        match &mut self.mode {
            ExecutionMode::Threaded { .. } => {
                let feed = self
                    .feeds
                    .get_mut(camera)
                    .and_then(Option::as_mut)
                    .ok_or(DiEventError::SessionClosed)?;
                let index = feed.next_index;
                feed.next_index += 1;
                feed.enqueue(make(index))?;
                self.drain_outputs();
                self.sequencer.fuse_ready(false);
                Ok(())
            }
            ExecutionMode::Inline { stages, .. } => {
                if self.shutdown.load(Ordering::Relaxed) {
                    return Err(DiEventError::SessionClosed);
                }
                let index = self.inline_next[camera];
                self.inline_next[camera] += 1;
                // Inline mode has no queue; ingest and extraction start
                // back to back, so queue-wait reads as ~zero.
                self.lineage.ingest(camera, index as u64);
                let output = stages[camera].process(make(index));
                self.sequencer.insert(output);
                self.sequencer.fuse_ready(false);
                Ok(())
            }
        }
    }

    /// Closes the session to new input via [`push_frame`](Self::push_frame)
    /// (detached [`CameraFeed`]s end their streams by dropping).
    /// Workers keep draining already-queued frames; call
    /// [`finish`](Self::finish) to collect the analysis.
    pub fn close(&mut self) {
        // A closing session stops being ready before anything else:
        // load balancers must drain it while `/metrics` still answers.
        if let Some(plane) = &self.plane {
            plane.set_ready(false);
        }
        for feed in &mut self.feeds {
            feed.take();
        }
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Drains the incremental results fused since the last poll.
    pub fn poll(&mut self) -> Vec<FrameAnalysis> {
        self.drain_outputs();
        self.sequencer.fuse_ready(false);
        let out: Vec<FrameAnalysis> = (self.emitted..self.sequencer.frame_numbers.len())
            .map(|i| FrameAnalysis {
                frame: self.sequencer.frame_numbers[i],
                raw_matrix: self.sequencer.raw_matrices[i].clone(),
                emotions: self.sequencer.emotion_frames[i].clone(),
                cameras_reporting: self.sequencer.cameras_reporting[i],
            })
            .collect();
        self.emitted = self.sequencer.frame_numbers.len();
        out
    }

    fn drain_outputs(&mut self) {
        if let ExecutionMode::Threaded { out_rx, .. } = &self.mode {
            let mut received = Vec::new();
            while let Ok(output) = out_rx.try_recv() {
                received.push(output);
            }
            for output in received {
                self.sequencer.insert(output);
            }
        }
    }

    /// Ends the session: joins the workers, fuses everything still
    /// pending, and runs the remaining pipeline stages (video parsing,
    /// smoothing + multilayer analysis, metadata population). The
    /// returned [`EventAnalysis`] matches the batch entry point's
    /// output when every frame was delivered.
    #[must_use = "dropping the result discards the whole analysis or its error"]
    pub fn finish(self) -> Result<EventAnalysis, DiEventError> {
        self.finish_with(FinishOptions::default())
    }

    /// [`finish`](Self::finish), attaching ground truth for validation
    /// and/or the event's time-invariant context.
    #[must_use = "dropping the result discards the whole analysis or its error"]
    pub fn finish_with(mut self, options: FinishOptions) -> Result<EventAnalysis, DiEventError> {
        // Take the plane out before the session is destructured below
        // (the `..` rest pattern would drop — and join — it blindly).
        let plane = self.plane.take();
        // --- End of ingest: stop workers and collect their outputs. ---
        if let Some(plane) = &plane {
            plane.set_ready(false);
        }
        self.close();
        match &mut self.mode {
            ExecutionMode::Threaded { workers, .. } => {
                let handles = std::mem::take(workers);
                for (camera, handle) in handles.into_iter().enumerate() {
                    handle
                        .join()
                        .map_err(|_| DiEventError::CameraThreadPanicked {
                            camera: Some(camera),
                        })?;
                }
            }
            ExecutionMode::Inline { spans, .. } => {
                // Close the per-camera spans before the later stages so
                // they don't nest under `camera.extract`.
                spans.clear();
            }
        }
        self.drain_outputs();
        drop(self.extraction_span.take());
        if self.pool_panic.load(Ordering::SeqCst) {
            return Err(DiEventError::PoolWorkerPanicked);
        }

        let PipelineSession {
            config,
            telemetry,
            scenario_name,
            spec,
            participants: n_participants,
            mut run_span,
            mut sequencer,
            fps,
            pool,
            pool_cursor,
            vitals,
            lineage,
            ..
        } = self;

        // --- Stage 2: video composition analysis (monitor stream). ---
        let structure = {
            let _stage = telemetry.span("stage.parse");
            if config.parse_video {
                let monitor: Vec<GrayFrame> = std::mem::take(&mut sequencer.monitor)
                    .into_values()
                    .collect();
                let mut spec = spec;
                spec.width = monitor.first().map_or(spec.width / 4, |f| f.width());
                spec.height = monitor.first().map_or(spec.height / 4, |f| f.height());
                Some(
                    VideoParser::new(config.parser)
                        .with_telemetry(telemetry.clone())
                        .parse_frames(spec, &monitor),
                )
            } else {
                None
            }
        };

        // --- Stage 4: fusion of stragglers + multilayer analysis. ---
        let analysis_stage = telemetry.span("stage.analysis");
        sequencer.fuse_ready(true);
        if sequencer.pool_panicked {
            return Err(DiEventError::PoolWorkerPanicked);
        }
        // Publish the pool activity this session caused. The counters
        // are process-monotonic, so the delta from open is reported
        // (shared-global-pool sessions running concurrently overlap);
        // the cursor ensures activity the heartbeat already published
        // mid-run is not counted twice.
        if let Some(pool) = &pool {
            pool_cursor.publish(&telemetry, pool);
        }
        vitals.publish(&telemetry);
        let frames = sequencer.frame_numbers.len();
        run_span.set("frames", frames);
        telemetry.gauge("recording_frames").set(frames as f64);

        let raw_matrices = std::mem::take(&mut sequencer.raw_matrices);
        let emotion_frames = std::mem::take(&mut sequencer.emotion_frames);
        let matrices = smooth_matrices(&raw_matrices, config.matrix_smoothing);

        let mut summary = LookAtSummary::new(n_participants);
        for m in &matrices {
            summary.add(m);
        }
        let dominance = dominance_ranking(&summary);

        let overall = fuse_sequence(
            &emotion_frames,
            &OverallEmotionConfig {
                participants: n_participants,
                smoothing: config.emotion_smoothing,
            },
        );

        let episodes = ec_episodes(&matrices, 3);
        let pair_stats = pair_statistics(&matrices, 3);
        let highlights = detect_highlights(&matrices, &overall, &config.highlights);
        let importance = importance_series(&matrices, &overall, &config.importance);
        let video_summary = structure
            .as_ref()
            .map(|s| select_summary(&s.shots, &importance, &config.summary, &config.importance));

        // `validate_sequence` compares over the common prefix, so an
        // empty ground truth degrades to a zero-frame validation.
        let validation = validate_sequence(&matrices, &options.ground_truth);

        telemetry.counter("ec_episodes").add(episodes.len() as u64);
        drop(analysis_stage);

        // --- Stage 5: metadata repository. ---
        let repository = {
            let _stage = telemetry.span("stage.metadata");
            let mut repository = MetadataRepository::in_memory();
            repository.attach_telemetry(&telemetry);
            populate_repository(
                &repository,
                &scenario_name,
                n_participants,
                sequencer.cameras,
                frames,
                fps,
                options.context.as_ref(),
                &matrices,
                &overall,
                &structure,
                &highlights,
            )?;
            repository
        };

        // Close the run span, then retire the observability plane: one
        // last sample so the final window covers the tail of the run,
        // a bounded join of its threads, and the windowed-rate
        // trajectory for the report. This happens before the telemetry
        // snapshot so the plane's own counters land in it.
        drop(run_span);
        let rate_windows: Vec<RateWindow> = match plane {
            Some(mut plane) => {
                plane.sample_now();
                plane.shutdown_join(Duration::from_secs(2));
                plane.windows(None)
            }
            None => Vec::new(),
        };
        // The lineage report is built after the final fuse above, so
        // every fused frame's waterfall is in; the disabled tracer
        // yields `None`.
        let lineage = lineage.report();
        let telemetry_report = telemetry.report();
        let timings = StageTimings::from_report(&telemetry_report);

        Ok(EventAnalysis {
            participants: n_participants,
            fps,
            raw_matrices,
            matrices,
            summary,
            dominance,
            overall,
            episodes,
            pair_stats,
            highlights,
            importance,
            structure,
            video_summary,
            validation,
            repository,
            timings,
            telemetry: telemetry_report,
            rate_windows,
            lineage,
            context: options.context,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn populate_repository(
    repo: &MetadataRepository,
    scenario_name: &str,
    participants: usize,
    cameras: usize,
    frames: usize,
    fps: f64,
    context: Option<&TimeInvariantContext>,
    matrices: &[LookAtMatrix],
    overall: &[dievent_analysis::overall_emotion::OverallEmotion],
    structure: &Option<VideoStructure>,
    highlights: &[Highlight],
) -> Result<(), DiEventError> {
    let duration = frames as f64 / fps;
    let mut event = MetaRecord::new(RecordKind::Event)
        .with_span(0.0, duration)
        .with_attr("name", scenario_name)
        .with_attr("participants", participants)
        .with_attr("cameras", cameras)
        .with_attr("frames", frames);
    if let Some(ctx) = context {
        event = event
            .with_attr("location", ctx.location.as_str())
            .with_attr("date", ctx.date.as_str())
            .with_attr("occasion", ctx.occasion.as_str());
        if let Some(t) = ctx.temperature_c {
            event = event.with_attr("temperature_c", t);
        }
        if let Ok(payload) = serde_json::to_value(ctx) {
            event = event.with_payload(payload);
        }
    }
    repo.insert(event)?;

    if let Some(s) = structure {
        for (i, scene) in s.scenes.iter().enumerate() {
            let (f0, f1) = scene.frame_span(&s.shots);
            repo.insert(
                MetaRecord::new(RecordKind::Scene)
                    .with_span(f0 as f64 / fps, f1 as f64 / fps)
                    .with_attr("scene", i),
            )?;
        }
        for (i, shot) in s.shots.iter().enumerate() {
            repo.insert(
                MetaRecord::new(RecordKind::Shot)
                    .with_span(shot.start as f64 / fps, shot.end as f64 / fps)
                    .with_attr("shot", i)
                    .with_attr("keyframes", s.keyframes[i].len()),
            )?;
        }
    }

    for (f, (m, o)) in matrices.iter().zip(overall).enumerate() {
        let t = f as f64 / fps;
        repo.insert(
            MetaRecord::new(RecordKind::FrameAnalysis)
                .with_span(t, t + 1.0 / fps)
                .with_attr("frame", f)
                .with_attr("looks", m.count_ones())
                .with_attr("eye_contacts", m.eye_contacts().len())
                .with_attr("oh", o.overall_happiness)
                .with_attr("valence", o.valence),
        )?;
    }

    for h in highlights {
        let t = h.frame as f64 / fps;
        let kind = match &h.kind {
            HighlightKind::EyeContactStart { .. } => "ec",
            HighlightKind::EmotionShift { .. } => "emotion",
        };
        repo.insert(
            MetaRecord::new(RecordKind::Highlight)
                .with_span(t, t)
                .with_attr("frame", h.frame)
                .with_attr("kind", kind),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::Recording;

    fn quick_config() -> PipelineConfig {
        PipelineConfig {
            classify_emotions: false,
            parse_video: false,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn session_rejects_unknown_camera_and_closed_input() {
        let recording = Recording::capture(Scenario::two_camera_dinner(4, 1));
        let pipeline = DiEventPipeline::new(quick_config());
        let mut session = pipeline.session(&recording.scenario).expect("session");
        let frame = recording.frame(0, 0);
        assert_eq!(
            session.push_frame(9, frame.clone()),
            Err(DiEventError::UnknownCamera {
                camera: CameraId::new(9),
                cameras: 2
            })
        );
        session.close();
        assert_eq!(
            session.push_frame(0, frame),
            Err(DiEventError::SessionClosed)
        );
    }

    #[test]
    fn incremental_poll_emits_each_frame_once_in_order() {
        let recording = Recording::capture(Scenario::two_camera_dinner(6, 2));
        // Inline mode: extraction runs on this thread, so a poll() after
        // a complete frame deterministically observes that frame.
        let pipeline = DiEventPipeline::new(PipelineConfig {
            parallel_cameras: false,
            ..quick_config()
        });
        let mut session = pipeline.session(&recording.scenario).expect("session");
        let mut seen = Vec::new();
        for f in 0..6 {
            for c in 0..2 {
                session.push_frame(c, recording.frame(c, f)).expect("push");
            }
            seen.extend(session.poll());
        }
        seen.extend(session.poll());
        let frames: Vec<usize> = seen.iter().map(|a| a.frame).collect();
        assert_eq!(frames, (0..6).collect::<Vec<_>>());
        assert!(seen.iter().all(|a| a.cameras_reporting == 2));
        let analysis = session.finish().expect("finish");
        assert_eq!(analysis.matrices.len(), 6);
        for (emitted, fused) in seen.iter().zip(&analysis.raw_matrices) {
            assert_eq!(&emitted.raw_matrix, fused);
        }
    }

    #[test]
    fn pose_observation_ingest_bypasses_extraction() {
        let scenario = Scenario::two_camera_dinner(5, 3);
        let gt = scenario.simulate();
        let pipeline = DiEventPipeline::new(quick_config());
        let mut session = pipeline.session(&scenario).expect("session");
        for snap in &gt.snapshots {
            for (c, cam) in scenario.rig.cameras.iter().enumerate() {
                let to_cam = cam.extrinsics();
                let obs: Vec<CameraObservation> = snap
                    .states
                    .iter()
                    .enumerate()
                    .map(|(i, st)| CameraObservation {
                        person: i,
                        head_cam: to_cam.transform_point(st.head),
                        gaze_cam: Some(to_cam.transform_dir(st.gaze)),
                        weight: 1.0,
                    })
                    .collect();
                session.push_pose_observations(c, obs).expect("push obs");
            }
        }
        let analysis = session.finish().expect("finish");
        assert_eq!(analysis.matrices.len(), gt.snapshots.len());
        // Ground-truth poses must recover the scripted gaze exactly.
        let looks: usize = analysis.raw_matrices.iter().map(|m| m.count_ones()).sum();
        assert!(looks > 0, "scripted gaze must surface as looks");
    }
}
