//! The DiEvent framework — end-to-end pipeline (paper Fig. 1).
//!
//! This crate wires the five pipeline stages together:
//!
//! 1. **Video acquisition platform** — [`acquisition`]: synthetic
//!    multi-camera capture of a scenario (camera streams + external
//!    time-invariant context);
//! 2. **Video composition analysis** — via `dievent-video`'s parser on
//!    a downsampled monitor stream;
//! 3. **Feature extraction** — one `dievent-vision` extractor per
//!    camera plus the LBP+MLP emotion classifier ([`training`]);
//! 4. **Multilayer analysis** — fusion, look-at matrices, overall
//!    emotion via `dievent-analysis`;
//! 5. **Metadata repository** — everything stored and queryable via
//!    `dievent-metadata`.
//!
//! The top-level entry point is [`pipeline::DiEventPipeline`]; its
//! output, [`report::EventAnalysis`], carries every figure the paper's
//! prototype reports (look-at maps, the summary matrix, dominance, OH
//! series) plus validation metrics against the simulator's ground
//! truth.
//!
//! Execution is streaming-first: [`session::PipelineSession`] accepts
//! per-camera frames incrementally over bounded, backpressured
//! channels and emits incremental [`session::FrameAnalysis`] results;
//! the batch `run` entry point is a thin driver over a session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod error;
pub mod ids;
pub mod observe;
pub mod pipeline;
pub mod report;
pub mod session;
pub mod training;

pub use acquisition::{CameraStream, Recording};
pub use dievent_pool::{PoolStats, ThreadPool};
pub use dievent_telemetry::{
    collapsed_stacks, span_profile, validate_exposition, CameraLane, FrameWaterfall, LineageReport,
    LineageStageSummary, LineageSummary, LiveOptions, LivePlane, PlaneProbe, RateWindow, Telemetry,
};
pub use error::DiEventError;
pub use ids::{CameraId, EventId};
pub use observe::ObserveConfig;
pub use pipeline::{DiEventPipeline, PipelineConfig, PipelineConfigBuilder};
pub use report::{AnalysisDigest, EventAnalysis, StageTimings};
pub use session::{
    BackpressureMode, CameraFeed, FinishOptions, FrameAnalysis, PipelineSession, SessionInput,
    StreamingConfig,
};
pub use training::{default_training_set, train_emotion_classifier, TrainingSetConfig};
