//! Typed identifiers for the public session and server APIs.
//!
//! A dining event and a camera are both "just an index" at the
//! representation level, which makes it easy to hand one to an API
//! expecting the other. [`EventId`] and [`CameraId`] are zero-cost
//! newtypes that make that confusion a type error while staying
//! ergonomic: both convert from the bare integer (`0.into()`,
//! `CameraId::from(c)`), display as the plain number, and serialize
//! as a JSON number so identifiers on the wire look exactly like the
//! integers they replace.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;

/// Identifies one dining event (a tenant) within a multi-event
/// process. Monotonic per deployment by convention; the server treats
/// it as an opaque key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Wraps a raw event number.
    pub const fn new(id: u64) -> Self {
        EventId(id)
    }

    /// The raw event number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for EventId {
    fn from(id: u64) -> Self {
        EventId(id)
    }
}

impl From<EventId> for u64 {
    fn from(id: EventId) -> Self {
        id.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

// Serialized as the bare number (not a one-element array) so wire
// payloads and JSON views read naturally.
impl Serialize for EventId {
    fn serialize(&self) -> Value {
        self.0.serialize()
    }
}

impl Deserialize for EventId {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        u64::deserialize(value).map(EventId)
    }
}

/// Identifies one camera within an event's rig, by rig position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CameraId(usize);

impl CameraId {
    /// Wraps a raw rig index.
    pub const fn new(index: usize) -> Self {
        CameraId(index)
    }

    /// The raw rig index (e.g. to address a
    /// [`Recording`](crate::Recording) frame).
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for CameraId {
    fn from(index: usize) -> Self {
        CameraId(index)
    }
}

impl From<CameraId> for usize {
    fn from(id: CameraId) -> Self {
        id.0
    }
}

impl fmt::Display for CameraId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Serialize for CameraId {
    fn serialize(&self) -> Value {
        self.0.serialize()
    }
}

impl Deserialize for CameraId {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        usize::deserialize(value).map(CameraId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_convert_display_and_round_trip() {
        let event = EventId::from(42u64);
        assert_eq!(event.raw(), 42);
        assert_eq!(u64::from(event), 42);
        assert_eq!(event.to_string(), "42");
        assert_eq!(EventId::deserialize(&event.serialize()).unwrap(), event);

        let camera = CameraId::from(3usize);
        assert_eq!(camera.index(), 3);
        assert_eq!(usize::from(camera), 3);
        assert_eq!(camera.to_string(), "3");
        assert_eq!(CameraId::deserialize(&camera.serialize()).unwrap(), camera);
    }

    #[test]
    fn ids_serialize_as_bare_numbers() {
        // The wire/JSON representation must be the plain integer, not a
        // wrapped structure.
        assert_eq!(EventId::new(7).serialize(), 7u64.serialize());
        assert_eq!(CameraId::new(2).serialize(), 2usize.serialize());
        assert!(EventId::deserialize(&Value::String("7".into())).is_err());
    }
}
