//! The pipeline's output report and figure-style renderings.
//!
//! [`EventAnalysis`] carries everything the §III prototype
//! demonstrates: per-frame look-at matrices (Fig. 4), look-at top-view
//! maps at chosen timestamps (Figs. 7–8), the summary matrix and
//! dominance (Fig. 9), the overall-emotion series (Fig. 5), plus the
//! video structure, highlights, summaries, validation metrics and the
//! populated metadata repository.

use dievent_analysis::dominance::DominanceReport;
use dievent_analysis::ec_stats::{EcEpisode, PairStats};
use dievent_analysis::layers::TimeInvariantContext;
use dievent_analysis::lookat::{LookAtMatrix, LookAtSummary};
use dievent_analysis::overall_emotion::OverallEmotion;
use dievent_analysis::social::{relation_profiles, RelationProfile};
use dievent_analysis::validate::MatrixValidation;
use dievent_metadata::MetadataRepository;
use dievent_summarize::{Highlight, VideoSummary};
use dievent_telemetry::TelemetryReport;
use dievent_video::VideoStructure;
use serde::{Deserialize, Serialize};

/// Wall-clock cost of each pipeline stage, in seconds.
///
/// A view over the telemetry domain's `stage.*` span totals (see
/// [`StageTimings::from_report`]); when the pipeline's domain spans
/// several runs, each stage is the *sum* across those runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Stage 3: rendering + per-camera feature extraction (wall time of
    /// the parallel section).
    pub extraction_s: f64,
    /// Stage 2: video composition analysis.
    pub parse_s: f64,
    /// Stage 4: fusion, matrices, emotion, episodes, highlights.
    pub analysis_s: f64,
    /// Stage 5: metadata population.
    pub metadata_s: f64,
}

impl StageTimings {
    /// Derives stage timings from a telemetry report's span summaries
    /// (`stage.extraction`, `stage.parse`, `stage.analysis`,
    /// `stage.metadata`). Missing spans read as 0.
    pub fn from_report(report: &TelemetryReport) -> Self {
        StageTimings {
            extraction_s: report.span_total_s("stage.extraction"),
            parse_s: report.span_total_s("stage.parse"),
            analysis_s: report.span_total_s("stage.analysis"),
            metadata_s: report.span_total_s("stage.metadata"),
        }
    }
}

/// A serializable digest of an [`EventAnalysis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisDigest {
    /// Number of participants.
    pub participants: usize,
    /// Source frame rate.
    pub fps: f64,
    /// Frames analyzed.
    pub frames: usize,
    /// The Fig. 9-style summary matrix rows.
    pub summary: Vec<Vec<u32>>,
    /// Looks received per participant (column sums).
    pub received_looks: Vec<u32>,
    /// Dominant participant, if any looks were detected.
    pub dominant: Option<usize>,
    /// Attention share per participant.
    pub attention_share: Vec<f64>,
    /// Mean overall happiness in percent.
    pub mean_overall_happiness: f64,
    /// Number of mutual eye-contact episodes.
    pub eye_contact_episodes: usize,
    /// Number of alert highlights.
    pub highlights: usize,
    /// Validation precision vs ground truth.
    pub precision: f64,
    /// Validation recall vs ground truth.
    pub recall: f64,
    /// Validation F1 vs ground truth.
    pub f1: f64,
    /// Wall-clock stage timings of the run.
    pub timings: StageTimings,
}

/// The complete output of one pipeline run.
pub struct EventAnalysis {
    /// Number of participants.
    pub participants: usize,
    /// Source frame rate.
    pub fps: f64,
    /// Per-frame matrices before temporal smoothing.
    pub raw_matrices: Vec<LookAtMatrix>,
    /// Per-frame matrices after temporal smoothing (used everywhere
    /// downstream).
    pub matrices: Vec<LookAtMatrix>,
    /// Accumulated summary (Fig. 9).
    pub summary: LookAtSummary,
    /// Dominance ranking derived from the summary.
    pub dominance: DominanceReport,
    /// Overall-emotion series (Fig. 5).
    pub overall: Vec<OverallEmotion>,
    /// Mutual eye-contact episodes.
    pub episodes: Vec<EcEpisode>,
    /// Per-pair EC statistics (Argyle–Dean indicators).
    pub pair_stats: Vec<PairStats>,
    /// Alert events.
    pub highlights: Vec<Highlight>,
    /// Per-frame importance scores.
    pub importance: Vec<f64>,
    /// Video composition analysis result (when enabled).
    pub structure: Option<VideoStructure>,
    /// Budgeted summary (when video parsing ran).
    pub video_summary: Option<VideoSummary>,
    /// Cell-level validation against simulator ground truth.
    pub validation: MatrixValidation,
    /// The populated metadata repository.
    pub repository: MetadataRepository,
    /// Wall-clock stage timings.
    pub timings: StageTimings,
    /// The aggregated telemetry of the run: counters, gauges, latency
    /// histograms, and span summaries.
    pub telemetry: TelemetryReport,
    /// Windowed rate trajectories (frames/s per camera, drops/s,
    /// latency quantiles per window) sampled by the live plane —
    /// empty unless `config.observe` was active.
    pub rate_windows: Vec<dievent_telemetry::RateWindow>,
    /// Per-frame lineage report: stage-attribution summary
    /// (queue-wait vs compute vs reorder-hold vs fuse), slowest-frame
    /// exemplars, and the sampled waterfall reservoir — `None` unless
    /// `config.observe.trace_lineage` was set.
    pub lineage: Option<dievent_telemetry::LineageReport>,
    /// The time-invariant context the recording carried, if any.
    pub context: Option<TimeInvariantContext>,
}

impl EventAnalysis {
    /// The look-at matrix at time `t` seconds (nearest frame).
    pub fn matrix_at(&self, t: f64) -> Option<&LookAtMatrix> {
        if self.matrices.is_empty() {
            return None;
        }
        let f = ((t * self.fps).round() as usize).min(self.matrices.len() - 1);
        self.matrices.get(f)
    }

    /// Directed looks at time `t` as `(gazer, target)` pairs — the
    /// content of a Fig. 7/8 look-at map.
    pub fn looks_at(&self, t: f64) -> Vec<(usize, usize)> {
        let Some(m) = self.matrix_at(t) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for g in 0..m.len() {
            for target in 0..m.len() {
                if g != target && m.get(g, target) == 1 {
                    out.push((g, target));
                }
            }
        }
        out
    }

    /// Renders the Fig. 7/8-style top-view map at time `t` as ASCII:
    /// participant markers on a plan grid plus the arrow list.
    ///
    /// `positions` are the participants' plan (x, y) coordinates in
    /// metres (typically seat positions).
    pub fn lookat_top_view(&self, t: f64, positions: &[(f64, f64)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let looks = self.looks_at(t);
        let _ = writeln!(out, "look-at top view @ t = {t:.1}s");

        const W: usize = 41;
        const H: usize = 17;
        let (min_x, max_x) = positions
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.0), hi.max(p.0))
            });
        let (min_y, max_y) = positions
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.1), hi.max(p.1))
            });
        let sx = (W - 5) as f64 / (max_x - min_x).max(1e-6);
        let sy = (H - 5) as f64 / (max_y - min_y).max(1e-6);
        let to_grid = |p: (f64, f64)| -> (i64, i64) {
            (
                (2.0 + (p.0 - min_x) * sx).round() as i64,
                (2.0 + (max_y - p.1) * sy).round() as i64,
            )
        };

        let mut grid = vec![vec![' '; W]; H];
        // Arrows first so markers overwrite them.
        for &(g, target) in &looks {
            let (x0, y0) = to_grid(positions[g]);
            let (x1, y1) = to_grid(positions[target]);
            let steps = (x1 - x0).abs().max((y1 - y0).abs()).max(1);
            for s in 1..steps {
                let x = x0 + (x1 - x0) * s / steps;
                let y = y0 + (y1 - y0) * s / steps;
                if (0..W as i64).contains(&x) && (0..H as i64).contains(&y) {
                    grid[y as usize][x as usize] = '·';
                }
            }
        }
        for (i, &p) in positions.iter().enumerate() {
            let (x, y) = to_grid(p);
            if (0..W as i64).contains(&x) && (0..H as i64).contains(&y) {
                grid[y as usize][x as usize] =
                    char::from_digit((i + 1) as u32 % 10, 10).unwrap_or('?');
            }
        }
        for row in grid {
            let line: String = row.into_iter().collect();
            let _ = writeln!(out, "{}", line.trim_end());
        }
        for &(g, target) in &looks {
            let _ = writeln!(out, "  P{} → P{}", g + 1, target + 1);
        }
        let m = self.matrix_at(t);
        if let Some(m) = m {
            let contacts = m.eye_contacts();
            if !contacts.is_empty() {
                let pairs: Vec<String> = contacts
                    .iter()
                    .map(|(a, b)| format!("P{}↔P{}", a + 1, b + 1))
                    .collect();
                let _ = writeln!(out, "  eye contact: {}", pairs.join(", "));
            }
        }
        out
    }

    /// The Fig. 9-style summary matrix as display text.
    pub fn summary_table(&self) -> String {
        self.summary.to_string()
    }

    /// Mean overall happiness across the event, in percent.
    pub fn mean_overall_happiness(&self) -> f64 {
        if self.overall.is_empty() {
            return 0.0;
        }
        self.overall
            .iter()
            .map(|o| o.overall_happiness)
            .sum::<f64>()
            / self.overall.len() as f64
    }

    /// Eye-contact profiles per declared relationship (paper §II-E:
    /// metadata "integrated with the social dimensions"). Empty when
    /// the recording carried no context.
    pub fn social_profiles(&self) -> Vec<RelationProfile> {
        match &self.context {
            Some(ctx) => relation_profiles(&self.pair_stats, ctx, true),
            None => Vec::new(),
        }
    }

    /// A serializable digest of the analysis (for export / downstream
    /// tooling; the full `EventAnalysis` deliberately isn't serializable
    /// because it owns the live repository).
    pub fn digest(&self) -> AnalysisDigest {
        AnalysisDigest {
            participants: self.participants,
            fps: self.fps,
            frames: self.matrices.len(),
            summary: self.summary.rows(),
            received_looks: (0..self.participants)
                .map(|p| self.summary.received(p))
                .collect(),
            dominant: self.dominance.dominant,
            attention_share: self.dominance.attention_share.clone(),
            mean_overall_happiness: self.mean_overall_happiness(),
            eye_contact_episodes: self.episodes.len(),
            highlights: self.highlights.len(),
            precision: self.validation.precision,
            recall: self.validation.recall,
            f1: self.validation.f1,
            timings: self.timings,
        }
    }

    /// One-paragraph textual report of the event.
    pub fn brief(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} frames @ {:.2} fps, {} participants",
            self.matrices.len(),
            self.fps,
            self.participants
        );
        if let Some(d) = self.dominance.dominant {
            let _ = writeln!(
                out,
                "dominant participant: P{} ({:.0}% of received looks)",
                d + 1,
                self.dominance.attention_share[d] * 100.0
            );
        }
        let _ = writeln!(out, "eye-contact episodes: {}", self.episodes.len());
        let _ = writeln!(out, "highlights: {}", self.highlights.len());
        let _ = writeln!(
            out,
            "mean overall happiness: {:.1}%",
            self.mean_overall_happiness()
        );
        let _ = writeln!(
            out,
            "look-at detection vs ground truth: precision {:.3}, recall {:.3}, F1 {:.3}",
            self.validation.precision, self.validation.recall, self.validation.f1
        );
        let t = &self.timings;
        let _ = writeln!(
            out,
            "stage timings: extraction {:.2}s, parsing {:.2}s, analysis {:.2}s, metadata {:.2}s",
            t.extraction_s, t.parse_s, t.analysis_s, t.metadata_s
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::Recording;
    use crate::pipeline::{DiEventPipeline, PipelineConfig};
    use dievent_scene::Scenario;

    fn analysis() -> EventAnalysis {
        let recording = Recording::capture(Scenario::two_camera_dinner(30, 2));
        DiEventPipeline::new(PipelineConfig {
            classify_emotions: false,
            parse_video: false,
            ..PipelineConfig::default()
        })
        .run(&recording)
        .expect("pipeline run")
    }

    #[test]
    fn matrix_at_clamps_time() {
        let a = analysis();
        assert!(a.matrix_at(-5.0).is_some());
        assert!(a.matrix_at(1e9).is_some());
    }

    #[test]
    fn top_view_renders_markers_and_arrows() {
        let a = analysis();
        // Find a time with at least one look.
        let t = (0..30)
            .map(|f| f as f64 / a.fps)
            .find(|&t| !a.looks_at(t).is_empty())
            .expect("scripted gaze must appear");
        let text = a.lookat_top_view(t, &[(0.0, 0.0), (2.0, 0.0)]);
        assert!(text.contains('1'));
        assert!(text.contains('2'));
        assert!(text.contains('→'));
    }

    #[test]
    fn brief_mentions_key_findings() {
        let a = analysis();
        let brief = a.brief();
        assert!(brief.contains("participants"));
        assert!(brief.contains("F1"));
    }
}
