//! Training the emotion classifier (paper §II-C: "a trained model for
//! emotion recognition").
//!
//! The paper uses a model pretrained on real expression data; here the
//! training set is generated from the same face sprites the renderer
//! draws (see `dievent-scene::face`), which is the honest synthetic
//! equivalent: the classifier learns from the deployment domain's
//! imagery, then runs on extractor-cropped patches at inference time.

use dievent_emotion::{Emotion, EmotionClassifier, LbpConfig, TrainReport, TrainingConfig};
use dievent_scene::render_face_patch;
use dievent_video::GrayFrame;
use dievent_vision::contract;
use serde::{Deserialize, Serialize};

/// Training-set generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingSetConfig {
    /// Samples per (emotion, identity) pair.
    pub variants: u32,
    /// Number of identities (tones) to mix.
    pub identities: usize,
    /// Patch side length (must match the extractor's patch size).
    pub patch_size: u32,
}

impl Default for TrainingSetConfig {
    fn default() -> Self {
        TrainingSetConfig {
            variants: 16,
            identities: 4,
            patch_size: 48,
        }
    }
}

/// Generates the labelled training set.
pub fn default_training_set(config: &TrainingSetConfig) -> Vec<(GrayFrame, Emotion)> {
    let mut out = Vec::with_capacity(config.variants as usize * config.identities * Emotion::COUNT);
    for id in 0..config.identities {
        let tone = contract::skin_tone(id);
        for v in 0..config.variants {
            for e in Emotion::ALL {
                let variant = v * 131 + id as u32 * 17 + e.index() as u32;
                out.push((
                    render_face_patch(e, tone, id, variant, config.patch_size),
                    e,
                ));
            }
        }
    }
    out
}

/// Trains the default classifier; deterministic for a given seed.
pub fn train_emotion_classifier(
    config: &TrainingSetConfig,
    seed: u64,
) -> (EmotionClassifier, TrainReport) {
    let data = default_training_set(config);
    let tc = TrainingConfig {
        epochs: 40,
        ..TrainingConfig::default()
    };
    EmotionClassifier::train(&data, LbpConfig::default(), &[48], seed, &tc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_set_is_balanced() {
        let cfg = TrainingSetConfig {
            variants: 3,
            identities: 2,
            patch_size: 48,
        };
        let data = default_training_set(&cfg);
        assert_eq!(data.len(), 3 * 2 * Emotion::COUNT);
        for e in Emotion::ALL {
            let count = data.iter().filter(|(_, l)| *l == e).count();
            assert_eq!(count, 6);
        }
    }

    #[test]
    fn classifier_reaches_high_accuracy() {
        let cfg = TrainingSetConfig {
            variants: 10,
            identities: 4,
            patch_size: 48,
        };
        let (_clf, report) = train_emotion_classifier(&cfg, 42);
        assert!(
            report.test_accuracy >= 0.9,
            "accuracy {} below target",
            report.test_accuracy
        );
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = TrainingSetConfig {
            variants: 4,
            identities: 2,
            patch_size: 48,
        };
        let (a, _) = train_emotion_classifier(&cfg, 7);
        let (b, _) = train_emotion_classifier(&cfg, 7);
        let probe = render_face_patch(Emotion::Happy, 225, 1, 999, 48);
        assert_eq!(
            a.classify(&probe).probabilities,
            b.classify(&probe).probabilities
        );
    }
}
