//! Stages 2–5: the DiEvent analysis pipeline.
//!
//! [`DiEventPipeline::run`] consumes a [`Recording`] and produces an
//! [`EventAnalysis`]. Camera processing is parallel (one crossbeam
//! scoped thread per camera — each is an independent "smart camera"
//! running detection, landmarks, pose, tracking, recognition, and
//! emotion classification); fusion and the multilayer analysis then run
//! sequentially over the per-frame observations.
//!
//! Identity bootstrap follows the paper's stance that the participant
//! count and seating are *external information* (§II-D-1: "n is given
//! as an external information"): the first frame's detections are
//! associated to seats by projected position, enrolling each
//! participant's appearance in the camera's gallery; every later frame
//! relies on appearance recognition alone.

use crate::acquisition::Recording;
use crate::report::{EventAnalysis, StageTimings};
use crate::training::{train_emotion_classifier, TrainingSetConfig};
use dievent_analysis::overall_emotion::{fuse_sequence, EmotionEstimate, OverallEmotionConfig};
use dievent_analysis::{
    dominance_ranking, ec_episodes, fuse_frame, pair_statistics, smooth_matrices,
    validate_sequence, CameraObservation, FrameObservations, FusionConfig, LookAtConfig,
    LookAtMatrix, LookAtSummary,
};
use dievent_emotion::EmotionClassifier;
use dievent_metadata::{MetaRecord, MetadataRepository, RecordKind};
use dievent_scene::Scenario;
use dievent_summarize::{
    detect_highlights, importance_series, select_summary, HighlightConfig, ImportanceConfig,
    SummaryConfig,
};
use dievent_telemetry::Telemetry;
use dievent_video::{GrayFrame, VideoParser, VideoParserConfig};
use dievent_vision::{ExtractorConfig, FaceGallery, FeatureExtractor, PersonId};
use serde::{Deserialize, Serialize};

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Per-camera feature extraction settings.
    pub extractor: ExtractorConfig,
    /// Eye-contact geometry.
    pub lookat: LookAtConfig,
    /// Multi-camera fusion settings.
    pub fusion: FusionConfig,
    /// Temporal majority-vote window over look-at matrices (frames).
    pub matrix_smoothing: usize,
    /// EMA smoothing of the overall-emotion series.
    pub emotion_smoothing: f64,
    /// Video-parsing settings (applied to the camera-0 monitor stream).
    pub parser: VideoParserConfig,
    /// Emotion-classifier training-set settings.
    pub training: TrainingSetConfig,
    /// Seed for classifier training.
    pub training_seed: u64,
    /// Run emotion classification (disable for gaze-only benches).
    pub classify_emotions: bool,
    /// Run video composition analysis.
    pub parse_video: bool,
    /// Process cameras on parallel threads.
    pub parallel_cameras: bool,
    /// Highlight detection settings.
    pub highlights: HighlightConfig,
    /// Importance scoring settings.
    pub importance: ImportanceConfig,
    /// Summary selection settings.
    pub summary: SummaryConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            extractor: ExtractorConfig::standard(),
            lookat: LookAtConfig::default(),
            fusion: FusionConfig::default(),
            matrix_smoothing: 5,
            emotion_smoothing: 0.85,
            parser: VideoParserConfig::default(),
            training: TrainingSetConfig::default(),
            training_seed: 42,
            classify_emotions: true,
            parse_video: true,
            parallel_cameras: true,
            highlights: HighlightConfig::default(),
            importance: ImportanceConfig::default(),
            summary: SummaryConfig::default(),
        }
    }
}

/// One camera thread's per-frame output.
struct CameraFrameOutput {
    observations: Vec<CameraObservation>,
    /// `(person, probabilities, confidence, apparent_radius)`
    emotions: Vec<(usize, Vec<f64>, f64, f64)>,
}

/// The assembled DiEvent pipeline.
pub struct DiEventPipeline {
    config: PipelineConfig,
    classifier: Option<EmotionClassifier>,
    telemetry: Telemetry,
}

impl DiEventPipeline {
    /// Builds the pipeline, training the emotion classifier when
    /// classification is enabled. Telemetry is on by default (it is
    /// cheap enough to leave on, and [`EventAnalysis::telemetry`] plus
    /// the stage timings come from it); opt out with
    /// [`DiEventPipeline::new_with_telemetry`] and
    /// [`Telemetry::disabled`].
    pub fn new(config: PipelineConfig) -> Self {
        Self::new_with_telemetry(config, Telemetry::enabled())
    }

    /// Builds the pipeline recording into the given telemetry domain.
    /// The domain accumulates across runs: running the same pipeline
    /// twice sums its counters and span totals.
    pub fn new_with_telemetry(config: PipelineConfig, telemetry: Telemetry) -> Self {
        let classifier = {
            let _span = telemetry.span("pipeline.train_classifier");
            config
                .classify_emotions
                .then(|| train_emotion_classifier(&config.training, config.training_seed).0)
        };
        DiEventPipeline {
            config,
            classifier,
            telemetry,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The telemetry domain this pipeline records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enrolls participants into a camera's gallery from its first
    /// frame, associating detections to seats by projected position.
    fn enroll(
        &self,
        extractor: &mut FeatureExtractor,
        scenario: &Scenario,
        first_frame: &GrayFrame,
    ) {
        let camera = *extractor.camera();
        // Tentative pass purely to get detections + patches.
        let mut probe =
            FeatureExtractor::new(self.config.extractor, camera, FaceGallery::default());
        let obs = probe.process(first_frame);
        for o in obs {
            // Match to the nearest seat by projection (external seating
            // plan).
            let mut best: Option<(usize, f64)> = None;
            for p in &scenario.participants {
                if let Some(proj) = camera.project(p.seat_head) {
                    let d = (proj.pixel.x - o.detection.cx).hypot(proj.pixel.y - o.detection.cy);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((p.index, d));
                    }
                }
            }
            if let (Some((person, d)), Some(patch)) = (best, o.patch.as_ref()) {
                // Only trust unambiguous associations.
                if d < o.detection.radius * 2.0 {
                    extractor
                        .gallery_mut()
                        .enroll(PersonId(person), &o.detection, patch);
                }
            }
        }
    }

    /// Processes one camera over the whole recording.
    ///
    /// `parent` is the extraction stage's span id — camera workers run
    /// on their own threads, where implicit span nesting can't see it.
    fn run_camera(
        &self,
        recording: &Recording,
        camera_index: usize,
        monitor: bool,
        parent: Option<u64>,
    ) -> (Vec<CameraFrameOutput>, Vec<GrayFrame>) {
        let mut span = self.telemetry.span_under("camera.extract", parent);
        span.set("camera", camera_index);
        let camera_label = camera_index.to_string();
        let labels = &[("camera", camera_label.as_str())][..];
        let dropped = self.telemetry.counter_with("detections_dropped", labels);
        let classified = self
            .telemetry
            .counter_with("emotion_classifications", labels);

        let scenario = &recording.scenario;
        let camera = scenario.rig.cameras[camera_index];
        let mut extractor =
            FeatureExtractor::new(self.config.extractor, camera, FaceGallery::default());
        extractor.attach_telemetry(&self.telemetry, &camera_label);
        let first = recording.frame(camera_index, 0);
        self.enroll(&mut extractor, scenario, &first);

        let frames = recording.frames();
        let mut outputs = Vec::with_capacity(frames);
        let mut monitor_frames = Vec::new();
        for f in 0..frames {
            let frame = if f == 0 {
                first.clone()
            } else {
                recording.frame(camera_index, f)
            };
            if monitor {
                // Quarter-resolution monitor stream for video parsing.
                monitor_frames.push(frame.downsample2().downsample2());
            }
            let obs = extractor.process(&frame);
            let mut observations = Vec::new();
            let mut emotions = Vec::new();
            for o in &obs {
                let Some((person, _dist)) = o.identity else {
                    // An unattributed detection carries no usable gaze.
                    dropped.incr();
                    continue;
                };
                if let Some(pose) = &o.pose {
                    observations.push(CameraObservation {
                        person: person.0,
                        head_cam: pose.head_cam,
                        gaze_cam: Some(pose.gaze_cam),
                        weight: 1.0,
                    });
                } else {
                    // Position-only sighting (face turned away):
                    // reconstruct camera-frame position from the
                    // detection via the depth-from-radius model.
                    let k = &extractor.camera().intrinsics;
                    let z = k.fx * self.config.extractor.pose.head_radius_m / o.detection.radius;
                    observations.push(CameraObservation {
                        person: person.0,
                        head_cam: dievent_geometry::Vec3::new(
                            (o.detection.cx - k.cx) / k.fx * z,
                            (o.detection.cy - k.cy) / k.fy * z,
                            z,
                        ),
                        gaze_cam: None,
                        weight: 0.5,
                    });
                }
                if let (Some(clf), Some(patch)) = (&self.classifier, o.patch.as_ref()) {
                    let pred = clf.classify(patch);
                    classified.incr();
                    emotions.push((
                        person.0,
                        pred.probabilities,
                        pred.confidence,
                        o.detection.radius,
                    ));
                }
            }
            outputs.push(CameraFrameOutput {
                observations,
                emotions,
            });
        }
        span.set("frames", frames);
        (outputs, monitor_frames)
    }

    /// Runs the full pipeline on a recording.
    pub fn run(&self, recording: &Recording) -> EventAnalysis {
        let n_cameras = recording.cameras();
        let n_participants = recording.scenario.participants.len();
        let frames = recording.frames();

        let mut run_span = self.telemetry.span("pipeline.run");
        run_span.set("cameras", n_cameras);
        run_span.set("participants", n_participants);
        run_span.set("frames", frames);
        self.telemetry
            .gauge("participants")
            .set(n_participants as f64);
        self.telemetry.gauge("cameras").set(n_cameras as f64);
        self.telemetry.gauge("recording_frames").set(frames as f64);

        // --- Stage 3: per-camera feature extraction (parallel). ---
        let mut per_camera: Vec<(Vec<CameraFrameOutput>, Vec<GrayFrame>)> =
            Vec::with_capacity(n_cameras);
        {
            let stage = self.telemetry.span("stage.extraction");
            let stage_id = stage.id();
            if self.config.parallel_cameras && n_cameras > 1 {
                let results: Vec<_> = crossbeam::thread::scope(|s| {
                    let handles: Vec<_> = (0..n_cameras)
                        .map(|c| {
                            let monitor = c == 0 && self.config.parse_video;
                            s.spawn(move |_| self.run_camera(recording, c, monitor, stage_id))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("camera thread"))
                        .collect()
                })
                .expect("camera scope");
                per_camera.extend(results);
            } else {
                for c in 0..n_cameras {
                    let monitor = c == 0 && self.config.parse_video;
                    per_camera.push(self.run_camera(recording, c, monitor, stage_id));
                }
            }
        }

        // --- Stage 2: video composition analysis on the monitor stream. ---
        let structure = {
            let _stage = self.telemetry.span("stage.parse");
            if self.config.parse_video {
                let monitor = &per_camera[0].1;
                let mut spec = recording.scenario.spec;
                spec.width = monitor.first().map_or(spec.width / 4, |f| f.width());
                spec.height = monitor.first().map_or(spec.height / 4, |f| f.height());
                Some(
                    VideoParser::new(self.config.parser)
                        .with_telemetry(self.telemetry.clone())
                        .parse_frames(spec, monitor),
                )
            } else {
                None
            }
        };

        // --- Stage 4: fusion + multilayer analysis. ---
        let analysis_stage = self.telemetry.span("stage.analysis");
        let fusion_seconds = self.telemetry.histogram("fusion_seconds");
        let lookat_tests = self.telemetry.counter("lookat_tests");
        let camera_poses: Vec<_> = recording
            .scenario
            .rig
            .cameras
            .iter()
            .map(|c| c.pose)
            .collect();

        let mut raw_matrices = Vec::with_capacity(frames);
        let mut emotion_frames: Vec<Vec<EmotionEstimate>> = Vec::with_capacity(frames);
        for f in 0..frames {
            let mut frame_obs = FrameObservations::default();
            for (c, (outputs, _)) in per_camera.iter().enumerate() {
                frame_obs
                    .cameras
                    .push((camera_poses[c], outputs[f].observations.clone()));
            }
            let matrix = fusion_seconds.time(|| {
                let poses = fuse_frame(&frame_obs, &self.config.fusion);
                LookAtMatrix::from_poses(n_participants, &poses, &self.config.lookat)
            });
            // Every ordered pair is geometrically tested per frame.
            lookat_tests.add((n_participants * n_participants.saturating_sub(1)) as u64);
            raw_matrices.push(matrix);

            // Per person, keep the emotion estimate from the camera with
            // the largest apparent face (closest, best-resolved view).
            let mut best: Vec<Option<(Vec<f64>, f64, f64)>> = vec![None; n_participants];
            for (outputs, _) in &per_camera {
                for (person, probs, conf, radius) in &outputs[f].emotions {
                    if *person >= n_participants {
                        continue;
                    }
                    if best[*person].as_ref().is_none_or(|(_, _, r)| radius > r) {
                        best[*person] = Some((probs.clone(), *conf, *radius));
                    }
                }
            }
            emotion_frames.push(
                best.into_iter()
                    .enumerate()
                    .filter_map(|(person, b)| {
                        b.map(|(probabilities, confidence, _)| EmotionEstimate {
                            person,
                            probabilities,
                            confidence,
                        })
                    })
                    .collect(),
            );
        }

        let matrices = smooth_matrices(&raw_matrices, self.config.matrix_smoothing);

        let mut summary = LookAtSummary::new(n_participants);
        for m in &matrices {
            summary.add(m);
        }
        let dominance = dominance_ranking(&summary);

        let overall = fuse_sequence(
            &emotion_frames,
            &OverallEmotionConfig {
                participants: n_participants,
                smoothing: self.config.emotion_smoothing,
            },
        );

        let episodes = ec_episodes(&matrices, 3);
        let pair_stats = pair_statistics(&matrices, 3);
        let highlights = detect_highlights(&matrices, &overall, &self.config.highlights);
        let importance = importance_series(&matrices, &overall, &self.config.importance);
        let video_summary = structure.as_ref().map(|s| {
            select_summary(
                &s.shots,
                &importance,
                &self.config.summary,
                &self.config.importance,
            )
        });

        // Validation against ground truth at the same attention radius.
        let truth: Vec<LookAtMatrix> = recording
            .ground_truth
            .snapshots
            .iter()
            .map(|snap| {
                let rows = snap.lookat_matrix(self.config.lookat.attention_radius);
                let mut m = LookAtMatrix::zero(n_participants);
                for (g, row) in rows.iter().enumerate() {
                    for (t, &v) in row.iter().enumerate() {
                        if g != t && v == 1 {
                            m.set(g, t, 1);
                        }
                    }
                }
                m
            })
            .collect();
        let validation = validate_sequence(&matrices, &truth);

        self.telemetry
            .counter("ec_episodes")
            .add(episodes.len() as u64);
        drop(analysis_stage);

        // --- Stage 5: metadata repository. ---
        let repository = {
            let _stage = self.telemetry.span("stage.metadata");
            let mut repository = MetadataRepository::in_memory();
            repository.attach_telemetry(&self.telemetry);
            self.populate_repository(
                &repository,
                recording,
                &matrices,
                &overall,
                &structure,
                &highlights,
            );
            repository
        };

        // Close the run span, then derive the stage timings and the
        // carried report from what the telemetry domain accumulated.
        drop(run_span);
        let telemetry = self.telemetry.report();
        let timings = StageTimings::from_report(&telemetry);

        EventAnalysis {
            participants: n_participants,
            fps: recording.scenario.spec.fps,
            raw_matrices,
            matrices,
            summary,
            dominance,
            overall,
            episodes,
            pair_stats,
            highlights,
            importance,
            structure,
            video_summary,
            validation,
            repository,
            timings,
            telemetry,
            context: recording.context.clone(),
        }
    }

    fn populate_repository(
        &self,
        repo: &MetadataRepository,
        recording: &Recording,
        matrices: &[LookAtMatrix],
        overall: &[dievent_analysis::overall_emotion::OverallEmotion],
        structure: &Option<dievent_video::VideoStructure>,
        highlights: &[dievent_summarize::Highlight],
    ) {
        let fps = recording.scenario.spec.fps;
        let duration = recording.frames() as f64 / fps;
        let mut event = MetaRecord::new(RecordKind::Event)
            .with_span(0.0, duration)
            .with_attr("name", recording.scenario.name.as_str())
            .with_attr("participants", recording.scenario.participants.len())
            .with_attr("cameras", recording.cameras())
            .with_attr("frames", recording.frames());
        if let Some(ctx) = &recording.context {
            event = event
                .with_attr("location", ctx.location.as_str())
                .with_attr("date", ctx.date.as_str())
                .with_attr("occasion", ctx.occasion.as_str());
            if let Some(t) = ctx.temperature_c {
                event = event.with_attr("temperature_c", t);
            }
            if let Ok(payload) = serde_json::to_value(ctx) {
                event = event.with_payload(payload);
            }
        }
        repo.insert(event).expect("in-memory insert");

        if let Some(s) = structure {
            for (i, scene) in s.scenes.iter().enumerate() {
                let (f0, f1) = scene.frame_span(&s.shots);
                repo.insert(
                    MetaRecord::new(RecordKind::Scene)
                        .with_span(f0 as f64 / fps, f1 as f64 / fps)
                        .with_attr("scene", i),
                )
                .expect("in-memory insert");
            }
            for (i, shot) in s.shots.iter().enumerate() {
                repo.insert(
                    MetaRecord::new(RecordKind::Shot)
                        .with_span(shot.start as f64 / fps, shot.end as f64 / fps)
                        .with_attr("shot", i)
                        .with_attr("keyframes", s.keyframes[i].len()),
                )
                .expect("in-memory insert");
            }
        }

        for (f, (m, o)) in matrices.iter().zip(overall).enumerate() {
            let t = f as f64 / fps;
            repo.insert(
                MetaRecord::new(RecordKind::FrameAnalysis)
                    .with_span(t, t + 1.0 / fps)
                    .with_attr("frame", f)
                    .with_attr("looks", m.count_ones())
                    .with_attr("eye_contacts", m.eye_contacts().len())
                    .with_attr("oh", o.overall_happiness)
                    .with_attr("valence", o.valence),
            )
            .expect("in-memory insert");
        }

        for h in highlights {
            let t = h.frame as f64 / fps;
            let kind = match &h.kind {
                dievent_summarize::HighlightKind::EyeContactStart { .. } => "ec",
                dievent_summarize::HighlightKind::EmotionShift { .. } => "emotion",
            };
            repo.insert(
                MetaRecord::new(RecordKind::Highlight)
                    .with_span(t, t)
                    .with_attr("frame", h.frame)
                    .with_attr("kind", kind),
            )
            .expect("in-memory insert");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dievent_metadata::Query;

    /// A short two-camera recording that keeps tests fast.
    fn short_recording() -> Recording {
        Recording::capture(Scenario::two_camera_dinner(40, 11))
    }

    fn quick_config() -> PipelineConfig {
        PipelineConfig {
            classify_emotions: false,
            parse_video: true,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let recording = short_recording();
        let pipeline = DiEventPipeline::new(quick_config());
        let analysis = pipeline.run(&recording);
        assert_eq!(analysis.matrices.len(), 40);
        assert_eq!(analysis.overall.len(), 40);
        assert_eq!(analysis.participants, 2);
        assert!(analysis.structure.is_some());
        assert!(analysis.repository.len() > 40, "event + frames stored");
    }

    #[test]
    fn detected_eye_contact_matches_script() {
        // The two-camera dinner scripts long mutual-gaze stretches; the
        // detected matrices must recover EC with decent fidelity.
        let recording = short_recording();
        let pipeline = DiEventPipeline::new(quick_config());
        let analysis = pipeline.run(&recording);
        assert!(
            analysis.validation.f1 > 0.7,
            "look-at F1 too low: {:?}",
            analysis.validation
        );
    }

    #[test]
    fn sequential_equals_parallel() {
        let recording = short_recording();
        let par = DiEventPipeline::new(quick_config()).run(&recording);
        let seq = DiEventPipeline::new(PipelineConfig {
            parallel_cameras: false,
            ..quick_config()
        })
        .run(&recording);
        assert_eq!(
            par.matrices, seq.matrices,
            "camera parallelism must not change results"
        );
        assert_eq!(par.summary.rows(), seq.summary.rows());
    }

    #[test]
    fn repository_answers_queries() {
        let recording = short_recording();
        let analysis = DiEventPipeline::new(quick_config()).run(&recording);
        let events = analysis
            .repository
            .query(&Query::new().kind(RecordKind::Event));
        assert_eq!(events.len(), 1);
        let frames = analysis.repository.query(
            &Query::new()
                .kind(RecordKind::FrameAnalysis)
                .overlapping(0.5, 1.0),
        );
        assert!(!frames.is_empty());
        // Frames with at least one eye contact.
        let ec_frames = analysis.repository.query(
            &Query::new()
                .kind(RecordKind::FrameAnalysis)
                .ge("eye_contacts", 1i64),
        );
        assert!(!ec_frames.is_empty(), "scripted mutual gaze must appear");
    }

    #[test]
    fn emotion_classification_produces_estimates() {
        let recording = Recording::capture(Scenario::two_camera_dinner(16, 5));
        let pipeline = DiEventPipeline::new(PipelineConfig {
            classify_emotions: true,
            parse_video: false,
            ..PipelineConfig::default()
        });
        let analysis = pipeline.run(&recording);
        // Some frames must carry observed emotions for ≥1 participant.
        let observed: usize = analysis.overall.iter().map(|o| o.observed).sum();
        assert!(observed > 0, "no emotions observed at all");
    }
}
